// Remote worker transport (DESIGN.md §15): the machine-boundary tier of
// the degradation ladder. A `buffy --serve --listen addr:port` process
// accepts connections and runs the worker loop over each socket; a
// client-side RemoteHostPool (--connect) hands out single-job host leases
// that the Supervisor tries before its local subprocess tier.
//
// Everything on the wire is the existing checksummed frame protocol; this
// layer adds a small frame envelope:
//
//   hello        {type, version, caps, pid}   both directions, at connect
//   hello-reject {type, reason}               server -> client, then close
//   ping / pong  {type, id}                   client pings while waiting
//   job          {type, id, job}              client -> server
//   result       {type, id, result}           server -> client
//   shutdown     {type}                       client -> server, then close
//
// Robustness contract (the reason this layer exists):
//   * hello carries a protocol version + solver capability list, so a
//     mismatched binary is rejected with a reason at connect time instead
//     of garbling mid-job;
//   * the client pings every heartbeatMs while a job is in flight and
//     treats `livenessMisses` silent periods as a dead host — a stalled
//     socket costs one liveness deadline, never a full job deadline;
//   * every reply is matched to the in-flight job id; stale duplicates
//     (DuplicateReply fault, retransmit races) are counted and dropped;
//   * reconnects use capped exponential backoff, and
//     `maxConnectFailures` consecutive failures mark a host dead so the
//     pool degrades instead of spinning;
//   * all of it is deterministic under test: network FaultActions ride
//     the job's fault plan keyed on (scope, attempt) — ConnRefused is
//     consumed client-side before a byte is sent, the other three by the
//     serve loop.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "backends/fault_plan.hpp"
#include "procs/net.hpp"
#include "procs/wire.hpp"

namespace buffy::procs {

/// Frame-envelope protocol version; bumped on any incompatible change to
/// the envelope or the WireJob/WireResult codec.
constexpr std::int64_t kRemoteProtocolVersion = 1;

/// Comma-joined names of registered backends whose discharge path can run
/// behind the wire format (BackendCapabilities::remoteable).
std::string remoteCapabilities();

struct RemoteOptions {
  /// Ping period while a job is in flight.
  int heartbeatMs = 250;
  /// Liveness deadline = heartbeatMs * livenessMisses of silence.
  unsigned livenessMisses = 4;
  int connectTimeoutMs = 2000;
  /// Reconnect backoff: min(backoffCapMs, backoffBaseMs << failures).
  int backoffBaseMs = 50;
  int backoffCapMs = 2000;
  /// Consecutive connect/handshake failures before a host is marked dead.
  unsigned maxConnectFailures = 3;
  /// Client-side fault injection (ConnRefused) — deterministic, keyed on
  /// (job.faultScope, job.attempt) like the worker-loop faults.
  backends::FaultPlanPtr faultPlan;
};

/// Remote-tier counters for the CLI's `procs` JSON block.
struct RemoteStats {
  std::uint64_t hosts = 0;      // configured endpoints
  std::uint64_t hostsDead = 0;  // rejected handshake / connect exhaustion
  std::uint64_t connects = 0;
  std::uint64_t reconnects = 0;  // successful connects after a failure
  std::uint64_t helloRejects = 0;
  std::uint64_t jobsSent = 0;
  std::uint64_t jobsAnswered = 0;
  std::uint64_t refusals = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t stalls = 0;  // liveness-deadline expiries
  std::uint64_t garbled = 0;
  std::uint64_t duplicatesDropped = 0;
};

enum class RemoteCallStatus {
  Answered,      // result decoded (possibly a clean in-worker error)
  Refused,       // connect failed / injected ConnRefused / handshake lost
  Disconnected,  // EOF or torn frame mid-call
  Stalled,       // liveness or job deadline expired
  Garbled,       // checksum-valid but malformed reply
  Canceled,      // abort() closed the socket under us
};

class RemoteHostPool;

/// Exclusive use of one remote host for one job attempt. Returned to the
/// pool on destruction; abort() is thread-safe and makes a blocked call()
/// return promptly (the cancel path, mirroring WorkerProcess::signalKill).
class RemoteLease {
 public:
  ~RemoteLease();
  RemoteLease(const RemoteLease&) = delete;
  RemoteLease& operator=(const RemoteLease&) = delete;

  /// Connects (lazily, with handshake), sends the job, and pumps
  /// heartbeats until the matching result frame, a failure, or
  /// `deadlineMs` elapses. On any non-Answered status the connection is
  /// torn down so no stale bytes survive into the next lease.
  RemoteCallStatus call(const WireJob& job, WireResult& result,
                        int deadlineMs);
  void abort();

  [[nodiscard]] const std::string& endpoint() const;

 private:
  friend class RemoteHostPool;
  RemoteLease(RemoteHostPool* pool, std::size_t hostIndex)
      : pool_(pool), hostIndex_(hostIndex) {}

  RemoteHostPool* pool_;
  std::size_t hostIndex_;
};

/// The --connect worker tier: a fixed set of `buffy --serve` endpoints,
/// handed out one job at a time per host. Thread-safe; leases block until
/// a usable host frees up (bounded by the callers' own job deadlines) and
/// fail fast once every host is dead.
class RemoteHostPool {
 public:
  RemoteHostPool(std::vector<HostPort> hosts, RemoteOptions options);
  ~RemoteHostPool();
  RemoteHostPool(const RemoteHostPool&) = delete;
  RemoteHostPool& operator=(const RemoteHostPool&) = delete;

  /// False once every host is dead (handshake-rejected or connect
  /// exhausted) — the Supervisor then skips straight to the local tier.
  [[nodiscard]] bool available() const;

  /// Blocks until a live host is free; nullptr when none can ever serve
  /// (all dead) or the pool is shutting down. `avoidEndpoint` steers a
  /// redispatch away from the host that just failed when another live
  /// host exists.
  std::unique_ptr<RemoteLease> checkout(const std::string& avoidEndpoint = "");

  [[nodiscard]] RemoteStats stats() const;
  [[nodiscard]] const RemoteOptions& options() const { return options_; }

  /// Closes every connection and wakes blocked checkouts.
  void shutdown();

 private:
  friend class RemoteLease;

  struct Host {
    HostPort addr;
    std::string endpoint;  // cached addr.text()
    int fd = -1;           // connected + handshaken socket, -1 when down
    bool busy = false;
    bool dead = false;
    bool abortRequested = false;
    bool everConnected = false;
    unsigned connectFailures = 0;
    std::chrono::steady_clock::time_point backoffUntil{};
    std::uint64_t seq = 0;  // job id generator, monotonic per host
  };

  RemoteCallStatus callOn(Host& host, const WireJob& job, WireResult& result,
                          int deadlineMs);
  bool ensureConnected(Host& host);  // connect + hello, under no lock
  void dropConnection(Host& host, bool countDisconnect);
  void release(std::size_t hostIndex);

  RemoteOptions options_;
  mutable std::mutex mutex_;  // guards hosts_ state flags + stats_
  std::condition_variable freeCv_;
  std::vector<Host> hosts_;
  RemoteStats stats_;
  bool shutdown_ = false;
};

struct ServeOptions {
  HostPort listen;
  /// Handshake must complete this fast or the connection is dropped — an
  /// unauthenticated peer never holds a slot open indefinitely.
  int handshakeTimeoutMs = 5000;
};

/// The `buffy --serve --listen` entry point: accepts connections and runs
/// the worker loop over each socket (one reader thread + one solve thread
/// per connection, so heartbeats are answered mid-solve). Announces
/// "serving on host:port" on stdout once listening; returns 0 on
/// SIGINT/SIGTERM shutdown, 4 when the listen socket cannot be opened.
int runServer(const ServeOptions& options);

}  // namespace buffy::procs
