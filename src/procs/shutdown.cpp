#include "procs/shutdown.hpp"

#include <atomic>
#include <csignal>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>

#include <unistd.h>

namespace buffy::procs {

namespace {

struct State {
  std::atomic<bool> requested{false};
  std::atomic<int> signal{0};
  std::mutex mutex;  // guards callbacks + fired
  std::map<std::uint64_t, std::function<void()>> callbacks;
  std::uint64_t nextId = 1;
  bool fired = false;
};

// Leaked: the detached watcher thread may outlive main()'s statics.
State& state() {
  static State* s = new State();
  return *s;
}

}  // namespace

bool shutdownRequested() {
  return state().requested.load(std::memory_order_acquire);
}

int shutdownSignal() { return state().signal.load(std::memory_order_acquire); }

void requestShutdown(int signal) {
  State& s = state();
  s.signal.store(signal, std::memory_order_release);
  s.requested.store(true, std::memory_order_release);
  // Fire under the lock: ~ShutdownToken takes the same mutex, so a token
  // cannot finish unregistering (and let its captures die) while its
  // callback is still running. Callbacks must therefore not register or
  // destroy tokens themselves.
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.fired) return;
  s.fired = true;
  for (const auto& [id, fn] : s.callbacks) {
    if (fn) fn();
  }
}

void installSignalWatcher() {
  static std::once_flag once;
  std::call_once(once, [] {
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    // Block in the calling (main) thread; every thread spawned afterwards
    // inherits the mask, so only the watcher ever sees these signals.
    pthread_sigmask(SIG_BLOCK, &set, nullptr);

    std::thread([set] {
      bool first = true;
      for (;;) {
        timespec wait{};
        wait.tv_nsec = 200'000'000;  // 200ms: bounded poll, no busy loop
        const int sig = sigtimedwait(&set, nullptr, &wait);
        if (sig <= 0) continue;  // EAGAIN (timeout) or EINTR
        if (first) {
          first = false;
          requestShutdown(sig);
        } else {
          // Cancellation itself wedged — get out now. Workers die with us
          // (PR_SET_PDEATHSIG in procs/process.cpp).
          _exit(128 + sig);
        }
      }
    }).detach();
  });
}

ShutdownToken::ShutdownToken(std::function<void()> onShutdown) {
  State& s = state();
  bool fireNow = false;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.fired) {
      fireNow = true;  // no lost wakeup: fire outside the lock
    } else {
      id_ = s.nextId++;
      s.callbacks[id_] = onShutdown;
    }
  }
  if (fireNow && onShutdown) onShutdown();
}

ShutdownToken::~ShutdownToken() {
  if (id_ == 0) return;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.callbacks.erase(id_);
}

}  // namespace buffy::procs
