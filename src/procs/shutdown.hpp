// Cooperative process-wide shutdown (satellite of DESIGN.md §13): a
// SIGINT/SIGTERM watcher that flips a flag and fires registered
// cancellation callbacks, so long-running races/sweeps stop their solver
// engines, the CLI emits a partial report with "status": "interrupted",
// and the process exits 130 — instead of dying mid-write with orphaned
// state.
//
// Design notes:
//  * all state is leaked on purpose (function-local `new` singletons) so
//    the detached watcher thread can never race static destruction at
//    process exit;
//  * the watcher thread owns the signals: main() blocks SIGINT/SIGTERM
//    via pthread_sigmask *before* any thread is spawned (children of a
//    blocked-mask thread inherit it), and the watcher sigtimedwait()s
//    them. The first signal requests shutdown; a second one _exit()s
//    immediately (the escape hatch when cancellation itself wedges);
//  * callbacks run on the watcher thread — they must be thread-safe and
//    fast (Analysis::interrupt and Job::cancel both qualify).
#pragma once

#include <cstdint>
#include <functional>

namespace buffy::procs {

/// True once a shutdown signal arrived (or requestShutdown was called).
bool shutdownRequested();

/// The signal number that triggered shutdown (SIGINT/SIGTERM), 0 when none
/// did. The CLI maps this to exit code 128+sig.
int shutdownSignal();

/// Programmatic trigger (tests; also what the watcher calls): sets the
/// flag and fires every registered callback once.
void requestShutdown(int signal);

/// Blocks SIGINT/SIGTERM in the calling thread (and every thread it
/// spawns later) and starts the detached watcher thread. Call exactly once
/// from main() before spawning any threads; later calls are no-ops.
void installSignalWatcher();

/// RAII registration of a cancellation callback; fires on the first
/// shutdown signal, unregisters on destruction. If shutdown was already
/// requested when the token is created, the callback fires immediately
/// (no lost-wakeup window).
class ShutdownToken {
 public:
  explicit ShutdownToken(std::function<void()> onShutdown);
  ~ShutdownToken();
  ShutdownToken(const ShutdownToken&) = delete;
  ShutdownToken& operator=(const ShutdownToken&) = delete;

 private:
  std::uint64_t id_ = 0;
};

}  // namespace buffy::procs
