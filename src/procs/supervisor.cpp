#include "procs/supervisor.hpp"

#include <algorithm>
#include <csignal>
#include <ctime>

#include <unistd.h>

#include "procs/remote.hpp"

namespace buffy::procs {

namespace {

void sleepMs(int ms) {
  if (ms <= 0) return;
  timespec ts{};
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1'000'000L;
  nanosleep(&ts, nullptr);
}

/// Canceled Unknown verdicts, one per query (matching what an in-process
/// engine returns after Analysis::interrupt).
WireResult canceledResult(const WireJob& job) {
  WireResult result;
  const std::size_t n = std::max<std::size_t>(1, job.queries.size());
  for (std::size_t i = 0; i < n; ++i) {
    WireVerdict v;
    v.verdict = "UNKNOWN";
    v.detail = "canceled";
    v.canceled = true;
    result.verdicts.push_back(std::move(v));
  }
  return result;
}

unsigned scalePow(unsigned base, unsigned factor, unsigned power) {
  std::uint64_t value = base;
  for (unsigned i = 0; i < power; ++i) {
    value *= std::max(1u, factor);
    if (value > 0x7fffffffu) return 0x7fffffffu;
  }
  return static_cast<unsigned>(value);
}

}  // namespace

ProcsStats& ProcsStats::operator+=(const ProcsStats& other) {
  jobs += other.jobs;
  workersSpawned += other.workersSpawned;
  workersReaped += other.workersReaped;
  restarts += other.restarts;
  retries += other.retries;
  kills += other.kills;
  timeouts += other.timeouts;
  protocolErrors += other.protocolErrors;
  degradedJobs += other.degradedJobs;
  degraded = degraded || other.degraded;
  remoteJobs += other.remoteJobs;
  remoteAnswered += other.remoteAnswered;
  redispatches += other.redispatches;
  remoteDegraded += other.remoteDegraded;
  return *this;
}

Supervisor::Supervisor(SupervisorOptions options)
    : options_(std::move(options)) {
  // Frame writes into an already-dead worker must fail with EPIPE, not
  // kill the whole analysis process.
  std::signal(SIGPIPE, SIG_IGN);
  binary_ = options_.workerBinary.empty() ? selfExePath()
                                          : options_.workerBinary;
  // A missing/non-executable binary degrades the supervisor up front, so
  // available() lets callers choose the in-process path before queueing a
  // single doomed job.
  if (binary_.empty() || access(binary_.c_str(), X_OK) != 0) {
    degraded_ = true;
    stats_.degraded = true;
  }
}

Supervisor::~Supervisor() {
  shutdownWorkers();
  // Stop the spawner last: its exit delivers PDEATHSIG to any worker it
  // forked that somehow survived shutdown — a final no-orphan backstop.
  {
    std::lock_guard<std::mutex> lock(spawnMutex_);
    spawnerExit_ = true;
  }
  spawnCv_.notify_all();
  if (spawner_.joinable()) spawner_.join();
}

bool Supervisor::available() const {
  if (options_.remotePool != nullptr && options_.remotePool->available()) {
    return true;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return !binary_.empty() && !degraded_;
}

ProcsStats Supervisor::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Supervisor::shutdownWorkers() {
  std::deque<std::unique_ptr<WorkerProcess>> workers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    workers.swap(idle_);
  }
  for (auto& worker : workers) {
    worker->shutdown(options_.termGraceMs);
  }
  if (!workers.empty()) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.workersReaped += workers.size();
  }
}

Supervisor::JobPtr Supervisor::createJob() {
  return JobPtr(new Job(this));
}

std::unique_ptr<WorkerProcess> Supervisor::checkout() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (degraded_ || binary_.empty()) return nullptr;
    while (!idle_.empty()) {
      auto worker = std::move(idle_.front());
      idle_.pop_front();
      // A worker can die while parked (OOM kill, external signal); a
      // corpse handed to a job would burn one of its retries on a
      // guaranteed EPIPE. Probe (and reap) here so parked deaths cost a
      // respawn, not a retry.
      if (worker->probeAlive()) return worker;
      ++stats_.workersReaped;
    }
  }
  auto worker = spawnWorker();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!worker) {
    if (++spawnFailures_ >= options_.maxSpawnFailures) {
      degraded_ = true;
      stats_.degraded = true;
    }
    return nullptr;
  }
  spawnFailures_ = 0;
  ++stats_.workersSpawned;
  return worker;
}

std::unique_ptr<WorkerProcess> Supervisor::spawnWorker() {
  std::promise<std::unique_ptr<WorkerProcess>> reply;
  auto spawned = reply.get_future();
  {
    std::lock_guard<std::mutex> lock(spawnMutex_);
    if (spawnerExit_) return nullptr;
    if (!spawner_.joinable()) {
      spawner_ = std::thread([this] { spawnerLoop(); });
    }
    spawnQueue_.push_back(std::move(reply));
  }
  spawnCv_.notify_all();
  return spawned.get();
}

void Supervisor::spawnerLoop() {
  std::unique_lock<std::mutex> lock(spawnMutex_);
  for (;;) {
    spawnCv_.wait(lock,
                  [this] { return !spawnQueue_.empty() || spawnerExit_; });
    if (spawnerExit_) {
      for (auto& request : spawnQueue_) request.set_value(nullptr);
      spawnQueue_.clear();
      return;
    }
    auto request = std::move(spawnQueue_.front());
    spawnQueue_.pop_front();
    lock.unlock();
    auto worker = std::make_unique<WorkerProcess>();
    if (!worker->spawn(binary_)) worker.reset();
    request.set_value(std::move(worker));
    lock.lock();
  }
}

void Supervisor::checkin(std::unique_ptr<WorkerProcess> worker) {
  if (!worker || !worker->alive()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (idle_.size() < options_.maxIdleWorkers) {
      idle_.push_back(std::move(worker));
      return;
    }
  }
  // Pool full: clean shutdown outside the lock.
  worker->shutdown(options_.termGraceMs);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.workersReaped;
}

void Supervisor::discard(std::unique_ptr<WorkerProcess> worker, bool viaKill) {
  if (!worker) return;
  if (viaKill) {
    worker->terminate(options_.termGraceMs);
  } else {
    worker->kill();  // already dead: reap without grace
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.workersReaped;
}

int Supervisor::deadlineFor(const WireJob& job, unsigned attempt) const {
  if (options_.jobDeadlineMs > 0) {
    return static_cast<int>(
        scalePow(static_cast<unsigned>(options_.jobDeadlineMs),
                 options_.escalateFactor, attempt));
  }
  // Derived: per-query solver timeout x queries x in-engine retry-ladder
  // headroom (initial + reseed + 4x escalate + smtlib ~= 7x) + compile
  // slack. The escalation for retry attempts is already baked into
  // job.timeoutMs by run().
  const unsigned perQuery = job.timeoutMs.value_or(120000);
  const std::uint64_t queries = std::max<std::size_t>(1, job.queries.size());
  const std::uint64_t ladder = job.retryEnabled ? 7 : 1;
  const std::uint64_t ms = static_cast<std::uint64_t>(perQuery) * queries *
                               ladder +
                           static_cast<std::uint64_t>(options_.deadlineSlackMs);
  return static_cast<int>(std::min<std::uint64_t>(ms, 0x7fffffff));
}

bool Supervisor::Job::runRemote(WireJob& job, WireResult& result) {
  Supervisor& sup = *owner_;
  RemoteHostPool* pool = sup.options_.remotePool;
  if (pool == nullptr || !pool->available()) return false;
  {
    std::lock_guard<std::mutex> lock(sup.mutex_);
    ++sup.stats_.remoteJobs;
  }

  const std::optional<unsigned> baseTimeout = job.timeoutMs;
  const std::optional<unsigned> baseRlimit = job.rlimit;
  std::string lastEndpoint;

  for (unsigned attempt = 0; attempt <= sup.options_.maxRetries; ++attempt) {
    if (canceled()) {
      result = canceledResult(job);
      return true;
    }
    // Blocks until a live host frees up; a redispatch is steered away
    // from the endpoint that just failed when another live host exists.
    auto lease = pool->checkout(lastEndpoint);
    if (!lease) break;  // every host dead: fall to the local tier
    lastEndpoint = lease->endpoint();
    if (attempt > 0) {
      {
        std::lock_guard<std::mutex> lock(sup.mutex_);
        ++sup.stats_.redispatches;
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.redispatches;
      }
    }

    // Same escalation + attempt stamping as the local tier: the attempt
    // ordinal keys deterministic network-fault injection.
    job.attempt = attempt;
    if (baseTimeout) {
      job.timeoutMs = scalePow(*baseTimeout, sup.options_.escalateFactor,
                               attempt);
    }
    if (baseRlimit) {
      job.rlimit = scalePow(*baseRlimit, sup.options_.escalateFactor,
                            attempt);
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (canceled_.load(std::memory_order_acquire)) {
        result = canceledResult(job);
        return true;
      }
      remote_ = lease.get();
    }
    WireResult reply;
    const RemoteCallStatus status =
        lease->call(job, reply, sup.deadlineFor(job, attempt));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      remote_ = nullptr;
    }
    lease.reset();  // free the host before any fallback work

    if (canceled() || status == RemoteCallStatus::Canceled) {
      result = canceledResult(job);
      return true;
    }
    if (status == RemoteCallStatus::Answered) {
      {
        std::lock_guard<std::mutex> lock(sup.mutex_);
        ++sup.stats_.remoteAnswered;
      }
      result = std::move(reply);
      return true;
    }
    // Refused / Disconnected / Stalled / Garbled: loop and redispatch.
  }

  {
    std::lock_guard<std::mutex> lock(sup.mutex_);
    ++sup.stats_.remoteDegraded;
  }
  // Hand the local tier the un-escalated budgets.
  job.timeoutMs = baseTimeout;
  job.rlimit = baseRlimit;
  return false;
}

WireResult Supervisor::Job::run(WireJob job, const Fallback& fallback) {
  Supervisor& sup = *owner_;
  {
    std::lock_guard<std::mutex> lock(sup.mutex_);
    ++sup.stats_.jobs;
  }

  {
    // Tier one: the remote host pool (when configured), with redispatch
    // across hosts. Falls through to the subprocess tier on exhaustion.
    WireResult remoteResult;
    if (runRemote(job, remoteResult)) return remoteResult;
  }

  const std::optional<unsigned> baseTimeout = job.timeoutMs;
  const std::optional<unsigned> baseRlimit = job.rlimit;

  for (unsigned attempt = 0; attempt <= sup.options_.maxRetries; ++attempt) {
    if (canceled()) return canceledResult(job);
    if (attempt > 0) {
      {
        std::lock_guard<std::mutex> lock(sup.mutex_);
        ++sup.stats_.retries;
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.retries;
      }
      sleepMs(std::min(sup.options_.backoffCapMs,
                       sup.options_.backoffBaseMs << (attempt - 1)));
    }

    auto worker = sup.checkout();
    if (!worker) break;  // spawn failed / degraded: fall through

    // Escalate the solver budget with each retry (the process-level twin
    // of the in-engine escalate rung), and stamp the attempt ordinal that
    // keys deterministic worker-fault injection.
    job.attempt = attempt;
    if (baseTimeout) {
      job.timeoutMs = scalePow(*baseTimeout, sup.options_.escalateFactor,
                               attempt);
    }
    if (baseRlimit) {
      job.rlimit = scalePow(*baseRlimit, sup.options_.escalateFactor,
                            attempt);
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (canceled_.load(std::memory_order_acquire)) {
        // canceled between the check above and attach: don't start.
        sup.discard(std::move(worker), true);
        return canceledResult(job);
      }
      worker_ = worker.get();
    }

    WireMap frame;
    frame.set("type", "job");
    frame.set("job", encodeJob(job));
    const bool sent = worker->send(frame.encode());

    std::string payload;
    ReadStatus status = ReadStatus::Eof;
    if (sent) {
      status = worker->read(payload, sup.deadlineFor(job, attempt));
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      worker_ = nullptr;
    }
    if (canceled()) {
      sup.discard(std::move(worker), true);
      return canceledResult(job);
    }

    if (status == ReadStatus::Ok) {
      try {
        WireResult result = decodeResult(WireMap::decode(payload));
        sup.checkin(std::move(worker));
        return result;  // including clean in-worker errors: no retry
      } catch (const ProtocolError&) {
        status = ReadStatus::Garbled;  // checksummed but malformed
      }
    }

    switch (status) {
      case ReadStatus::Eof:
        // Worker died before (or instead of) answering: crash.
        sup.discard(std::move(worker), false);
        {
          std::lock_guard<std::mutex> lock(sup.mutex_);
          ++sup.stats_.restarts;
        }
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.restarts;
        }
        break;
      case ReadStatus::Timeout:
        // Hung worker: deadline kill.
        sup.discard(std::move(worker), true);
        {
          std::lock_guard<std::mutex> lock(sup.mutex_);
          ++sup.stats_.timeouts;
          ++sup.stats_.kills;
        }
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.kills;
        }
        break;
      case ReadStatus::Garbled:
        // Torn or corrupt frame: the worker's stream state is untrusted.
        sup.discard(std::move(worker), true);
        {
          std::lock_guard<std::mutex> lock(sup.mutex_);
          ++sup.stats_.protocolErrors;
          ++sup.stats_.kills;
        }
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.kills;
        }
        break;
      case ReadStatus::Ok:
        break;  // unreachable: handled above
    }
  }

  if (canceled()) return canceledResult(job);

  // Retries exhausted or no worker available: degrade to in-process.
  {
    std::lock_guard<std::mutex> lock(sup.mutex_);
    ++sup.stats_.degradedJobs;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.degraded = true;
  }
  if (fallback) return fallback(job);
  WireResult result;
  result.error = "worker attempts exhausted and no in-process fallback";
  return result;
}

void Supervisor::Job::cancel() {
  canceled_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mutex_);
  if (worker_ != nullptr) {
    // The attached worker is mid-solve on our job: SIGKILL it so the
    // blocked read in run() returns immediately. Reaping happens on the
    // running thread (signalKill never touches the pipes it is reading).
    worker_->signalKill();
  }
  if (remote_ != nullptr) {
    // Same move across the machine boundary: shut the socket down so the
    // blocked remote call returns Canceled immediately.
    remote_->abort();
  }
}

JobStats Supervisor::Job::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace buffy::procs
