// Worker supervision (DESIGN.md §13): owns a pool of `buffy --worker`
// subprocesses, ships them serialized jobs, and turns every way a worker
// can fail into either a retry or a clean degradation:
//
//   * reply Ok            -> answer (worker goes back to the idle pool);
//   * reply Ok but error  -> clean in-worker failure, NO retry (the job
//                            itself is broken, not the worker);
//   * Eof (worker died)   -> restart + retry with escalated budget;
//   * Timeout (hang)      -> SIGTERM->SIGKILL + retry;
//   * Garbled (torn/corrupt frame) -> kill + retry;
//   * retries exhausted / spawn keeps failing / binary missing
//                         -> run the caller's in-process fallback.
//
// Retry budgets escalate by escalateFactor^attempt (mirroring the
// in-engine Unknown-retry ladder), respawn backoff is capped exponential,
// and every transition is counted in ProcsStats for the CLI's --json
// report. Jobs are handed out as shared Job handles whose cancel() is
// thread-safe (kills the attached worker) — the process-level twin of
// Analysis::interrupt, driven by the same ScopedInterrupt hooks.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "procs/process.hpp"
#include "procs/wire.hpp"

namespace buffy::procs {

class RemoteHostPool;
class RemoteLease;

struct SupervisorOptions {
  /// Worker executable; empty means this binary (/proc/self/exe).
  std::string workerBinary;
  /// Retries after the first attempt (attempts = 1 + maxRetries).
  unsigned maxRetries = 2;
  /// Timeout/rlimit multiplier applied per retry (budget escalation).
  unsigned escalateFactor = 2;
  /// Per-attempt wall-clock deadline; 0 derives one from the job's solver
  /// budget (timeout x queries x ladder headroom + slack).
  int jobDeadlineMs = 0;
  int deadlineSlackMs = 2000;
  /// Respawn backoff: min(backoffCapMs, backoffBaseMs << attempt).
  int backoffBaseMs = 10;
  int backoffCapMs = 500;
  /// SIGTERM -> SIGKILL escalation grace.
  int termGraceMs = 200;
  /// Consecutive spawn failures before the supervisor degrades
  /// permanently (every later job goes straight to the fallback).
  unsigned maxSpawnFailures = 3;
  /// Idle workers kept warm for reuse.
  std::size_t maxIdleWorkers = 8;
  /// Remote worker tier (DESIGN.md §15), tried before the local
  /// subprocess tier when set; not owned. The degradation ladder becomes
  /// remote host -> local subprocess -> in-process fallback.
  RemoteHostPool* remotePool = nullptr;
};

/// Supervision counters, aggregated across jobs (CLI --json "procs").
struct ProcsStats {
  std::uint64_t jobs = 0;
  std::uint64_t workersSpawned = 0;
  std::uint64_t workersReaped = 0;
  std::uint64_t restarts = 0;        // worker died (Eof) -> respawned
  std::uint64_t retries = 0;         // job attempts after the first
  std::uint64_t kills = 0;           // deadline/garble kills
  std::uint64_t timeouts = 0;        // deadline expiries
  std::uint64_t protocolErrors = 0;  // garbled/torn/malformed frames
  std::uint64_t degradedJobs = 0;    // jobs answered by the fallback
  bool degraded = false;             // supervisor gave up on spawning
  // Remote-tier counters (zero without a remotePool). Connection-level
  // detail (reconnects, stalls, ...) lives in RemoteHostPool's own stats.
  std::uint64_t remoteJobs = 0;      // jobs that tried the remote tier
  std::uint64_t remoteAnswered = 0;  // jobs answered by a remote host
  std::uint64_t redispatches = 0;    // remote attempts re-sent after a
                                     // host failure
  std::uint64_t remoteDegraded = 0;  // jobs that fell off the remote tier

  ProcsStats& operator+=(const ProcsStats& other);
};

/// Per-job supervision counters (portfolio member / sweep point reports).
struct JobStats {
  unsigned retries = 0;
  unsigned restarts = 0;
  unsigned kills = 0;
  unsigned redispatches = 0;  // remote attempts after a host failure
  bool degraded = false;
};

class Supervisor {
 public:
  /// In-process fallback: runs the job when isolation is unavailable.
  using Fallback = std::function<WireResult(const WireJob&)>;

  explicit Supervisor(SupervisorOptions options);
  /// Shuts every idle worker down (EOF, then SIGTERM->SIGKILL).
  ~Supervisor();
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// One supervised job. run() may be called once; cancel() from any
  /// thread, before or during run().
  class Job {
   public:
    /// Runs `job` through a worker with retries; on exhaustion or
    /// degradation answers via `fallback` (or an error result when no
    /// fallback is given). A canceled job returns one canceled Unknown
    /// verdict per query, matching in-process interrupt semantics.
    WireResult run(WireJob job, const Fallback& fallback);
    /// Thread-safe: kills the attached worker (if any) and makes run()
    /// return canceled verdicts instead of starting new attempts.
    void cancel();
    [[nodiscard]] bool canceled() const {
      return canceled_.load(std::memory_order_acquire);
    }
    [[nodiscard]] JobStats stats() const;

   private:
    friend class Supervisor;
    explicit Job(Supervisor* owner) : owner_(owner) {}

    /// The remote tier: tries the host pool with redispatch; true when
    /// the job was answered (or canceled) there.
    bool runRemote(WireJob& job, WireResult& result);

    Supervisor* owner_;
    std::atomic<bool> canceled_{false};
    mutable std::mutex mutex_;  // guards worker_ + remote_ + stats_
    WorkerProcess* worker_ = nullptr;
    RemoteLease* remote_ = nullptr;
    JobStats stats_;
  };
  using JobPtr = std::shared_ptr<Job>;

  JobPtr createJob();

  /// False when the worker binary is missing or spawning has degraded —
  /// callers can skip straight to the in-process path.
  [[nodiscard]] bool available() const;

  [[nodiscard]] ProcsStats stats() const;

  /// Graceful shutdown of the idle pool (also run by the destructor).
  void shutdownWorkers();

  [[nodiscard]] const SupervisorOptions& options() const { return options_; }

 private:
  std::unique_ptr<WorkerProcess> checkout();
  void checkin(std::unique_ptr<WorkerProcess> worker);
  void discard(std::unique_ptr<WorkerProcess> worker, bool viaKill);
  [[nodiscard]] int deadlineFor(const WireJob& job, unsigned attempt) const;

  /// Forks a worker on the dedicated spawner thread (lazily started).
  /// PR_SET_PDEATHSIG binds a child's lifetime to the thread that forked
  /// it, so forking from a pool/job thread would SIGKILL the worker the
  /// moment that thread drains its work — poisoning the idle pool for
  /// every later job that tries to reuse it. The spawner thread lives
  /// until the supervisor is destroyed, making thread death and process
  /// death the same event for every worker.
  std::unique_ptr<WorkerProcess> spawnWorker();
  void spawnerLoop();

  SupervisorOptions options_;
  std::string binary_;

  mutable std::mutex mutex_;  // guards idle_, stats_, spawnFailures_
  std::deque<std::unique_ptr<WorkerProcess>> idle_;
  ProcsStats stats_;
  unsigned spawnFailures_ = 0;
  bool degraded_ = false;

  std::mutex spawnMutex_;  // guards the spawn queue + spawner lifecycle
  std::condition_variable spawnCv_;
  std::deque<std::promise<std::unique_ptr<WorkerProcess>>> spawnQueue_;
  bool spawnerExit_ = false;
  std::thread spawner_;
};

}  // namespace buffy::procs
