#include "procs/wire.hpp"

#include <sstream>

namespace buffy::procs {

namespace {

// ---- small helpers ------------------------------------------------------

std::string indexed(const char* prefix, std::size_t i,
                    const char* suffix = nullptr) {
  std::string key = prefix;
  key += '.';
  key += std::to_string(i);
  if (suffix != nullptr) {
    key += '.';
    key += suffix;
  }
  return key;
}

void setMaybeUint(WireMap& map, const char* key,
                  const std::optional<unsigned>& value) {
  if (value) map.setUint(key, *value);
}

std::optional<unsigned> getMaybeUint(const WireMap& map, const char* key) {
  if (!map.has(key)) return std::nullopt;
  return static_cast<unsigned>(map.getUint(key));
}

std::string joinInts(const std::vector<std::int64_t>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(values[i]);
  }
  return out;
}

std::vector<std::int64_t> splitInts(const std::string& text) {
  std::vector<std::int64_t> out;
  if (text.empty()) return out;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = text.find(',', start);
    const std::string piece = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    try {
      std::size_t used = 0;
      out.push_back(std::stoll(piece, &used));
      if (used != piece.size()) throw ProtocolError("trailing junk");
    } catch (const ProtocolError&) {
      throw;
    } catch (const std::exception&) {
      throw ProtocolError("malformed integer list entry '" + piece + "'");
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

void setStringList(WireMap& map, const char* prefix,
                   const std::vector<std::string>& values) {
  map.setUint(std::string(prefix) + ".count", values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    map.set(indexed(prefix, i), values[i]);
  }
}

std::vector<std::string> getStringList(const WireMap& map,
                                       const char* prefix) {
  const std::uint64_t count = map.getUint(std::string(prefix) + ".count");
  if (count > kMaxFramePayload) {
    throw ProtocolError("absurd list count for '" + std::string(prefix) + "'");
  }
  std::vector<std::string> values;
  values.reserve(static_cast<std::size_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    values.push_back(map.get(indexed(prefix, i)));
  }
  return values;
}

// ---- nested records -----------------------------------------------------

std::string encodeBuffer(const core::BufferSpec& spec) {
  WireMap map;
  map.set("param", spec.param);
  map.setInt("role", static_cast<int>(spec.role));
  map.setInt("capacity", spec.capacity);
  setStringList(map, "field", spec.schema.fields);
  map.setInt("maxArrivalsPerStep", spec.maxArrivalsPerStep);
  if (spec.modelOverride) {
    map.setInt("modelOverride", static_cast<int>(*spec.modelOverride));
  }
  map.set("classField", spec.classField);
  map.setInt("classDomain", spec.classDomain);
  map.setInt("bytesPerPacket", spec.bytesPerPacket);
  map.setInt("maxPacketBytes", spec.maxPacketBytes);
  return map.encode();
}

buffers::ModelKind modelKindFromInt(std::int64_t value) {
  if (value != static_cast<int>(buffers::ModelKind::List) &&
      value != static_cast<int>(buffers::ModelKind::Counter)) {
    throw ProtocolError("unknown buffer model kind " + std::to_string(value));
  }
  return static_cast<buffers::ModelKind>(value);
}

core::BufferSpec decodeBuffer(const std::string& bytes) {
  const WireMap map = WireMap::decode(bytes);
  core::BufferSpec spec;
  spec.param = map.get("param");
  const std::int64_t role = map.getInt("role");
  if (role < 0 || role > static_cast<int>(core::BufferSpec::Role::Internal)) {
    throw ProtocolError("unknown buffer role " + std::to_string(role));
  }
  spec.role = static_cast<core::BufferSpec::Role>(role);
  spec.capacity = static_cast<int>(map.getInt("capacity"));
  spec.schema.fields = getStringList(map, "field");
  spec.maxArrivalsPerStep = static_cast<int>(map.getInt("maxArrivalsPerStep"));
  if (map.has("modelOverride")) {
    spec.modelOverride = modelKindFromInt(map.getInt("modelOverride"));
  }
  spec.classField = map.get("classField");
  spec.classDomain = static_cast<int>(map.getInt("classDomain"));
  spec.bytesPerPacket = static_cast<int>(map.getInt("bytesPerPacket"));
  spec.maxPacketBytes = static_cast<int>(map.getInt("maxPacketBytes"));
  return spec;
}

std::string encodeProgram(const core::ProgramSpec& spec) {
  WireMap map;
  map.set("instance", spec.instance);
  map.set("source", spec.source);
  map.setUint("const.count", spec.compile.constants.size());
  std::size_t i = 0;
  for (const auto& [name, value] : spec.compile.constants) {
    map.set(indexed("const", i, "name"), name);
    map.setInt(indexed("const", i, "value"), value);
    ++i;
  }
  map.setInt("defaultListCapacity", spec.compile.defaultListCapacity);
  map.setUint("buffer.count", spec.buffers.size());
  for (std::size_t b = 0; b < spec.buffers.size(); ++b) {
    map.set(indexed("buffer", b), encodeBuffer(spec.buffers[b]));
  }
  return map.encode();
}

core::ProgramSpec decodeProgram(const std::string& bytes) {
  const WireMap map = WireMap::decode(bytes);
  core::ProgramSpec spec;
  spec.instance = map.get("instance");
  spec.source = map.get("source");
  const std::uint64_t constants = map.getUint("const.count");
  for (std::size_t i = 0; i < constants; ++i) {
    spec.compile.constants[map.get(indexed("const", i, "name"))] =
        map.getInt(indexed("const", i, "value"));
  }
  spec.compile.defaultListCapacity =
      static_cast<int>(map.getInt("defaultListCapacity"));
  const std::uint64_t buffers = map.getUint("buffer.count");
  for (std::size_t b = 0; b < buffers; ++b) {
    spec.buffers.push_back(decodeBuffer(map.get(indexed("buffer", b))));
  }
  return spec;
}

std::string encodeConnection(const core::Connection& conn) {
  WireMap map;
  map.set("fromInstance", conn.fromInstance);
  map.set("fromParam", conn.fromParam);
  map.setInt("fromIndex", conn.fromIndex);
  map.set("toInstance", conn.toInstance);
  map.set("toParam", conn.toParam);
  map.setInt("toIndex", conn.toIndex);
  return map.encode();
}

core::Connection decodeConnection(const std::string& bytes) {
  const WireMap map = WireMap::decode(bytes);
  core::Connection conn;
  conn.fromInstance = map.get("fromInstance");
  conn.fromParam = map.get("fromParam");
  conn.fromIndex = static_cast<int>(map.getInt("fromIndex"));
  conn.toInstance = map.get("toInstance");
  conn.toParam = map.get("toParam");
  conn.toIndex = static_cast<int>(map.getInt("toIndex"));
  return conn;
}

std::string encodeFault(const WireFault& fault) {
  WireMap map;
  map.set("scope", fault.scope);
  map.setUint("nth", fault.nth);
  map.setInt("kind", fault.kind);
  map.set("reason", fault.reason);
  map.setUint("delayMs", fault.delayMs);
  return map.encode();
}

WireFault decodeFault(const std::string& bytes) {
  const WireMap map = WireMap::decode(bytes);
  WireFault fault;
  fault.scope = map.get("scope");
  fault.nth = map.getUint("nth");
  const std::int64_t kind = map.getInt("kind");
  if (kind < 0 ||
      kind > static_cast<int>(backends::FaultAction::Kind::DuplicateReply)) {
    throw ProtocolError("unknown fault kind " + std::to_string(kind));
  }
  fault.kind = static_cast<int>(kind);
  fault.reason = map.get("reason");
  fault.delayMs = static_cast<unsigned>(map.getUint("delayMs"));
  return fault;
}

std::string encodeAttempt(const core::SolveAttempt& attempt) {
  WireMap map;
  map.set("stage", attempt.stage);
  map.set("outcome", attempt.outcome);
  map.set("reason", attempt.reason);
  map.setDouble("seconds", attempt.seconds);
  map.setUint("rlimitUsed", attempt.rlimitUsed);
  setMaybeUint(map, "seed", attempt.seed);
  setMaybeUint(map, "timeoutMs", attempt.timeoutMs);
  return map.encode();
}

core::SolveAttempt decodeAttempt(const std::string& bytes) {
  const WireMap map = WireMap::decode(bytes);
  core::SolveAttempt attempt;
  attempt.stage = map.get("stage");
  attempt.outcome = map.get("outcome");
  attempt.reason = map.get("reason");
  attempt.seconds = map.getDouble("seconds");
  attempt.rlimitUsed = map.getUint("rlimitUsed");
  attempt.seed = getMaybeUint(map, "seed");
  attempt.timeoutMs = getMaybeUint(map, "timeoutMs");
  return attempt;
}

std::string encodeTrace(const core::Trace& trace) {
  WireMap map;
  map.setInt("horizon", trace.horizon);
  map.setUint("series.count", trace.series.size());
  std::size_t i = 0;
  for (const auto& [name, values] : trace.series) {
    map.set(indexed("series", i, "name"), name);
    map.set(indexed("series", i, "values"), joinInts(values));
    ++i;
  }
  return map.encode();
}

core::Trace decodeTrace(const std::string& bytes) {
  const WireMap map = WireMap::decode(bytes);
  core::Trace trace;
  trace.horizon = static_cast<int>(map.getInt("horizon"));
  const std::uint64_t series = map.getUint("series.count");
  for (std::size_t i = 0; i < series; ++i) {
    trace.series[map.get(indexed("series", i, "name"))] =
        splitInts(map.get(indexed("series", i, "values")));
  }
  return trace;
}

std::string encodeVerdict(const WireVerdict& verdict) {
  WireMap map;
  map.set("verdict", verdict.verdict);
  map.set("detail", verdict.detail);
  map.setDouble("solveSeconds", verdict.solveSeconds);
  map.setBool("canceled", verdict.canceled);
  map.setBool("witnessChecked", verdict.witnessChecked);
  map.set("cacheKey", verdict.cacheKey);
  map.setBool("cached", verdict.cached);
  map.setUint("attempt.count", verdict.attempts.size());
  for (std::size_t i = 0; i < verdict.attempts.size(); ++i) {
    map.set(indexed("attempt", i), encodeAttempt(verdict.attempts[i]));
  }
  if (verdict.trace) map.set("trace", encodeTrace(*verdict.trace));
  return map.encode();
}

WireVerdict decodeVerdict(const std::string& bytes) {
  const WireMap map = WireMap::decode(bytes);
  WireVerdict verdict;
  verdict.verdict = map.get("verdict");
  // Reject unknown names right here: a garbled-but-checksummed reply must
  // not travel further as if it answered the query.
  (void)verdictFromName(verdict.verdict);
  verdict.detail = map.get("detail");
  verdict.solveSeconds = map.getDouble("solveSeconds");
  verdict.canceled = map.getBool("canceled");
  verdict.witnessChecked = map.getBool("witnessChecked");
  verdict.cacheKey = map.get("cacheKey");
  verdict.cached = map.getBool("cached");
  const std::uint64_t attempts = map.getUint("attempt.count");
  for (std::size_t i = 0; i < attempts; ++i) {
    verdict.attempts.push_back(decodeAttempt(map.get(indexed("attempt", i))));
  }
  if (map.has("trace")) verdict.trace = decodeTrace(map.get("trace"));
  return verdict;
}

}  // namespace

// ---- job ----------------------------------------------------------------

std::string encodeJob(const WireJob& job) {
  WireMap map;
  map.setUint("program.count", job.programs.size());
  for (std::size_t i = 0; i < job.programs.size(); ++i) {
    map.set(indexed("program", i), encodeProgram(job.programs[i]));
  }
  map.setUint("connection.count", job.connections.size());
  for (std::size_t i = 0; i < job.connections.size(); ++i) {
    map.set(indexed("connection", i), encodeConnection(job.connections[i]));
  }
  map.setInt("horizon", job.horizon);
  map.setInt("model", static_cast<int>(job.model));
  map.setBool("verify", job.verify);
  map.setBool("viaSmtLib", job.viaSmtLib);
  setStringList(map, "query", job.queries);
  setStringList(map, "workload", job.workloadSpecs);
  setMaybeUint(map, "timeoutMs", job.timeoutMs);
  setMaybeUint(map, "rlimit", job.rlimit);
  setMaybeUint(map, "maxMemoryMb", job.maxMemoryMb);
  setMaybeUint(map, "randomSeed", job.randomSeed);
  map.setBool("retryEnabled", job.retryEnabled);
  map.setBool("replayWitness", job.replayWitness);
  map.setBool("optEnabled", job.optEnabled);
  map.setBool("unrollLoops", job.unrollLoops);
  map.setBool("symbolicInitialState", job.symbolicInitialState);
  map.setBool("cacheEnabled", job.cacheEnabled);
  map.set("cacheDir", job.cacheDir);
  map.setUint("cacheMaxDiskBytes", job.cacheMaxDiskBytes);
  map.setBool("cacheVerify", job.cacheVerify);
  map.setUint("budget.maxNestingDepth", job.budget.maxNestingDepth);
  map.setUint("budget.maxExprTerms", job.budget.maxExprTerms);
  map.setUint("budget.maxAstNodes", job.budget.maxAstNodes);
  map.setUint("budget.maxUnrolledStmts", job.budget.maxUnrolledStmts);
  map.setUint("budget.maxInlinedStmts", job.budget.maxInlinedStmts);
  map.setUint("budget.maxExecStmts", job.budget.maxExecStmts);
  map.setUint("budget.maxTermNodes", job.budget.maxTermNodes);
  map.set("faultScope", job.faultScope);
  map.setUint("fault.count", job.faults.size());
  for (std::size_t i = 0; i < job.faults.size(); ++i) {
    map.set(indexed("fault", i), encodeFault(job.faults[i]));
  }
  map.setUint("attempt", job.attempt);
  return map.encode();
}

WireJob decodeJob(const WireMap& map) {
  WireJob job;
  const std::uint64_t programs = map.getUint("program.count");
  for (std::size_t i = 0; i < programs; ++i) {
    job.programs.push_back(decodeProgram(map.get(indexed("program", i))));
  }
  const std::uint64_t connections = map.getUint("connection.count");
  for (std::size_t i = 0; i < connections; ++i) {
    job.connections.push_back(
        decodeConnection(map.get(indexed("connection", i))));
  }
  job.horizon = static_cast<int>(map.getInt("horizon"));
  job.model = modelKindFromInt(map.getInt("model"));
  job.verify = map.getBool("verify");
  job.viaSmtLib = map.getBool("viaSmtLib");
  job.queries = getStringList(map, "query");
  job.workloadSpecs = getStringList(map, "workload");
  job.timeoutMs = getMaybeUint(map, "timeoutMs");
  job.rlimit = getMaybeUint(map, "rlimit");
  job.maxMemoryMb = getMaybeUint(map, "maxMemoryMb");
  job.randomSeed = getMaybeUint(map, "randomSeed");
  job.retryEnabled = map.getBool("retryEnabled");
  job.replayWitness = map.getBool("replayWitness");
  job.optEnabled = map.getBool("optEnabled");
  job.unrollLoops = map.getBool("unrollLoops");
  job.symbolicInitialState = map.getBool("symbolicInitialState");
  job.cacheEnabled = map.getBool("cacheEnabled");
  job.cacheDir = map.get("cacheDir");
  job.cacheMaxDiskBytes = map.getUint("cacheMaxDiskBytes");
  job.cacheVerify = map.getBool("cacheVerify");
  job.budget.maxNestingDepth = map.getUint("budget.maxNestingDepth");
  job.budget.maxExprTerms = map.getUint("budget.maxExprTerms");
  job.budget.maxAstNodes = map.getUint("budget.maxAstNodes");
  job.budget.maxUnrolledStmts = map.getUint("budget.maxUnrolledStmts");
  job.budget.maxInlinedStmts = map.getUint("budget.maxInlinedStmts");
  job.budget.maxExecStmts = map.getUint("budget.maxExecStmts");
  job.budget.maxTermNodes = map.getUint("budget.maxTermNodes");
  job.faultScope = map.get("faultScope");
  const std::uint64_t faults = map.getUint("fault.count");
  for (std::size_t i = 0; i < faults; ++i) {
    job.faults.push_back(decodeFault(map.get(indexed("fault", i))));
  }
  job.attempt = static_cast<unsigned>(map.getUint("attempt"));
  return job;
}

// ---- result -------------------------------------------------------------

std::string encodeResult(const WireResult& result) {
  WireMap map;
  map.setUint("verdict.count", result.verdicts.size());
  for (std::size_t i = 0; i < result.verdicts.size(); ++i) {
    map.set(indexed("verdict", i), encodeVerdict(result.verdicts[i]));
  }
  map.setUint("incrementalQueries", result.incrementalQueries);
  if (!result.error.empty()) map.set("error", result.error);
  return map.encode();
}

WireResult decodeResult(const WireMap& map) {
  WireResult result;
  const std::uint64_t verdicts = map.getUint("verdict.count");
  for (std::size_t i = 0; i < verdicts; ++i) {
    result.verdicts.push_back(decodeVerdict(map.get(indexed("verdict", i))));
  }
  result.incrementalQueries = map.getUint("incrementalQueries");
  if (const auto error = map.maybe("error")) result.error = *error;
  return result;
}

// ---- fault plan ---------------------------------------------------------

bool isWorkerFaultKind(backends::FaultAction::Kind kind) {
  switch (kind) {
    case backends::FaultAction::Kind::CrashBeforeReply:
    case backends::FaultAction::Kind::Hang:
    case backends::FaultAction::Kind::GarbledFrame:
    case backends::FaultAction::Kind::PartialWrite:
      return true;
    case backends::FaultAction::Kind::ForceUnknown:
    case backends::FaultAction::Kind::Throw:
    case backends::FaultAction::Kind::Delay:
    case backends::FaultAction::Kind::CorruptWitness:
    case backends::FaultAction::Kind::ConnRefused:
    case backends::FaultAction::Kind::DisconnectMidFrame:
    case backends::FaultAction::Kind::StallSocket:
    case backends::FaultAction::Kind::DuplicateReply:
      return false;
  }
  return false;
}

bool isNetworkFaultKind(backends::FaultAction::Kind kind) {
  switch (kind) {
    case backends::FaultAction::Kind::ConnRefused:
    case backends::FaultAction::Kind::DisconnectMidFrame:
    case backends::FaultAction::Kind::StallSocket:
    case backends::FaultAction::Kind::DuplicateReply:
      return true;
    default:
      return false;
  }
}

backends::FaultPlanPtr faultPlanFromWire(
    const std::vector<WireFault>& faults) {
  if (faults.empty()) return nullptr;
  auto plan = std::make_shared<backends::FaultPlan>();
  for (const auto& fault : faults) {
    backends::FaultAction action;
    action.kind = static_cast<backends::FaultAction::Kind>(fault.kind);
    action.reason = fault.reason;
    action.delayMs = fault.delayMs;
    plan->at(fault.scope, static_cast<std::size_t>(fault.nth),
             std::move(action));
  }
  return plan;
}

std::vector<WireFault> faultsToWire(const backends::FaultPlanPtr& plan) {
  std::vector<WireFault> faults;
  if (!plan) return faults;
  for (const auto& [key, action] : plan->actions()) {
    WireFault fault;
    fault.scope = key.first;
    fault.nth = key.second;
    fault.kind = static_cast<int>(action.kind);
    fault.reason = action.reason;
    fault.delayMs = action.delayMs;
    faults.push_back(std::move(fault));
  }
  return faults;
}

// ---- describability + option plumbing -----------------------------------

bool describable(const core::Network& network, const core::Workload& workload,
                 const std::vector<std::string>& workloadSpecs) {
  // Contracts carry invariant closures; programmatic workload rules are
  // opaque std::function values. Only spec-string workloads survive the
  // wire (the worker re-parses them at its own horizon).
  if (!network.contracts().empty()) return false;
  return workload.ruleCount() == 0 || !workloadSpecs.empty();
}

void applyOptionsToJob(const core::AnalysisOptions& options, WireJob& job) {
  job.horizon = options.horizon;
  job.model = options.model;
  job.timeoutMs = options.timeoutMs;
  job.rlimit = options.rlimit;
  job.maxMemoryMb = options.maxMemoryMb;
  job.randomSeed = options.randomSeed;
  job.retryEnabled = options.retry.enabled;
  job.replayWitness = options.replayWitness;
  job.optEnabled = options.opt.enabled;
  job.unrollLoops = options.unrollLoops;
  job.symbolicInitialState = options.symbolicInitialState;
  job.budget = options.budget;
  if (options.cache) {
    job.cacheEnabled = true;
    job.cacheDir = options.cache->options().dir;
    job.cacheMaxDiskBytes = options.cache->options().maxDiskBytes;
  }
  job.cacheVerify = options.cacheVerify;
  job.faults = faultsToWire(options.faultPlan);
}

core::AnalysisOptions optionsFromJob(const WireJob& job) {
  core::AnalysisOptions options;
  options.horizon = job.horizon;
  options.model = job.model;
  options.timeoutMs = job.timeoutMs;
  options.rlimit = job.rlimit;
  options.maxMemoryMb = job.maxMemoryMb;
  options.randomSeed = job.randomSeed;
  options.retry.enabled = job.retryEnabled;
  options.replayWitness = job.replayWitness;
  options.opt.enabled = job.optEnabled;
  options.unrollLoops = job.unrollLoops;
  options.symbolicInitialState = job.symbolicInitialState;
  options.budget = job.budget;
  if (job.cacheEnabled) {
    cache::VerdictCacheOptions copts;
    copts.dir = job.cacheDir;
    copts.maxDiskBytes = job.cacheMaxDiskBytes;
    options.cache = std::make_shared<cache::VerdictCache>(std::move(copts));
    options.cacheVerify = job.cacheVerify;
  }
  options.faultPlan = faultPlanFromWire(job.faults);
  return options;
}

// ---- AnalysisResult <-> wire --------------------------------------------

WireVerdict wireFromAnalysis(const core::AnalysisResult& result) {
  WireVerdict wire;
  wire.verdict = core::verdictName(result.verdict);
  wire.detail = result.detail;
  wire.solveSeconds = result.solveSeconds;
  wire.canceled = result.canceled;
  wire.witnessChecked = result.witnessChecked;
  wire.attempts = result.attempts;
  wire.trace = result.trace;
  wire.cacheKey = result.cacheKey;
  wire.cached = result.cached;
  return wire;
}

core::AnalysisResult analysisFromWire(const WireVerdict& wire) {
  core::AnalysisResult result;
  result.verdict = verdictFromName(wire.verdict);
  result.detail = wire.detail;
  result.solveSeconds = wire.solveSeconds;
  result.canceled = wire.canceled;
  result.witnessChecked = wire.witnessChecked;
  result.attempts = wire.attempts;
  result.trace = wire.trace;
  result.cacheKey = wire.cacheKey;
  result.cached = wire.cached;
  return result;
}

core::Verdict verdictFromName(const std::string& name) {
  static constexpr core::Verdict kAll[] = {
      core::Verdict::Satisfiable,     core::Verdict::Unsatisfiable,
      core::Verdict::Verified,        core::Verdict::Violated,
      core::Verdict::WitnessMismatch, core::Verdict::Unknown,
  };
  for (const core::Verdict v : kAll) {
    if (name == core::verdictName(v)) return v;
  }
  throw ProtocolError("unknown verdict name '" + name + "'");
}

void populateCache(cache::VerdictCache& cache, const WireVerdict& wire) {
  if (wire.cacheKey.empty() || wire.canceled) return;
  const auto verdict = core::parseVerdictName(wire.verdict);
  if (!verdict) return;
  switch (*verdict) {
    case core::Verdict::Satisfiable:
    case core::Verdict::Unsatisfiable:
    case core::Verdict::Verified:
    case core::Verdict::Violated: break;
    default: return;
  }
  cache::CachedVerdict value;
  value.verdict = wire.verdict;
  value.detail = wire.detail;
  value.solveSeconds = wire.solveSeconds;
  value.witnessChecked = wire.witnessChecked;
  value.trace = wire.trace;
  cache.store(wire.cacheKey, value);
}

}  // namespace buffy::procs
