// Serialized solver jobs and results (DESIGN.md §13): everything a
// crash-isolated worker needs to reproduce one analysis unit — model
// sources + compile options + buffer configuration, the query list, the
// horizon, the solve budget, and the fault plan — plus the result record
// it sends back (verdict, witness trace, attempt log).
//
// A WireJob is self-contained on purpose: the worker re-compiles from
// source rather than receiving pointers into the parent's arena, so a
// worker crash can never corrupt parent state and a retried job is
// bit-identical to its first attempt. The cost (one front-half compile per
// job) matches what the in-process sweep already pays per horizon.
//
// Not every analysis is describable this way: contract networks carry
// invariant closures, and programmatic Workload rules are opaque
// std::function values. `describable()` gates the isolate path; callers
// degrade to the in-process engine when it refuses.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "backends/fault_plan.hpp"
#include "cache/verdict_cache.hpp"
#include "core/analysis.hpp"
#include "core/network.hpp"
#include "procs/protocol.hpp"

namespace buffy::procs {

/// One scheduled fault, wire form of FaultPlan::at.
struct WireFault {
  std::string scope;
  std::uint64_t nth = 0;
  int kind = 0;  // static_cast<int>(FaultAction::Kind)
  std::string reason;
  unsigned delayMs = 0;
};

/// A self-contained analysis job.
struct WireJob {
  /// Program instances + connections (contract-free networks only).
  std::vector<core::ProgramSpec> programs;
  std::vector<core::Connection> connections;

  int horizon = 4;
  buffers::ModelKind model = buffers::ModelKind::List;
  bool verify = false;
  /// Solve through SMT-LIB emission + reparse instead of the incremental
  /// engine (the portfolio's "smtlib" member).
  bool viaSmtLib = false;

  /// Query texts, answered in order through one shared engine. An empty
  /// list with `verify` means Query::always() (bare `buffy verify`).
  std::vector<std::string> queries;
  /// CLI-format workload specs ("B:lo:hi" / "B@t:lo:hi"), re-parsed by the
  /// worker at its own horizon (core::workloadFromSpecs).
  std::vector<std::string> workloadSpecs;

  // Solve budget + engine options (mirrors AnalysisOptions).
  std::optional<unsigned> timeoutMs = 120000;
  std::optional<unsigned> rlimit;
  std::optional<unsigned> maxMemoryMb;
  std::optional<unsigned> randomSeed;
  bool retryEnabled = true;
  bool replayWitness = true;
  bool optEnabled = true;
  bool unrollLoops = false;
  bool symbolicInitialState = false;
  CompileBudget budget;

  /// Verdict-cache configuration (DESIGN.md §14). The worker rebuilds its
  /// own VerdictCache from these: the in-memory tier starts cold, but the
  /// disk tier (cacheDir) is the same directory the parent uses, so a
  /// worker both reads the parent's warm entries and leaves its own for
  /// later runs. Keys are content-addressed over the recompiled terms, so
  /// parent and worker land on identical keys by construction.
  bool cacheEnabled = false;
  std::string cacheDir;
  std::uint64_t cacheMaxDiskBytes = 0;
  bool cacheVerify = false;

  /// Fault-injection scope this job's engine runs under, and the full
  /// fault plan (worker-kind entries are interpreted by the worker loop
  /// keyed on (faultScope, attempt); solver-kind entries reach the
  /// engine as usual).
  std::string faultScope;
  std::vector<WireFault> faults;

  /// Retry ordinal, stamped by the supervisor: 0 on the first try, +1 per
  /// retry. Keys deterministic worker-fault injection.
  unsigned attempt = 0;
};

/// Wire form of one query's AnalysisResult.
struct WireVerdict {
  std::string verdict;  // core::verdictName
  std::string detail;
  double solveSeconds = 0.0;
  bool canceled = false;
  bool witnessChecked = false;
  std::vector<core::SolveAttempt> attempts;
  std::optional<core::Trace> trace;
  /// Content-addressed cache key the worker's engine derived for this
  /// query ("" when the job ran uncached). The supervisor's caller uses it
  /// to replay the verdict into the parent-side cache (populateCache).
  std::string cacheKey;
  /// True when the worker answered this query from its cache.
  bool cached = false;
};

/// Whole-job reply.
struct WireResult {
  /// One verdict per job query, in query order. Empty iff `error` is set.
  std::vector<WireVerdict> verdicts;
  /// Incremental-session queries the worker's engine answered (sweep
  /// accounting).
  std::uint64_t incrementalQueries = 0;
  /// A clean in-worker failure (compile error, budget exceeded). The job
  /// was *answered* — with a failure — so the supervisor does not retry.
  std::string error;
};

// ---- codecs -------------------------------------------------------------

std::string encodeJob(const WireJob& job);
WireJob decodeJob(const WireMap& payload);

std::string encodeResult(const WireResult& result);
WireResult decodeResult(const WireMap& payload);

/// True when `kind` is interpreted by the worker loop (process-level
/// fault) rather than by the solver backend.
bool isWorkerFaultKind(backends::FaultAction::Kind kind);

/// True when `kind` is interpreted by the remote transport (ConnRefused
/// client-side, the rest by the `--serve` connection loop); the worker
/// loop and solver backends treat these as no-ops.
bool isNetworkFaultKind(backends::FaultAction::Kind kind);

/// Builds the job's fault plan (all entries; the backend ignores
/// worker-kind actions).
backends::FaultPlanPtr faultPlanFromWire(const std::vector<WireFault>& faults);
std::vector<WireFault> faultsToWire(const backends::FaultPlanPtr& plan);

/// Can this analysis be shipped to a worker process? Requires a
/// contract-free network, textual (or empty-verify) queries, and a
/// workload either empty or covered by `workloadSpecs`.
bool describable(const core::Network& network,
                 const core::Workload& workload,
                 const std::vector<std::string>& workloadSpecs);

/// Builds the engine-options part of a WireJob from AnalysisOptions (the
/// network/query/workload parts are the caller's).
void applyOptionsToJob(const core::AnalysisOptions& options, WireJob& job);
/// The inverse: engine options the worker runs the job with.
core::AnalysisOptions optionsFromJob(const WireJob& job);

/// AnalysisResult <-> WireVerdict.
WireVerdict wireFromAnalysis(const core::AnalysisResult& result);
core::AnalysisResult analysisFromWire(const WireVerdict& wire);

/// Inverse of core::verdictName; throws ProtocolError on an unknown name
/// (a garbled reply must not be mistaken for an answer).
core::Verdict verdictFromName(const std::string& name);

/// Replays a worker-reported verdict into a parent-side cache: conclusive,
/// non-canceled verdicts carrying a cache key are stored; everything else
/// is ignored. Safe to call on every reply verdict.
void populateCache(cache::VerdictCache& cache, const WireVerdict& wire);

}  // namespace buffy::procs
