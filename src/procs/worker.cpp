#include "procs/worker.hpp"

#include <csignal>
#include <ctime>
#include <unistd.h>

#include "core/query.hpp"
#include "core/workload.hpp"

namespace buffy::procs {

namespace {

[[noreturn]] void hangForever() {
  // Models a wedged solver: stop responding until the supervisor's
  // deadline expires and it kills us.
  timespec tick{};
  tick.tv_nsec = 100'000'000;  // 100ms
  for (;;) nanosleep(&tick, nullptr);
}

}  // namespace

WireResult serveJob(const WireJob& job) {
  WireResult result;
  try {
    core::Network network;
    for (const auto& program : job.programs) network.add(program);
    for (const auto& conn : job.connections) {
      network.connect(conn.fromInstance, conn.fromParam, conn.fromIndex,
                      conn.toInstance, conn.toParam, conn.toIndex);
    }
    core::Analysis engine(std::move(network), optionsFromJob(job));
    engine.setFaultScope(job.faultScope);
    if (!job.workloadSpecs.empty()) {
      engine.setWorkload(
          core::workloadFromSpecs(job.workloadSpecs, job.horizon));
    }
    std::vector<core::Query> queries;
    for (const auto& text : job.queries) {
      queries.push_back(text.empty() ? core::Query::always()
                                     : core::Query::expr(text));
    }
    if (queries.empty()) queries.push_back(core::Query::always());
    for (const auto& query : queries) {
      const core::AnalysisResult r =
          job.viaSmtLib ? engine.solveViaSmtLib(query, job.verify)
          : job.verify  ? engine.verify(query)
                        : engine.check(query);
      result.verdicts.push_back(wireFromAnalysis(r));
    }
    result.incrementalQueries = engine.incrementalQueries();
  } catch (const std::exception& e) {
    // A clean in-worker failure: the job was *answered*, with a failure —
    // the supervisor reports it instead of retrying.
    result.verdicts.clear();
    result.error = e.what();
  }
  return result;
}

int runWorker() {
  // The parent coordinates shutdown through the pipe (EOF / shutdown
  // frame) and SIGTERM; a terminal Ctrl-C must not race the parent's own
  // interrupted-report path by killing workers out from under it.
  std::signal(SIGINT, SIG_IGN);
  // A dead parent turns reply writes into EPIPE errors, not process death.
  std::signal(SIGPIPE, SIG_IGN);

  std::string payload;
  for (;;) {
    const ReadStatus status = readFrame(STDIN_FILENO, payload, -1);
    if (status == ReadStatus::Eof) return 0;
    if (status != ReadStatus::Ok) return 65;  // torn job frame: bail out

    std::optional<backends::FaultAction> fault;
    WireResult result;
    try {
      const WireMap frame = WireMap::decode(payload);
      const std::string type = frame.get("type");
      if (type == "shutdown") return 0;
      if (type != "job") {
        throw ProtocolError("unknown frame type '" + type + "'");
      }
      const WireJob job = decodeJob(WireMap::decode(frame.get("job")));

      if (const auto plan = faultPlanFromWire(job.faults)) {
        fault = plan->actionFor(job.faultScope, job.attempt);
        if (fault && !isWorkerFaultKind(fault->kind)) fault.reset();
      }
      if (fault) {
        if (fault->kind == backends::FaultAction::Kind::CrashBeforeReply) {
          _exit(70);
        }
        if (fault->kind == backends::FaultAction::Kind::Hang) hangForever();
      }

      result = serveJob(job);
    } catch (const std::exception& e) {
      // A malformed-but-checksummed frame is a parent-side bug; answer with
      // an error reply rather than wasting the supervisor's retries.
      result.verdicts.clear();
      result.error = e.what();
    }

    const std::string reply = encodeResult(result);
    if (fault && fault->kind == backends::FaultAction::Kind::GarbledFrame) {
      // The supervisor sees Garbled, kills us, and retries elsewhere.
      if (!writeGarbledFrame(STDOUT_FILENO, reply)) return 0;
      continue;
    }
    if (fault && fault->kind == backends::FaultAction::Kind::PartialWrite) {
      // Die mid-write: header + half a payload, then gone.
      writePartialFrame(STDOUT_FILENO, reply);
      _exit(70);
    }
    if (!writeFrame(STDOUT_FILENO, reply)) return 0;  // parent went away
  }
}

}  // namespace buffy::procs
