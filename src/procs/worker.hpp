// The `buffy --worker` loop (DESIGN.md §13): serves framed analysis jobs
// on stdin/stdout until the parent closes the pipe or sends a shutdown
// frame. Each job is self-contained (procs/wire.hpp) — the worker
// recompiles from source, builds one engine, answers every query through
// it (incremental session amortization, same as the in-process sweep
// shard body), and replies with the full verdict record including the
// witness trace and the witness-replay cross-check outcome.
//
// Worker-kind fault actions (FaultPlan) are interpreted here, keyed on
// (job.faultScope, job.attempt): CrashBeforeReply exits without a reply,
// Hang stops responding until the supervisor's deadline kill, GarbledFrame
// and PartialWrite corrupt/tear the reply frame. Solver-kind actions pass
// through to the engine untouched.
#pragma once

#include "procs/wire.hpp"

namespace buffy::procs {

/// Serves jobs on fds 0/1 until clean EOF / shutdown frame (returns 0) or
/// an unrecoverable stream error (returns 65). Crash faults _exit(70).
int runWorker();

/// One job, in-process (the worker's solve path, exposed for tests and for
/// the supervisor's degraded fallback). Never throws: in-job failures
/// (compile error, budget exhaustion) come back as WireResult::error.
WireResult serveJob(const WireJob& job);

}  // namespace buffy::procs
