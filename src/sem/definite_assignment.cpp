// Definite-assignment lint: warns when a local scalar may be read before
// any assignment on some path. Buffy defines uninitialized locals as
// 0/false, so this is a warning (a likely modeling mistake), not an error.
#include "sem/passes.hpp"

namespace buffy::sem {

using namespace lang;

namespace {

class DefiniteAssignment {
 public:
  DefiniteAssignment(const AstArena& arena, DiagnosticEngine& diag)
      : arena_(arena), diag_(diag) {}

  void run(const Program& prog) {
    std::set<std::string> assigned;
    checkBlock(prog.body, assigned);
    for (const auto& fn : prog.functions) {
      std::set<std::string> fnAssigned;
      for (const auto& p : fn.params) fnAssigned.insert(p.name);
      checkBlock(fn.body, fnAssigned);
    }
  }

 private:
  void declare(const StmtNode& stmt, std::set<std::string>& assigned) {
    const auto& s = stmt.decl;
    const std::string name = arena_.str(s.name);
    // Only uninitialized local scalars are tracked; everything else
    // (globals persist, havocs are defined, arrays/lists start empty by
    // design) counts as assigned.
    if (s.storage == Storage::Local && s.declType.isScalar() &&
        !s.init.valid()) {
      tracked_.insert(name);
    } else {
      assigned.insert(name);
      tracked_.erase(name);
    }
  }

  void use(const std::string& name, SourceLoc loc,
           const std::set<std::string>& assigned) {
    if (tracked_.count(name) != 0 && assigned.count(name) == 0 &&
        warned_.insert(name).second) {
      diag_.warning(loc, "local '" + name +
                             "' may be read before assignment (defaults "
                             "to 0/false)");
    }
  }

  void checkExpr(ExprId id, const std::set<std::string>& assigned) {
    const ExprNode& expr = arena_.expr(id);
    switch (expr.kind) {
      case ExprKind::VarRef:
        use(arena_.str(expr.varRef.name), arena_.exprLoc(id), assigned);
        break;
      case ExprKind::Index:
        checkExpr(expr.index.index, assigned);
        break;
      case ExprKind::Binary:
        checkExpr(expr.binary.lhs, assigned);
        checkExpr(expr.binary.rhs, assigned);
        break;
      case ExprKind::Unary:
        checkExpr(expr.unary.operand, assigned);
        break;
      case ExprKind::Backlog:
        checkExpr(expr.backlog.buffer, assigned);
        break;
      case ExprKind::Filter:
        checkExpr(expr.filter.base, assigned);
        checkExpr(expr.filter.value, assigned);
        break;
      case ExprKind::ListHas:
        checkExpr(expr.listOp.value, assigned);
        break;
      case ExprKind::Call: {
        const ExprSpan args = expr.call.args;
        for (std::uint32_t i = 0; i < args.count; ++i) {
          checkExpr(arena_.spanAt(args, i), assigned);
        }
        break;
      }
      default:
        break;
    }
  }

  void checkBlock(StmtId block, std::set<std::string>& assigned) {
    const StmtSpan span = arena_.stmt(block).block.stmts;
    for (std::uint32_t i = 0; i < span.count; ++i) {
      checkStmt(arena_.spanAt(span, i), assigned);
    }
  }

  void checkStmt(StmtId id, std::set<std::string>& assigned) {
    const StmtNode& stmt = arena_.stmt(id);
    switch (stmt.kind) {
      case StmtKind::Block:
        checkBlock(id, assigned);
        break;
      case StmtKind::Decl:
        if (stmt.decl.init.valid()) checkExpr(stmt.decl.init, assigned);
        declare(stmt, assigned);
        break;
      case StmtKind::Assign: {
        const auto& s = stmt.assign;
        if (s.index.valid()) checkExpr(s.index, assigned);
        checkExpr(s.value, assigned);
        if (!s.index.valid()) assigned.insert(arena_.str(s.target));
        break;
      }
      case StmtKind::If: {
        const auto& s = stmt.ifs;
        checkExpr(s.cond, assigned);
        std::set<std::string> thenAssigned = assigned;
        checkBlock(s.thenBlock, thenAssigned);
        std::set<std::string> elseAssigned = assigned;
        if (s.elseBlock.valid()) checkBlock(s.elseBlock, elseAssigned);
        // Definitely assigned only if assigned on both paths.
        for (const auto& name : thenAssigned) {
          if (elseAssigned.count(name) != 0) assigned.insert(name);
        }
        break;
      }
      case StmtKind::For: {
        const auto& s = stmt.fors;
        checkExpr(s.lo, assigned);
        checkExpr(s.hi, assigned);
        // The loop may run zero times: body assignments don't escape.
        std::set<std::string> bodyAssigned = assigned;
        bodyAssigned.insert(arena_.str(s.var));
        checkBlock(s.body, bodyAssigned);
        break;
      }
      case StmtKind::Move: {
        const auto& s = stmt.move;
        checkExpr(s.src, assigned);
        checkExpr(s.dst, assigned);
        checkExpr(s.amount, assigned);
        break;
      }
      case StmtKind::ListPush:
        checkExpr(stmt.listPush.value, assigned);
        break;
      case StmtKind::PopFront:
        assigned.insert(arena_.str(stmt.popFront.target));
        break;
      case StmtKind::Assert:
      case StmtKind::Assume:
        checkExpr(stmt.guard.cond, assigned);
        break;
      case StmtKind::Return:
        if (stmt.ret.value.valid()) checkExpr(stmt.ret.value, assigned);
        break;
      case StmtKind::ExprStmt:
        checkExpr(stmt.exprStmt.expr, assigned);
        break;
    }
  }

  const AstArena& arena_;
  DiagnosticEngine& diag_;
  std::set<std::string> tracked_;
  std::set<std::string> warned_;
};

}  // namespace

std::size_t checkDefiniteAssignment(const Ast& ast, DiagnosticEngine& diag) {
  const std::size_t before = diag.all().size();
  DefiniteAssignment(ast.arena, diag).run(ast.program);
  return diag.all().size() - before;
}

}  // namespace buffy::sem
