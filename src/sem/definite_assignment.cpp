// Definite-assignment lint: warns when a local scalar may be read before
// any assignment on some path. Buffy defines uninitialized locals as
// 0/false, so this is a warning (a likely modeling mistake), not an error.
#include "sem/passes.hpp"

namespace buffy::sem {

using namespace lang;

namespace {

class DefiniteAssignment {
 public:
  explicit DefiniteAssignment(DiagnosticEngine& diag) : diag_(diag) {}

  void run(const Program& prog) {
    std::set<std::string> assigned;
    checkBlock(*prog.body, assigned);
    for (const auto& fn : prog.functions) {
      std::set<std::string> fnAssigned;
      for (const auto& p : fn.params) fnAssigned.insert(p.name);
      checkBlock(*fn.body, fnAssigned);
    }
  }

 private:
  void declare(const DeclStmt& s, std::set<std::string>& assigned) {
    // Only uninitialized local scalars are tracked; everything else
    // (globals persist, havocs are defined, arrays/lists start empty by
    // design) counts as assigned.
    if (s.storage == Storage::Local && s.declType.isScalar() &&
        s.init == nullptr) {
      tracked_.insert(s.name);
    } else {
      assigned.insert(s.name);
      tracked_.erase(s.name);
    }
  }

  void use(const std::string& name, SourceLoc loc,
           const std::set<std::string>& assigned) {
    if (tracked_.count(name) != 0 && assigned.count(name) == 0 &&
        warned_.insert(name).second) {
      diag_.warning(loc, "local '" + name +
                             "' may be read before assignment (defaults "
                             "to 0/false)");
    }
  }

  void checkExpr(const Expr& expr, const std::set<std::string>& assigned) {
    switch (expr.exprKind) {
      case ExprKind::VarRef:
        use(static_cast<const VarRefExpr&>(expr).name, expr.loc, assigned);
        break;
      case ExprKind::Index:
        checkExpr(*static_cast<const IndexExpr&>(expr).index, assigned);
        break;
      case ExprKind::Binary: {
        const auto& e = static_cast<const BinaryExpr&>(expr);
        checkExpr(*e.lhs, assigned);
        checkExpr(*e.rhs, assigned);
        break;
      }
      case ExprKind::Unary:
        checkExpr(*static_cast<const UnaryExpr&>(expr).operand, assigned);
        break;
      case ExprKind::Backlog:
        checkExpr(*static_cast<const BacklogExpr&>(expr).buffer, assigned);
        break;
      case ExprKind::Filter: {
        const auto& e = static_cast<const FilterExpr&>(expr);
        checkExpr(*e.base, assigned);
        checkExpr(*e.value, assigned);
        break;
      }
      case ExprKind::ListHas:
        checkExpr(*static_cast<const ListHasExpr&>(expr).value, assigned);
        break;
      case ExprKind::Call:
        for (const auto& arg : static_cast<const CallExpr&>(expr).args) {
          checkExpr(*arg, assigned);
        }
        break;
      default:
        break;
    }
  }

  void checkBlock(const BlockStmt& block, std::set<std::string>& assigned) {
    for (const auto& stmt : block.stmts) checkStmt(*stmt, assigned);
  }

  void checkStmt(const Stmt& stmt, std::set<std::string>& assigned) {
    switch (stmt.stmtKind) {
      case StmtKind::Block:
        checkBlock(static_cast<const BlockStmt&>(stmt), assigned);
        break;
      case StmtKind::Decl: {
        const auto& s = static_cast<const DeclStmt&>(stmt);
        if (s.init) checkExpr(*s.init, assigned);
        declare(s, assigned);
        break;
      }
      case StmtKind::Assign: {
        const auto& s = static_cast<const AssignStmt&>(stmt);
        if (s.index) checkExpr(*s.index, assigned);
        checkExpr(*s.value, assigned);
        if (s.index == nullptr) assigned.insert(s.target);
        break;
      }
      case StmtKind::If: {
        const auto& s = static_cast<const IfStmt&>(stmt);
        checkExpr(*s.cond, assigned);
        std::set<std::string> thenAssigned = assigned;
        checkBlock(*s.thenBlock, thenAssigned);
        std::set<std::string> elseAssigned = assigned;
        if (s.elseBlock) checkBlock(*s.elseBlock, elseAssigned);
        // Definitely assigned only if assigned on both paths.
        for (const auto& name : thenAssigned) {
          if (elseAssigned.count(name) != 0) assigned.insert(name);
        }
        break;
      }
      case StmtKind::For: {
        const auto& s = static_cast<const ForStmt&>(stmt);
        checkExpr(*s.lo, assigned);
        checkExpr(*s.hi, assigned);
        // The loop may run zero times: body assignments don't escape.
        std::set<std::string> bodyAssigned = assigned;
        bodyAssigned.insert(s.var);
        checkBlock(*s.body, bodyAssigned);
        break;
      }
      case StmtKind::Move: {
        const auto& s = static_cast<const MoveStmt&>(stmt);
        checkExpr(*s.src, assigned);
        checkExpr(*s.dst, assigned);
        checkExpr(*s.amount, assigned);
        break;
      }
      case StmtKind::ListPush:
        checkExpr(*static_cast<const ListPushStmt&>(stmt).value, assigned);
        break;
      case StmtKind::PopFront:
        assigned.insert(static_cast<const PopFrontStmt&>(stmt).target);
        break;
      case StmtKind::Assert:
        checkExpr(*static_cast<const AssertStmt&>(stmt).cond, assigned);
        break;
      case StmtKind::Assume:
        checkExpr(*static_cast<const AssumeStmt&>(stmt).cond, assigned);
        break;
      case StmtKind::Return: {
        const auto& s = static_cast<const ReturnStmt&>(stmt);
        if (s.value) checkExpr(*s.value, assigned);
        break;
      }
      case StmtKind::ExprStmt:
        checkExpr(*static_cast<const ExprStmt&>(stmt).expr, assigned);
        break;
    }
  }

  DiagnosticEngine& diag_;
  std::set<std::string> tracked_;
  std::set<std::string> warned_;
};

}  // namespace

std::size_t checkDefiniteAssignment(const Program& prog,
                                    DiagnosticEngine& diag) {
  const std::size_t before = diag.all().size();
  DefiniteAssignment(diag).run(prog);
  return diag.all().size() - before;
}

}  // namespace buffy::sem
