#include "sem/passes.hpp"

namespace buffy::sem {

using namespace lang;

namespace {

/// Does an expression read any monitor variable?
bool readsMonitor(const AstArena& arena, ExprId id,
                  const std::set<std::string>& monitors) {
  const ExprNode& expr = arena.expr(id);
  switch (expr.kind) {
    case ExprKind::VarRef:
      return monitors.count(arena.str(expr.varRef.name)) != 0;
    case ExprKind::Index:
      return monitors.count(arena.str(expr.index.base)) != 0 ||
             readsMonitor(arena, expr.index.index, monitors);
    case ExprKind::Binary:
      return readsMonitor(arena, expr.binary.lhs, monitors) ||
             readsMonitor(arena, expr.binary.rhs, monitors);
    case ExprKind::Unary:
      return readsMonitor(arena, expr.unary.operand, monitors);
    case ExprKind::Backlog:
      return readsMonitor(arena, expr.backlog.buffer, monitors);
    case ExprKind::Filter:
      return readsMonitor(arena, expr.filter.base, monitors) ||
             readsMonitor(arena, expr.filter.value, monitors);
    case ExprKind::ListHas:
      return readsMonitor(arena, expr.listOp.value, monitors);
    case ExprKind::Call: {
      const ExprSpan args = expr.call.args;
      for (std::uint32_t i = 0; i < args.count; ++i) {
        if (readsMonitor(arena, arena.spanAt(args, i), monitors)) return true;
      }
      return false;
    }
    default:
      return false;
  }
}

/// Is a statement ghost-only (writes only to monitors, no buffer/list
/// effects, no assumptions)? Asserts are ghost by definition.
bool isGhostOnly(const AstArena& arena, StmtId id,
                 const std::set<std::string>& monitors) {
  const StmtNode& stmt = arena.stmt(id);
  switch (stmt.kind) {
    case StmtKind::Assign:
      return monitors.count(arena.str(stmt.assign.target)) != 0;
    case StmtKind::Assert:
      return true;
    case StmtKind::Block: {
      const StmtSpan span = stmt.block.stmts;
      for (std::uint32_t i = 0; i < span.count; ++i) {
        if (!isGhostOnly(arena, arena.spanAt(span, i), monitors)) return false;
      }
      return true;
    }
    case StmtKind::If: {
      const auto& s = stmt.ifs;
      if (!isGhostOnly(arena, s.thenBlock, monitors)) return false;
      return !s.elseBlock.valid() || isGhostOnly(arena, s.elseBlock, monitors);
    }
    case StmtKind::For:
      return isGhostOnly(arena, stmt.fors.body, monitors);
    default:
      return false;
  }
}

class GhostChecker {
 public:
  GhostChecker(const AstArena& arena, const std::set<std::string>& monitors,
               DiagnosticEngine& diag)
      : arena_(arena), monitors_(monitors), diag_(diag) {}

  void checkBlock(StmtId block) {
    const StmtSpan span = arena_.stmt(block).block.stmts;
    for (std::uint32_t i = 0; i < span.count; ++i) {
      checkStmt(arena_.spanAt(span, i));
    }
  }

 private:
  void requireNoMonitor(ExprId expr, const char* context) {
    if (readsMonitor(arena_, expr, monitors_)) {
      diag_.error(arena_.exprLoc(expr),
                  std::string("monitor (ghost) variable used in ") + context +
                      "; monitors may only feed other monitors "
                      "and assert conditions");
    }
  }

  void checkStmt(StmtId id) {
    const StmtNode& stmt = arena_.stmt(id);
    const SourceLoc loc = arena_.stmtLoc(id);
    switch (stmt.kind) {
      case StmtKind::Block:
        checkBlock(id);
        break;
      case StmtKind::Decl: {
        const auto& s = stmt.decl;
        if (s.init.valid() && monitors_.count(arena_.str(s.name)) == 0) {
          requireNoMonitor(s.init, "a non-monitor initializer");
        }
        break;
      }
      case StmtKind::Assign: {
        const auto& s = stmt.assign;
        if (monitors_.count(arena_.str(s.target)) == 0) {
          if (s.index.valid()) {
            requireNoMonitor(s.index, "a non-monitor assignment");
          }
          requireNoMonitor(s.value, "a non-monitor assignment");
        }
        break;
      }
      case StmtKind::If: {
        const auto& s = stmt.ifs;
        // A condition may read monitors only if everything it guards is
        // itself ghost.
        if (readsMonitor(arena_, s.cond, monitors_)) {
          const bool ghostThen = isGhostOnly(arena_, s.thenBlock, monitors_);
          const bool ghostElse =
              !s.elseBlock.valid() ||
              isGhostOnly(arena_, s.elseBlock, monitors_);
          if (!ghostThen || !ghostElse) {
            diag_.error(loc,
                        "if-condition reads a monitor but guards non-ghost "
                        "statements");
          }
        }
        checkBlock(s.thenBlock);
        if (s.elseBlock.valid()) checkBlock(s.elseBlock);
        break;
      }
      case StmtKind::For: {
        const auto& s = stmt.fors;
        requireNoMonitor(s.lo, "a loop bound");
        requireNoMonitor(s.hi, "a loop bound");
        checkBlock(s.body);
        break;
      }
      case StmtKind::Move: {
        const auto& s = stmt.move;
        requireNoMonitor(s.src, "a move");
        requireNoMonitor(s.dst, "a move");
        requireNoMonitor(s.amount, "a move amount");
        break;
      }
      case StmtKind::ListPush:
        requireNoMonitor(stmt.listPush.value, "a list push");
        break;
      case StmtKind::PopFront:
        if (monitors_.count(arena_.str(stmt.popFront.target)) != 0) {
          diag_.error(loc,
                      "pop_front into a monitor would make the list "
                      "operation ghost-dependent");
        }
        break;
      case StmtKind::Assume:
        requireNoMonitor(stmt.guard.cond,
                         "an assume (assumptions must not depend on ghost "
                         "state)");
        break;
      case StmtKind::Assert:
        break;  // asserts are queries; monitors welcome
      case StmtKind::Return:
      case StmtKind::ExprStmt:
        break;
    }
  }

  const AstArena& arena_;
  const std::set<std::string>& monitors_;
  DiagnosticEngine& diag_;
};

}  // namespace

bool checkGhostNonInterference(const Ast& ast,
                               const std::set<std::string>& monitors,
                               DiagnosticEngine& diag) {
  const std::size_t before = diag.errorCount();
  GhostChecker checker(ast.arena, monitors, diag);
  checker.checkBlock(ast.program.body);
  for (const auto& fn : ast.program.functions) checker.checkBlock(fn.body);
  return diag.errorCount() == before;
}

}  // namespace buffy::sem
