#include "sem/passes.hpp"

namespace buffy::sem {

using namespace lang;

namespace {

/// Does an expression read any monitor variable?
bool readsMonitor(const Expr& expr, const std::set<std::string>& monitors) {
  switch (expr.exprKind) {
    case ExprKind::VarRef:
      return monitors.count(static_cast<const VarRefExpr&>(expr).name) != 0;
    case ExprKind::Index: {
      const auto& e = static_cast<const IndexExpr&>(expr);
      return monitors.count(e.base) != 0 || readsMonitor(*e.index, monitors);
    }
    case ExprKind::Binary: {
      const auto& e = static_cast<const BinaryExpr&>(expr);
      return readsMonitor(*e.lhs, monitors) || readsMonitor(*e.rhs, monitors);
    }
    case ExprKind::Unary:
      return readsMonitor(*static_cast<const UnaryExpr&>(expr).operand,
                          monitors);
    case ExprKind::Backlog:
      return readsMonitor(*static_cast<const BacklogExpr&>(expr).buffer,
                          monitors);
    case ExprKind::Filter: {
      const auto& e = static_cast<const FilterExpr&>(expr);
      return readsMonitor(*e.base, monitors) ||
             readsMonitor(*e.value, monitors);
    }
    case ExprKind::ListHas:
      return readsMonitor(*static_cast<const ListHasExpr&>(expr).value,
                          monitors);
    case ExprKind::Call: {
      for (const auto& arg : static_cast<const CallExpr&>(expr).args) {
        if (readsMonitor(*arg, monitors)) return true;
      }
      return false;
    }
    default:
      return false;
  }
}

/// Is a statement ghost-only (writes only to monitors, no buffer/list
/// effects, no assumptions)? Asserts are ghost by definition.
bool isGhostOnly(const Stmt& stmt, const std::set<std::string>& monitors) {
  switch (stmt.stmtKind) {
    case StmtKind::Assign:
      return monitors.count(static_cast<const AssignStmt&>(stmt).target) != 0;
    case StmtKind::Assert:
      return true;
    case StmtKind::Block: {
      const auto& block = static_cast<const BlockStmt&>(stmt);
      for (const auto& inner : block.stmts) {
        if (!isGhostOnly(*inner, monitors)) return false;
      }
      return true;
    }
    case StmtKind::If: {
      const auto& s = static_cast<const IfStmt&>(stmt);
      if (!isGhostOnly(*s.thenBlock, monitors)) return false;
      return s.elseBlock == nullptr || isGhostOnly(*s.elseBlock, monitors);
    }
    case StmtKind::For:
      return isGhostOnly(*static_cast<const ForStmt&>(stmt).body, monitors);
    default:
      return false;
  }
}

class GhostChecker {
 public:
  GhostChecker(const std::set<std::string>& monitors, DiagnosticEngine& diag)
      : monitors_(monitors), diag_(diag) {}

  void checkBlock(const BlockStmt& block) {
    for (const auto& stmt : block.stmts) checkStmt(*stmt);
  }

 private:
  void requireNoMonitor(const Expr& expr, const char* context) {
    if (readsMonitor(expr, monitors_)) {
      diag_.error(expr.loc, std::string("monitor (ghost) variable used in ") +
                                context +
                                "; monitors may only feed other monitors "
                                "and assert conditions");
    }
  }

  void checkStmt(const Stmt& stmt) {
    switch (stmt.stmtKind) {
      case StmtKind::Block:
        checkBlock(static_cast<const BlockStmt&>(stmt));
        break;
      case StmtKind::Decl: {
        const auto& s = static_cast<const DeclStmt&>(stmt);
        if (s.init && monitors_.count(s.name) == 0) {
          requireNoMonitor(*s.init, "a non-monitor initializer");
        }
        break;
      }
      case StmtKind::Assign: {
        const auto& s = static_cast<const AssignStmt&>(stmt);
        if (monitors_.count(s.target) == 0) {
          if (s.index) requireNoMonitor(*s.index, "a non-monitor assignment");
          requireNoMonitor(*s.value, "a non-monitor assignment");
        }
        break;
      }
      case StmtKind::If: {
        const auto& s = static_cast<const IfStmt&>(stmt);
        // A condition may read monitors only if everything it guards is
        // itself ghost.
        if (readsMonitor(*s.cond, monitors_)) {
          const bool ghostThen = isGhostOnly(*s.thenBlock, monitors_);
          const bool ghostElse =
              s.elseBlock == nullptr || isGhostOnly(*s.elseBlock, monitors_);
          if (!ghostThen || !ghostElse) {
            diag_.error(s.loc,
                        "if-condition reads a monitor but guards non-ghost "
                        "statements");
          }
        }
        checkBlock(*s.thenBlock);
        if (s.elseBlock) checkBlock(*s.elseBlock);
        break;
      }
      case StmtKind::For: {
        const auto& s = static_cast<const ForStmt&>(stmt);
        requireNoMonitor(*s.lo, "a loop bound");
        requireNoMonitor(*s.hi, "a loop bound");
        checkBlock(*s.body);
        break;
      }
      case StmtKind::Move: {
        const auto& s = static_cast<const MoveStmt&>(stmt);
        requireNoMonitor(*s.src, "a move");
        requireNoMonitor(*s.dst, "a move");
        requireNoMonitor(*s.amount, "a move amount");
        break;
      }
      case StmtKind::ListPush: {
        const auto& s = static_cast<const ListPushStmt&>(stmt);
        requireNoMonitor(*s.value, "a list push");
        break;
      }
      case StmtKind::PopFront: {
        const auto& s = static_cast<const PopFrontStmt&>(stmt);
        if (monitors_.count(s.target) != 0) {
          diag_.error(s.loc,
                      "pop_front into a monitor would make the list "
                      "operation ghost-dependent");
        }
        break;
      }
      case StmtKind::Assume:
        requireNoMonitor(*static_cast<const AssumeStmt&>(stmt).cond,
                         "an assume (assumptions must not depend on ghost "
                         "state)");
        break;
      case StmtKind::Assert:
        break;  // asserts are queries; monitors welcome
      case StmtKind::Return:
      case StmtKind::ExprStmt:
        break;
    }
  }

  const std::set<std::string>& monitors_;
  DiagnosticEngine& diag_;
};

}  // namespace

bool checkGhostNonInterference(const Program& prog,
                               const std::set<std::string>& monitors,
                               DiagnosticEngine& diag) {
  const std::size_t before = diag.errorCount();
  GhostChecker checker(monitors, diag);
  checker.checkBlock(*prog.body);
  for (const auto& fn : prog.functions) checker.checkBlock(*fn.body);
  return diag.errorCount() == before;
}

}  // namespace buffy::sem
