// Semantic well-formedness passes beyond type checking:
//
//  * wellformed: the paper's §7 language restrictions — bounded loops,
//    bounded data structures, no return in program bodies, and the §3
//    buffer discipline (output buffers are write-only: they appear only as
//    move destinations; input buffers are never move destinations).
//
//  * ghost check: monitors (§3 "Assumptions and queries") are ghost state —
//    they observe the program but must not influence it. Monitors may be
//    read in monitor assignments and assert conditions only.
#pragma once

#include <set>
#include <string>

#include "lang/ast.hpp"
#include "support/diagnostics.hpp"

namespace buffy::sem {

/// Which parameters of a program are inputs vs outputs. Parameters not
/// named in either set are internal buffers (readable and writable).
struct BufferRoles {
  std::set<std::string> inputs;
  std::set<std::string> outputs;
};

/// Runs the §7 well-formedness checks. The program must already be
/// elaborated (so loop bounds are literals after constant folding is
/// applied internally to copies — the pass does not mutate the AST).
/// Reports via `diag`; returns true when no errors were added.
bool checkWellFormed(const lang::Ast& ast, const BufferRoles& roles,
                     DiagnosticEngine& diag);

/// Verifies that monitor (ghost) variables never influence non-ghost
/// state. Requires the set of monitor names (from typecheck).
bool checkGhostNonInterference(const lang::Ast& ast,
                               const std::set<std::string>& monitors,
                               DiagnosticEngine& diag);

/// Lint: warns (never errors) when an uninitialized local scalar may be
/// read before assignment on some path (it would silently default to
/// 0/false). Returns the number of warnings added.
std::size_t checkDefiniteAssignment(const lang::Ast& ast,
                                    DiagnosticEngine& diag);

}  // namespace buffy::sem
