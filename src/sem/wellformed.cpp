#include "lang/printer.hpp"
#include "sem/passes.hpp"

namespace buffy::sem {

using namespace lang;

namespace {

class WellFormedChecker {
 public:
  WellFormedChecker(const AstArena& arena, const BufferRoles& roles,
                    DiagnosticEngine& diag)
      : arena_(arena), roles_(roles), diag_(diag) {}

  void run(const Program& prog) {
    for (const auto& fn : prog.functions) {
      inFunction_ = true;
      checkBlock(fn.body);
      inFunction_ = false;
    }
    checkBlock(prog.body);
  }

 private:
  void checkBlock(StmtId block) {
    const StmtSpan span = arena_.stmt(block).block.stmts;
    for (std::uint32_t i = 0; i < span.count; ++i) {
      checkStmt(arena_.spanAt(span, i));
    }
  }

  /// Name of the buffer (parameter) an expression ultimately refers to,
  /// or "" when it is not a direct buffer reference.
  std::string bufferRootName(ExprId id) const {
    const ExprNode& expr = arena_.expr(id);
    switch (expr.kind) {
      case ExprKind::VarRef:
        return arena_.str(expr.varRef.name);
      case ExprKind::Index:
        return arena_.str(expr.index.base);
      case ExprKind::Filter:
        return bufferRootName(expr.filter.base);
      default:
        return "";
    }
  }

  void checkStmt(StmtId id) {
    const StmtNode& stmt = arena_.stmt(id);
    const SourceLoc loc = arena_.stmtLoc(id);
    switch (stmt.kind) {
      case StmtKind::Block:
        checkBlock(id);
        break;
      case StmtKind::Decl: {
        const auto& s = stmt.decl;
        if (inFunction_ && s.storage != Storage::Local) {
          diag_.error(loc, "global/monitor declarations are not allowed "
                           "inside def functions");
        }
        if (s.declType.isArray() && s.declType.size <= 0) {
          diag_.error(loc, "array '" + arena_.str(s.name) +
                               "' must have a positive constant bound "
                               "(paper §7: bounded arrays)");
        }
        if (s.init.valid()) checkExpr(s.init);
        break;
      }
      case StmtKind::Assign: {
        const auto& s = stmt.assign;
        if (s.index.valid()) checkExpr(s.index);
        checkExpr(s.value);
        break;
      }
      case StmtKind::If: {
        const auto& s = stmt.ifs;
        checkExpr(s.cond);
        checkBlock(s.thenBlock);
        if (s.elseBlock.valid()) checkBlock(s.elseBlock);
        break;
      }
      case StmtKind::For: {
        const auto& s = stmt.fors;
        // Bounds must be constant expressions: after elaboration every
        // constant parameter is a literal, so a loop bound made only of
        // literals/arithmetic is fine; anything referring to runtime state
        // is not. A conservative syntactic check suffices here — the
        // evaluator enforces constancy exactly.
        checkConstExpr(s.lo, "loop lower bound");
        checkConstExpr(s.hi, "loop upper bound");
        checkBlock(s.body);
        break;
      }
      case StmtKind::Move: {
        const auto& s = stmt.move;
        const std::string src = bufferRootName(s.src);
        const std::string dst = bufferRootName(s.dst);
        if (roles_.outputs.count(src) != 0) {
          diag_.error(loc, "output buffer '" + src +
                               "' is write-only and cannot be a move "
                               "source");
        }
        if (roles_.inputs.count(dst) != 0) {
          diag_.error(loc, "input buffer '" + dst +
                               "' cannot be a move destination");
        }
        checkExpr(s.src);
        checkExpr(s.dst);
        checkExpr(s.amount);
        break;
      }
      case StmtKind::ListPush:
        checkExpr(stmt.listPush.value);
        break;
      case StmtKind::PopFront:
        break;
      case StmtKind::Assert:
      case StmtKind::Assume:
        checkExpr(stmt.guard.cond);
        break;
      case StmtKind::Return:
        if (!inFunction_) {
          diag_.error(loc, "return is only allowed inside def functions");
        }
        break;
      case StmtKind::ExprStmt:
        checkExpr(stmt.exprStmt.expr);
        break;
    }
  }

  void checkConstExpr(ExprId id, const char* what) {
    const ExprNode& expr = arena_.expr(id);
    switch (expr.kind) {
      case ExprKind::IntLit:
        return;
      case ExprKind::Binary:
        checkConstExpr(expr.binary.lhs, what);
        checkConstExpr(expr.binary.rhs, what);
        return;
      case ExprKind::Unary:
        checkConstExpr(expr.unary.operand, what);
        return;
      case ExprKind::VarRef:
        // Might be an enclosing loop variable (constant at evaluation
        // time); accepted here, enforced exactly by the evaluator.
        return;
      default:
        diag_.error(arena_.exprLoc(id),
                    std::string(what) +
                        " must be a compile-time constant expression "
                        "(paper §7: bounded loops): " +
                        printExpr(arena_, id));
    }
  }

  void checkExpr(ExprId id) {
    const ExprNode& expr = arena_.expr(id);
    switch (expr.kind) {
      case ExprKind::Backlog: {
        const std::string name = bufferRootName(expr.backlog.buffer);
        if (roles_.outputs.count(name) != 0) {
          diag_.error(arena_.exprLoc(id),
                      "output buffer '" + name +
                          "' is write-only and cannot be observed "
                          "with backlog");
        }
        checkExpr(expr.backlog.buffer);
        break;
      }
      case ExprKind::Binary:
        checkExpr(expr.binary.lhs);
        checkExpr(expr.binary.rhs);
        break;
      case ExprKind::Unary:
        checkExpr(expr.unary.operand);
        break;
      case ExprKind::Index:
        checkExpr(expr.index.index);
        break;
      case ExprKind::Filter:
        checkExpr(expr.filter.base);
        checkExpr(expr.filter.value);
        break;
      case ExprKind::ListHas:
        checkExpr(expr.listOp.value);
        break;
      case ExprKind::Call: {
        const ExprSpan args = expr.call.args;
        for (std::uint32_t i = 0; i < args.count; ++i) {
          checkExpr(arena_.spanAt(args, i));
        }
        break;
      }
      default:
        break;
    }
  }

  const AstArena& arena_;
  const BufferRoles& roles_;
  DiagnosticEngine& diag_;
  bool inFunction_ = false;
};

}  // namespace

bool checkWellFormed(const Ast& ast, const BufferRoles& roles,
                     DiagnosticEngine& diag) {
  const std::size_t before = diag.errorCount();
  WellFormedChecker(ast.arena, roles, diag).run(ast.program);
  return diag.errorCount() == before;
}

}  // namespace buffy::sem
