#include "lang/printer.hpp"
#include "sem/passes.hpp"

namespace buffy::sem {

using namespace lang;

namespace {

class WellFormedChecker {
 public:
  WellFormedChecker(const BufferRoles& roles, DiagnosticEngine& diag)
      : roles_(roles), diag_(diag) {}

  void run(const Program& prog) {
    for (const auto& fn : prog.functions) {
      inFunction_ = true;
      checkBlock(*fn.body);
      inFunction_ = false;
    }
    checkBlock(*prog.body);
  }

 private:
  void checkBlock(const BlockStmt& block) {
    for (const auto& stmt : block.stmts) checkStmt(*stmt);
  }

  /// Name of the buffer (parameter) an expression ultimately refers to,
  /// or "" when it is not a direct buffer reference.
  static std::string bufferRootName(const Expr& expr) {
    switch (expr.exprKind) {
      case ExprKind::VarRef:
        return static_cast<const VarRefExpr&>(expr).name;
      case ExprKind::Index:
        return static_cast<const IndexExpr&>(expr).base;
      case ExprKind::Filter:
        return bufferRootName(*static_cast<const FilterExpr&>(expr).base);
      default:
        return "";
    }
  }

  void checkStmt(const Stmt& stmt) {
    switch (stmt.stmtKind) {
      case StmtKind::Block:
        checkBlock(static_cast<const BlockStmt&>(stmt));
        break;
      case StmtKind::Decl: {
        const auto& s = static_cast<const DeclStmt&>(stmt);
        if (inFunction_ && s.storage != Storage::Local) {
          diag_.error(s.loc, "global/monitor declarations are not allowed "
                             "inside def functions");
        }
        if (s.declType.isArray() && s.declType.size <= 0) {
          diag_.error(s.loc, "array '" + s.name +
                                 "' must have a positive constant bound "
                                 "(paper §7: bounded arrays)");
        }
        if (s.init) checkExpr(*s.init);
        break;
      }
      case StmtKind::Assign: {
        const auto& s = static_cast<const AssignStmt&>(stmt);
        if (s.index) checkExpr(*s.index);
        checkExpr(*s.value);
        break;
      }
      case StmtKind::If: {
        const auto& s = static_cast<const IfStmt&>(stmt);
        checkExpr(*s.cond);
        checkBlock(*s.thenBlock);
        if (s.elseBlock) checkBlock(*s.elseBlock);
        break;
      }
      case StmtKind::For: {
        const auto& s = static_cast<const ForStmt&>(stmt);
        // Bounds must be constant expressions: after elaboration every
        // constant parameter is a literal, so a loop bound made only of
        // literals/arithmetic is fine; anything referring to runtime state
        // is not. A conservative syntactic check suffices here — the
        // evaluator enforces constancy exactly.
        checkConstExpr(*s.lo, "loop lower bound");
        checkConstExpr(*s.hi, "loop upper bound");
        checkBlock(*s.body);
        break;
      }
      case StmtKind::Move: {
        const auto& s = static_cast<const MoveStmt&>(stmt);
        const std::string src = bufferRootName(*s.src);
        const std::string dst = bufferRootName(*s.dst);
        if (roles_.outputs.count(src) != 0) {
          diag_.error(s.loc, "output buffer '" + src +
                                 "' is write-only and cannot be a move "
                                 "source");
        }
        if (roles_.inputs.count(dst) != 0) {
          diag_.error(s.loc, "input buffer '" + dst +
                                 "' cannot be a move destination");
        }
        checkExpr(*s.src);
        checkExpr(*s.dst);
        checkExpr(*s.amount);
        break;
      }
      case StmtKind::ListPush:
        checkExpr(*static_cast<const ListPushStmt&>(stmt).value);
        break;
      case StmtKind::PopFront:
        break;
      case StmtKind::Assert:
        checkExpr(*static_cast<const AssertStmt&>(stmt).cond);
        break;
      case StmtKind::Assume:
        checkExpr(*static_cast<const AssumeStmt&>(stmt).cond);
        break;
      case StmtKind::Return:
        if (!inFunction_) {
          diag_.error(stmt.loc,
                      "return is only allowed inside def functions");
        }
        break;
      case StmtKind::ExprStmt:
        checkExpr(*static_cast<const ExprStmt&>(stmt).expr);
        break;
    }
  }

  void checkConstExpr(const Expr& expr, const char* what) {
    switch (expr.exprKind) {
      case ExprKind::IntLit:
        return;
      case ExprKind::Binary: {
        const auto& e = static_cast<const BinaryExpr&>(expr);
        checkConstExpr(*e.lhs, what);
        checkConstExpr(*e.rhs, what);
        return;
      }
      case ExprKind::Unary:
        checkConstExpr(*static_cast<const UnaryExpr&>(expr).operand, what);
        return;
      case ExprKind::VarRef:
        // Might be an enclosing loop variable (constant at evaluation
        // time); accepted here, enforced exactly by the evaluator.
        return;
      default:
        diag_.error(expr.loc,
                    std::string(what) +
                        " must be a compile-time constant expression "
                        "(paper §7: bounded loops): " +
                        printExpr(expr));
    }
  }

  void checkExpr(const Expr& expr) {
    switch (expr.exprKind) {
      case ExprKind::Backlog: {
        const auto& e = static_cast<const BacklogExpr&>(expr);
        const std::string name = bufferRootName(*e.buffer);
        if (roles_.outputs.count(name) != 0) {
          diag_.error(e.loc, "output buffer '" + name +
                                 "' is write-only and cannot be observed "
                                 "with backlog");
        }
        checkExpr(*e.buffer);
        break;
      }
      case ExprKind::Binary: {
        const auto& e = static_cast<const BinaryExpr&>(expr);
        checkExpr(*e.lhs);
        checkExpr(*e.rhs);
        break;
      }
      case ExprKind::Unary:
        checkExpr(*static_cast<const UnaryExpr&>(expr).operand);
        break;
      case ExprKind::Index:
        checkExpr(*static_cast<const IndexExpr&>(expr).index);
        break;
      case ExprKind::Filter: {
        const auto& e = static_cast<const FilterExpr&>(expr);
        checkExpr(*e.base);
        checkExpr(*e.value);
        break;
      }
      case ExprKind::ListHas:
        checkExpr(*static_cast<const ListHasExpr&>(expr).value);
        break;
      case ExprKind::Call:
        for (const auto& arg : static_cast<const CallExpr&>(expr).args) {
          checkExpr(*arg);
        }
        break;
      default:
        break;
    }
  }

  const BufferRoles& roles_;
  DiagnosticEngine& diag_;
  bool inFunction_ = false;
};

}  // namespace

bool checkWellFormed(const Program& prog, const BufferRoles& roles,
                     DiagnosticEngine& diag) {
  const std::size_t before = diag.errorCount();
  WellFormedChecker(roles, diag).run(prog);
  return diag.errorCount() == before;
}

}  // namespace buffy::sem
