#include "support/budget.hpp"

namespace buffy {

void checkBudget(std::size_t used, std::size_t limit, const char* resource,
                 SourceLoc loc) {
  if (limit != 0 && used > limit) {
    throw BudgetExceeded(resource, limit, loc);
  }
}

}  // namespace buffy
