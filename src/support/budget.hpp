// CompileBudget: the front-end resource governor (DESIGN.md §10).
//
// Every stage of the compilation half of the pipeline — lexer, parser,
// transforms, symbolic evaluation, and the encoding optimizer — consumes
// resources proportional to its *output*, not its input: a 40-byte program
// can unroll into billions of statements or fold into a term graph that
// exhausts memory. The budget turns each of those blowups into a structured
// BudgetExceeded error (CLI exit code 5) instead of an OOM kill or a stack
// overflow.
//
// All limits are per compilation (one Analysis / one CLI run). A limit of 0
// disables that check (used by a few growth benchmarks); the defaults are
// deliberately generous for real models and deliberately fatal for bombs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "support/error.hpp"

namespace buffy {

struct CompileBudget {
  /// Parser: maximum statement/expression nesting depth. Bounds every
  /// recursive walk over the AST (parser, printer, typecheck, constfold,
  /// evaluator) so deep inputs fail cleanly instead of smashing the stack.
  std::size_t maxNestingDepth = 256;
  /// Parser: maximum operator applications in one statement's expressions.
  /// Iteratively-parsed chains (a+a+...+a) build left-deep trees whose
  /// *depth* equals the chain length, so this also bounds walk depth — the
  /// default is sized so a maximal chain stays well clear of stack
  /// exhaustion in the recursive walks even under ASan's larger frames
  /// (a 4k chain overflowed typecheck there; see tests/budget_test.cpp).
  std::size_t maxExprTerms = 1024;
  /// Parser: maximum AST nodes for one program.
  std::size_t maxAstNodes = 1'000'000;
  /// transform::unrollLoops: maximum statements materialized by unrolling.
  std::size_t maxUnrolledStmts = 500'000;
  /// transform::inlineFunctions: maximum statements materialized by
  /// expansion (catches exponential call trees: f1 calls f2 twice, ...).
  std::size_t maxInlinedStmts = 500'000;
  /// Evaluator: maximum statements executed per time step (the evaluator
  /// iterates constant-bounded loops directly, so this is the symbolic
  /// twin of maxUnrolledStmts).
  std::size_t maxExecStmts = 2'000'000;
  /// TermArena: maximum interned IR nodes per arena (shared by the
  /// evaluator, the encoding, and the optimizer's rewrites).
  std::size_t maxTermNodes = 4'000'000;

  [[nodiscard]] static const CompileBudget& defaults() {
    static const CompileBudget kDefaults{};
    return kDefaults;
  }

  /// An effectively-unlimited budget (every check disabled).
  [[nodiscard]] static CompileBudget unlimited() {
    CompileBudget b;
    b.maxNestingDepth = b.maxExprTerms = b.maxAstNodes = 0;
    b.maxUnrolledStmts = b.maxInlinedStmts = 0;
    b.maxExecStmts = b.maxTermNodes = 0;
    return b;
  }
};

/// Throws BudgetExceeded when `used` passes a non-zero `limit`.
/// `resource` names the limit in flag spelling (e.g. "unroll-stmts").
void checkBudget(std::size_t used, std::size_t limit, const char* resource,
                 SourceLoc loc = {});

}  // namespace buffy
