#include "support/diagnostics.hpp"

namespace buffy {

namespace {
const char* severityName(Severity sev) {
  switch (sev) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "unknown";
}
}  // namespace

std::string Diagnostic::render() const {
  std::string out;
  if (loc.known()) {
    out += loc.str();
    out += ": ";
  }
  out += severityName(severity);
  out += ": ";
  out += message;
  return out;
}

void DiagnosticEngine::report(Severity sev, SourceLoc loc, std::string msg) {
  if (sev == Severity::Error) ++errorCount_;
  diags_.push_back(Diagnostic{sev, loc, std::move(msg)});
}

std::string DiagnosticEngine::renderAll() const {
  std::string out;
  for (const auto& d : diags_) {
    out += d.render();
    out += '\n';
  }
  return out;
}

void DiagnosticEngine::clear() {
  diags_.clear();
  errorCount_ = 0;
}

}  // namespace buffy
