// A small diagnostics engine: passes report errors/warnings/notes against
// source locations; callers render or inspect them after a pass runs.
#pragma once

#include <string>
#include <vector>

#include "support/source_location.hpp"

namespace buffy {

enum class Severity { Note, Warning, Error };

/// One reported diagnostic.
struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc{};
  std::string message;

  [[nodiscard]] std::string render() const;
};

/// Collects diagnostics for one front-end run.
class DiagnosticEngine {
 public:
  void report(Severity sev, SourceLoc loc, std::string msg);
  void error(SourceLoc loc, std::string msg) {
    report(Severity::Error, loc, std::move(msg));
  }
  void warning(SourceLoc loc, std::string msg) {
    report(Severity::Warning, loc, std::move(msg));
  }
  void note(SourceLoc loc, std::string msg) {
    report(Severity::Note, loc, std::move(msg));
  }

  [[nodiscard]] bool hasErrors() const { return errorCount_ > 0; }
  [[nodiscard]] std::size_t errorCount() const { return errorCount_; }
  [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }

  /// Renders every diagnostic, one per line.
  [[nodiscard]] std::string renderAll() const;

  void clear();

 private:
  std::vector<Diagnostic> diags_;
  std::size_t errorCount_ = 0;
};

}  // namespace buffy
