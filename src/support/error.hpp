// Exception types used across Buffy. Per the C++ Core Guidelines we report
// unrecoverable analysis errors via exceptions rather than error codes.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "support/source_location.hpp"

namespace buffy {

/// Base class for all Buffy errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& msg) : std::runtime_error(msg) {}
  Error(const std::string& msg, SourceLoc loc)
      : std::runtime_error(loc.known() ? loc.str() + ": " + msg : msg),
        loc_(loc) {}

  [[nodiscard]] SourceLoc loc() const { return loc_; }

 private:
  SourceLoc loc_{};
};

/// Lexing / parsing failure.
class SyntaxError : public Error {
 public:
  using Error::Error;
};

/// Type checking or semantic-pass failure.
class SemanticError : public Error {
 public:
  using Error::Error;
};

/// A compile-time resource budget was exhausted (CompileBudget, DESIGN.md
/// §10): unroll/inline blowup, AST or term-graph explosion, or nesting too
/// deep. Unlike SyntaxError/SemanticError this is not recoverable by
/// panic-mode synchronization — the governor aborts the whole compilation.
class BudgetExceeded : public Error {
 public:
  BudgetExceeded(std::string resource, std::uint64_t limit, SourceLoc loc)
      : Error("compile budget exceeded: " + resource + " limit " +
                  std::to_string(limit),
              loc),
        resource_(std::move(resource)),
        limit_(limit) {}

  /// Flag-style resource name ("unroll-stmts", "term-nodes", ...).
  [[nodiscard]] const std::string& resource() const { return resource_; }
  [[nodiscard]] std::uint64_t limit() const { return limit_; }

 private:
  std::string resource_;
  std::uint64_t limit_ = 0;
};

/// Evaluation / analysis failure (e.g. unsupported operation for the chosen
/// buffer model).
class AnalysisError : public Error {
 public:
  using Error::Error;
};

/// Backend (solver) failure.
class BackendError : public Error {
 public:
  using Error::Error;
};

}  // namespace buffy
