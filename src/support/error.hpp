// Exception types used across Buffy. Per the C++ Core Guidelines we report
// unrecoverable analysis errors via exceptions rather than error codes.
#pragma once

#include <stdexcept>
#include <string>

#include "support/source_location.hpp"

namespace buffy {

/// Base class for all Buffy errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& msg) : std::runtime_error(msg) {}
  Error(const std::string& msg, SourceLoc loc)
      : std::runtime_error(loc.known() ? loc.str() + ": " + msg : msg),
        loc_(loc) {}

  [[nodiscard]] SourceLoc loc() const { return loc_; }

 private:
  SourceLoc loc_{};
};

/// Lexing / parsing failure.
class SyntaxError : public Error {
 public:
  using Error::Error;
};

/// Type checking or semantic-pass failure.
class SemanticError : public Error {
 public:
  using Error::Error;
};

/// Evaluation / analysis failure (e.g. unsupported operation for the chosen
/// buffer model).
class AnalysisError : public Error {
 public:
  using Error::Error;
};

/// Backend (solver) failure.
class BackendError : public Error {
 public:
  using Error::Error;
};

}  // namespace buffy
