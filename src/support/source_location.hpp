// Source locations for diagnostics across the Buffy front-end.
#pragma once

#include <cstdint>
#include <string>

namespace buffy {

/// A position in a Buffy source text (1-based line and column).
/// Line 0 means "unknown / synthesized" (e.g. nodes created by transforms).
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool known() const { return line != 0; }
  [[nodiscard]] std::string str() const {
    if (!known()) return "<synth>";
    return std::to_string(line) + ":" + std::to_string(column);
  }
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

}  // namespace buffy
