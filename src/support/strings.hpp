// Small string helpers shared across the project.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace buffy {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> split(std::string_view s, char sep);

/// Strips leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Counts non-blank, non-comment ("//"-prefixed) lines — the LoC metric
/// used by the paper's Table 1.
std::size_t countCodeLines(std::string_view source);

/// True if `s` starts with `prefix`.
bool startsWith(std::string_view s, std::string_view prefix);

/// Joins pieces with `sep`.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

}  // namespace buffy
