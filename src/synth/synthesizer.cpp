#include "synth/synthesizer.hpp"

#include <chrono>

#include "support/error.hpp"

namespace buffy::synth {

const char* patternName(Pattern pattern) {
  switch (pattern) {
    case Pattern::None: return "none";
    case Pattern::ExactlyOnePerStep: return "1/step";
    case Pattern::AtLeastOnePerStep: return ">=1/step";
    case Pattern::BurstAtStart2: return "burst2@0";
    case Pattern::BurstAtStart3: return "burst3@0";
    case Pattern::AtMostOnePerStep: return "<=1/step";
    case Pattern::PacedSkipOne: return "1,0,1,1,...";
    case Pattern::Unconstrained: return "any";
  }
  return "?";
}

core::WorkloadRule patternRule(Pattern pattern, const std::string& buffer) {
  using core::Workload;
  switch (pattern) {
    case Pattern::None:
      return Workload::perStepCount(buffer, 0, 0);
    case Pattern::ExactlyOnePerStep:
      return Workload::perStepCount(buffer, 1, 1);
    case Pattern::AtLeastOnePerStep:
      return Workload::perStepCount(buffer, 1,
                                    std::numeric_limits<int>::max());
    case Pattern::BurstAtStart2:
    case Pattern::BurstAtStart3: {
      const std::int64_t k = pattern == Pattern::BurstAtStart2 ? 2 : 3;
      return [buffer, k](const core::ArrivalView& view, ir::TermArena& arena,
                         std::vector<ir::TermRef>& out) {
        out.push_back(arena.eq(view.count(buffer, 0), arena.intConst(k)));
        for (int t = 1; t < view.horizon(); ++t) {
          out.push_back(arena.eq(view.count(buffer, t), arena.intConst(0)));
        }
      };
    }
    case Pattern::AtMostOnePerStep:
      return Workload::perStepCount(buffer, 0, 1);
    case Pattern::PacedSkipOne:
      return [buffer](const core::ArrivalView& view, ir::TermArena& arena,
                      std::vector<ir::TermRef>& out) {
        for (int t = 0; t < view.horizon(); ++t) {
          const std::int64_t n = t == 1 ? 0 : 1;
          out.push_back(arena.eq(view.count(buffer, t), arena.intConst(n)));
        }
      };
    case Pattern::Unconstrained:
      return [](const core::ArrivalView&, ir::TermArena&,
                std::vector<ir::TermRef>&) {};
  }
  throw AnalysisError("unknown pattern");
}

std::string Candidate::describe() const {
  std::string out;
  for (const auto& [buffer, pattern] : assignment) {
    if (!out.empty()) out += ", ";
    out += buffer + ":" + patternName(pattern);
  }
  return out;
}

SynthesisResult Synthesizer::run(const core::Query& query,
                                 const SynthesisOptions& opts) {
  if (opts.grammar.empty()) {
    throw AnalysisError("synthesis grammar is empty");
  }
  // Discover the external inputs once.
  std::vector<std::string> inputs;
  {
    core::Analysis probe(network_, options_);
    inputs = probe.inputBufferNames();
  }
  if (inputs.empty()) {
    throw AnalysisError("network has no external inputs to synthesize over");
  }

  SynthesisResult result;
  const auto start = std::chrono::steady_clock::now();

  // Enumerate grammar^inputs in mixed-radix order.
  const std::size_t base = opts.grammar.size();
  std::vector<std::size_t> digits(inputs.size(), 0);
  bool done = false;
  while (!done) {
    Candidate candidate;
    core::Workload workload;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const Pattern pattern = opts.grammar[digits[i]];
      candidate.assignment[inputs[i]] = pattern;
      workload.add(patternRule(pattern, inputs[i]));
    }

    const auto candidateStart = std::chrono::steady_clock::now();
    core::Analysis analysis(network_, options_);
    analysis.setWorkload(workload);
    const auto existsResult = analysis.check(query);
    candidate.existsSat = existsResult.sat();
    if (candidate.existsSat && opts.requireUniversal) {
      candidate.forallHolds = analysis.verify(query).holds();
    } else if (candidate.existsSat) {
      candidate.forallHolds = true;
    }
    candidate.seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - candidateStart)
                            .count();
    ++result.candidatesChecked;

    if (candidate.existsSat && candidate.forallHolds) {
      result.solutions.push_back(candidate);
      if (opts.firstOnly) break;
    }

    // Next mixed-radix candidate.
    std::size_t pos = 0;
    while (pos < digits.size()) {
      if (++digits[pos] < base) break;
      digits[pos] = 0;
      ++pos;
    }
    done = pos == digits.size();
  }

  result.totalSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace buffy::synth
