#include "synth/synthesizer.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <mutex>
#include <optional>
#include <thread>

#include "support/error.hpp"

namespace buffy::synth {

const char* patternName(Pattern pattern) {
  switch (pattern) {
    case Pattern::None: return "none";
    case Pattern::ExactlyOnePerStep: return "1/step";
    case Pattern::AtLeastOnePerStep: return ">=1/step";
    case Pattern::BurstAtStart2: return "burst2@0";
    case Pattern::BurstAtStart3: return "burst3@0";
    case Pattern::AtMostOnePerStep: return "<=1/step";
    case Pattern::PacedSkipOne: return "1,0,1,1,...";
    case Pattern::Unconstrained: return "any";
  }
  return "?";
}

core::WorkloadRule patternRule(Pattern pattern, const std::string& buffer) {
  using core::Workload;
  switch (pattern) {
    case Pattern::None:
      return Workload::perStepCount(buffer, 0, 0);
    case Pattern::ExactlyOnePerStep:
      return Workload::perStepCount(buffer, 1, 1);
    case Pattern::AtLeastOnePerStep:
      return Workload::perStepCount(buffer, 1,
                                    std::numeric_limits<int>::max());
    case Pattern::BurstAtStart2:
    case Pattern::BurstAtStart3: {
      const std::int64_t k = pattern == Pattern::BurstAtStart2 ? 2 : 3;
      return [buffer, k](const core::ArrivalView& view, ir::TermArena& arena,
                         std::vector<ir::TermRef>& out) {
        out.push_back(arena.eq(view.count(buffer, 0), arena.intConst(k)));
        for (int t = 1; t < view.horizon(); ++t) {
          out.push_back(arena.eq(view.count(buffer, t), arena.intConst(0)));
        }
      };
    }
    case Pattern::AtMostOnePerStep:
      return Workload::perStepCount(buffer, 0, 1);
    case Pattern::PacedSkipOne:
      return [buffer](const core::ArrivalView& view, ir::TermArena& arena,
                      std::vector<ir::TermRef>& out) {
        for (int t = 0; t < view.horizon(); ++t) {
          const std::int64_t n = t == 1 ? 0 : 1;
          out.push_back(arena.eq(view.count(buffer, t), arena.intConst(n)));
        }
      };
    case Pattern::Unconstrained:
      return [](const core::ArrivalView&, ir::TermArena&,
                std::vector<ir::TermRef>&) {};
  }
  throw AnalysisError("unknown pattern");
}

std::string Candidate::describe() const {
  std::string out;
  for (const auto& [buffer, pattern] : assignment) {
    if (!out.empty()) out += ", ";
    out += buffer + ":" + patternName(pattern);
  }
  return out;
}

namespace {

/// All grammar^inputs assignments in mixed-radix order (inputs[0]'s pattern
/// varies fastest) — the canonical enumeration order; "first solution" and
/// the solution list are defined by it regardless of thread count.
std::vector<std::map<std::string, Pattern>> enumerateAssignments(
    const std::vector<std::string>& inputs,
    const std::vector<Pattern>& grammar) {
  std::vector<std::map<std::string, Pattern>> out;
  const std::size_t base = grammar.size();
  std::vector<std::size_t> digits(inputs.size(), 0);
  bool done = false;
  while (!done) {
    std::map<std::string, Pattern> assignment;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      assignment[inputs[i]] = grammar[digits[i]];
    }
    out.push_back(std::move(assignment));
    std::size_t pos = 0;
    while (pos < digits.size()) {
      if (++digits[pos] < base) break;
      digits[pos] = 0;
      ++pos;
    }
    done = pos == digits.size();
  }
  return out;
}

core::Workload workloadFor(const std::map<std::string, Pattern>& assignment) {
  core::Workload workload;
  for (const auto& [buffer, pattern] : assignment) {
    workload.add(patternRule(pattern, buffer));
  }
  return workload;
}

}  // namespace

SynthesisResult Synthesizer::run(const core::Query& query,
                                 const SynthesisOptions& opts) {
  if (opts.grammar.empty()) {
    throw AnalysisError("synthesis grammar is empty");
  }

  // Compile + encode once; this engine both discovers the external inputs
  // and serves as the first worker's solving engine.
  auto engine0 = std::make_unique<core::Analysis>(network_, options_);
  const std::vector<std::string> inputs = engine0->inputBufferNames();
  if (inputs.empty()) {
    throw AnalysisError("network has no external inputs to synthesize over");
  }

  const auto assignments = enumerateAssignments(inputs, opts.grammar);
  const std::size_t total = assignments.size();

  SynthesisResult result;
  const auto start = std::chrono::steady_clock::now();

  // One result slot per candidate: deterministic ordering falls out of the
  // index space, however the workers interleave.
  std::vector<std::optional<Candidate>> slots(total);
  std::atomic<std::size_t> next{0};
  constexpr std::size_t kNoSolution = std::numeric_limits<std::size_t>::max();
  /// Lowest candidate index known to be a solution (firstOnly
  /// cancellation: candidates above it can never be "first").
  std::atomic<std::size_t> firstSolution{kNoSolution};
  std::atomic<int> checked{0};

  auto evaluate = [&](core::Analysis* engine, std::size_t idx) {
    Candidate candidate;
    candidate.assignment = assignments[idx];
    const auto candidateStart = std::chrono::steady_clock::now();

    // The fresh path rebuilds the entire pipeline per candidate; the
    // incremental path re-binds the workload delta onto the worker's
    // already-built encoding and queries its persistent session.
    std::unique_ptr<core::Analysis> fresh;
    if (!opts.incremental) {
      fresh = std::make_unique<core::Analysis>(network_, options_);
      fresh->setWorkload(workloadFor(candidate.assignment));
      engine = fresh.get();
    } else {
      engine->rebindWorkload(workloadFor(candidate.assignment));
    }

    candidate.existsSat = engine->check(query).sat();
    if (candidate.existsSat && opts.requireUniversal) {
      candidate.forallHolds = engine->verify(query).holds();
    } else if (candidate.existsSat) {
      candidate.forallHolds = true;
    }
    candidate.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      candidateStart)
            .count();
    return candidate;
  };

  auto workerLoop = [&](core::Analysis* engine) {
    while (true) {
      const std::size_t idx = next.fetch_add(1);
      if (idx >= total) break;
      // A candidate past an already-found solution cannot be the first.
      if (opts.firstOnly && idx > firstSolution.load()) continue;
      Candidate candidate = evaluate(engine, idx);
      checked.fetch_add(1);
      const bool solution = candidate.existsSat && candidate.forallHolds;
      slots[idx] = std::move(candidate);
      if (solution && opts.firstOnly) {
        std::size_t cur = firstSolution.load();
        while (idx < cur &&
               !firstSolution.compare_exchange_weak(cur, idx)) {
        }
      }
    }
  };

  const std::size_t workers = std::min(
      static_cast<std::size_t>(std::max(1, opts.threads)), total);
  if (workers <= 1) {
    workerLoop(engine0.get());
  } else {
    std::mutex errorMutex;
    std::exception_ptr firstError;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        try {
          // Worker 0 inherits the probe engine; the rest compile their
          // own (each Analysis owns its own Z3 context — contexts must
          // not be shared across threads).
          std::unique_ptr<core::Analysis> own;
          core::Analysis* engine = engine0.get();
          if (w != 0) {
            own = std::make_unique<core::Analysis>(network_, options_);
            engine = own.get();
          }
          workerLoop(engine);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(errorMutex);
          if (!firstError) firstError = std::current_exception();
          // Drain the queue so the other workers stop promptly.
          next.store(total);
        }
      });
    }
    for (auto& t : pool) t.join();
    if (firstError) std::rethrow_exception(firstError);
  }

  result.candidatesChecked = checked.load();
  const std::size_t cutoff =
      opts.firstOnly ? firstSolution.load() : kNoSolution;
  for (std::size_t i = 0; i < total && i <= cutoff; ++i) {
    if (!slots[i]) continue;
    if (slots[i]->existsSat && slots[i]->forallHolds) {
      result.solutions.push_back(std::move(*slots[i]));
      if (opts.firstOnly) break;
    }
  }

  result.totalSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace buffy::synth
