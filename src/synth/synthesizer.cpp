#include "synth/synthesizer.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "pipeline/driver.hpp"
#include "support/error.hpp"

namespace buffy::synth {

const char* patternName(Pattern pattern) {
  switch (pattern) {
    case Pattern::None: return "none";
    case Pattern::ExactlyOnePerStep: return "1/step";
    case Pattern::AtLeastOnePerStep: return ">=1/step";
    case Pattern::BurstAtStart2: return "burst2@0";
    case Pattern::BurstAtStart3: return "burst3@0";
    case Pattern::AtMostOnePerStep: return "<=1/step";
    case Pattern::PacedSkipOne: return "1,0,1,1,...";
    case Pattern::Unconstrained: return "any";
  }
  return "?";
}

core::WorkloadRule patternRule(Pattern pattern, const std::string& buffer) {
  using core::Workload;
  switch (pattern) {
    case Pattern::None:
      return Workload::perStepCount(buffer, 0, 0);
    case Pattern::ExactlyOnePerStep:
      return Workload::perStepCount(buffer, 1, 1);
    case Pattern::AtLeastOnePerStep:
      return Workload::perStepCount(buffer, 1,
                                    std::numeric_limits<int>::max());
    case Pattern::BurstAtStart2:
    case Pattern::BurstAtStart3: {
      const std::int64_t k = pattern == Pattern::BurstAtStart2 ? 2 : 3;
      return [buffer, k](const core::ArrivalView& view, ir::TermArena& arena,
                         std::vector<ir::TermRef>& out) {
        out.push_back(arena.eq(view.count(buffer, 0), arena.intConst(k)));
        for (int t = 1; t < view.horizon(); ++t) {
          out.push_back(arena.eq(view.count(buffer, t), arena.intConst(0)));
        }
      };
    }
    case Pattern::AtMostOnePerStep:
      return Workload::perStepCount(buffer, 0, 1);
    case Pattern::PacedSkipOne:
      return [buffer](const core::ArrivalView& view, ir::TermArena& arena,
                      std::vector<ir::TermRef>& out) {
        for (int t = 0; t < view.horizon(); ++t) {
          const std::int64_t n = t == 1 ? 0 : 1;
          out.push_back(arena.eq(view.count(buffer, t), arena.intConst(n)));
        }
      };
    case Pattern::Unconstrained:
      return [](const core::ArrivalView&, ir::TermArena&,
                std::vector<ir::TermRef>&) {};
  }
  throw AnalysisError("unknown pattern");
}

namespace {

std::string describeAssignment(const std::map<std::string, Pattern>& a) {
  std::string out;
  for (const auto& [buffer, pattern] : a) {
    if (!out.empty()) out += ", ";
    out += buffer + ":" + patternName(pattern);
  }
  return out;
}

}  // namespace

std::string Candidate::describe() const {
  return describeAssignment(assignment);
}

const char* failureKindName(FailureKind kind) {
  switch (kind) {
    case FailureKind::Unknown: return "unknown";
    case FailureKind::Exception: return "exception";
    case FailureKind::WitnessMismatch: return "witness-mismatch";
    case FailureKind::Canceled: return "canceled";
  }
  return "?";
}

std::string CandidateFailure::describe() const {
  std::string out = "#" + std::to_string(index) + " [" +
                    describeAssignment(assignment) + "] " +
                    failureKindName(kind) + " in " + stage;
  if (!detail.empty()) out += ": " + detail;
  return out;
}

std::string SynthesisResult::summary() const {
  return std::to_string(solutions.size()) + " solution(s); " +
         std::to_string(solvedCount) + " solved, " +
         std::to_string(unknownCount) + " unknown, " +
         std::to_string(failedCount) + " failed of " +
         std::to_string(candidatesChecked) + " checked";
}

namespace {

/// All grammar^inputs assignments in mixed-radix order (inputs[0]'s pattern
/// varies fastest) — the canonical enumeration order; "first solution" and
/// the solution list are defined by it regardless of thread count.
std::vector<std::map<std::string, Pattern>> enumerateAssignments(
    const std::vector<std::string>& inputs,
    const std::vector<Pattern>& grammar) {
  std::vector<std::map<std::string, Pattern>> out;
  const std::size_t base = grammar.size();
  std::vector<std::size_t> digits(inputs.size(), 0);
  bool done = false;
  while (!done) {
    std::map<std::string, Pattern> assignment;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      assignment[inputs[i]] = grammar[digits[i]];
    }
    out.push_back(std::move(assignment));
    std::size_t pos = 0;
    while (pos < digits.size()) {
      if (++digits[pos] < base) break;
      digits[pos] = 0;
      ++pos;
    }
    done = pos == digits.size();
  }
  return out;
}

core::Workload workloadFor(const std::map<std::string, Pattern>& assignment) {
  core::Workload workload;
  for (const auto& [buffer, pattern] : assignment) {
    workload.add(patternRule(pattern, buffer));
  }
  return workload;
}

}  // namespace

SynthesisResult Synthesizer::run(const core::Query& query,
                                 const SynthesisOptions& opts) {
  if (opts.grammar.empty()) {
    throw AnalysisError("synthesis grammar is empty");
  }

  // One front-half compile for the whole run (DESIGN.md §11): every engine
  // — the probe, per-worker persistent engines, per-candidate fresh ones —
  // shares this unit, so candidates cost solves, not recompiles. Each
  // Analysis still owns its own Z3 context (contexts must not be shared
  // across threads); only the immutable compiled programs are shared.
  const pipeline::CompilerDriver driver(core::pipelineOptionsFor(options_));
  const pipeline::CompilationUnitPtr unit = driver.compile(network_);

  // This engine both discovers the external inputs and serves as the first
  // worker's solving engine.
  auto engine0 = std::make_unique<core::Analysis>(unit, options_);
  const std::vector<std::string> inputs = engine0->inputBufferNames();
  if (inputs.empty()) {
    throw AnalysisError("network has no external inputs to synthesize over");
  }

  const auto assignments = enumerateAssignments(inputs, opts.grammar);
  const std::size_t total = assignments.size();

  SynthesisResult result;
  const auto start = std::chrono::steady_clock::now();

  // One result slot per candidate: deterministic ordering falls out of the
  // index space, however the workers interleave. Each candidate lands in
  // exactly one of `slots` (conclusive verdict) or `failSlots`
  // (inconclusive / broken — per-candidate fault isolation).
  std::vector<std::optional<Candidate>> slots(total);
  std::vector<std::optional<CandidateFailure>> failSlots(total);
  /// Optimizer accounting per candidate's ∃ query (earliest one that
  /// produced stats is surfaced on the result).
  std::vector<std::optional<opt::OptStats>> optSlots(total);
  std::atomic<std::size_t> next{0};
  constexpr std::size_t kNoSolution = std::numeric_limits<std::size_t>::max();
  /// Lowest candidate index known to be a solution (firstOnly
  /// cancellation: candidates above it can never be "first").
  std::atomic<std::size_t> firstSolution{kNoSolution};
  std::atomic<int> checked{0};

  const std::size_t workers = std::min(
      static_cast<std::size_t>(std::max(1, opts.threads)), total);
  /// Published engine pointer + in-flight candidate index per worker, for
  /// firstOnly cancellation: when a solution lands at index s, every engine
  /// currently solving a candidate > s is interrupted (per-worker indices
  /// are monotonic, so anything it touches from then on is > s too — all
  /// past the report cutoff, keeping the run deterministic).
  ///
  /// `mu` guards `engine` against the publish/interrupt/unpublish race: a
  /// canceller must never call interrupt() on an engine whose owner has
  /// already retired (and destroyed it), and a worker must not destroy a
  /// per-candidate engine while an interrupt on it is in flight. `current`
  /// is an atomic, not mutex-guarded: workers store their claim *before*
  /// re-checking the cutoff, pairing with noteSolution's firstSolution
  /// store + current load (seq_cst) so every racing claim either becomes
  /// visible to the canceller or observes the new cutoff itself. Idle
  /// workers (current == kNoSolution) are never interrupted — a worker
  /// between candidates may still claim an index below the cutoff.
  struct WorkerState {
    std::mutex mu;
    core::Analysis* engine = nullptr;  // guarded by mu
    std::atomic<std::size_t> current{
        std::numeric_limits<std::size_t>::max()};
  };
  std::vector<WorkerState> states(workers);

  auto noteSolution = [&](std::size_t idx) {
    std::size_t cur = firstSolution.load();
    while (idx < cur && !firstSolution.compare_exchange_weak(cur, idx)) {
    }
    // Stop workers burning time on candidates that can no longer win.
    for (WorkerState& state : states) {
      const std::size_t inFlight = state.current.load();
      if (inFlight == kNoSolution || inFlight <= idx) continue;
      const std::lock_guard<std::mutex> lock(state.mu);
      if (state.engine) state.engine->interrupt();
    }
  };

  auto evaluate = [&](std::size_t w, core::Analysis* engine,
                      std::size_t idx) {
    const auto candidateStart = std::chrono::steady_clock::now();
    const char* stage = "setup";
    auto fail = [&](FailureKind kind, std::string detail) {
      CandidateFailure failure;
      failure.index = idx;
      failure.assignment = assignments[idx];
      failure.kind = kind;
      failure.stage = stage;
      failure.detail = std::move(detail);
      failSlots[idx] = std::move(failure);
    };
    auto failFrom = [&](const core::AnalysisResult& r) {
      if (r.verdict == core::Verdict::WitnessMismatch) {
        fail(FailureKind::WitnessMismatch, r.detail);
      } else if (r.canceled) {
        fail(FailureKind::Canceled, "interrupted");
      } else {
        fail(FailureKind::Unknown,
             r.detail.empty() ? "solver returned unknown" : r.detail);
      }
    };

    // The fresh path rebuilds the entire pipeline per candidate; the
    // incremental path re-binds the workload delta onto the worker's
    // already-built encoding and queries its persistent session.
    core::Analysis* const persistent = engine;
    std::unique_ptr<core::Analysis> fresh;
    try {
      Candidate candidate;
      candidate.assignment = assignments[idx];

      if (!opts.incremental) {
        fresh = std::make_unique<core::Analysis>(unit, options_);
        fresh->setWorkload(workloadFor(candidate.assignment));
        engine = fresh.get();
        // Publish the per-candidate engine so firstOnly cancellation
        // interrupts the query actually in flight, not the worker's idle
        // persistent engine.
        const std::lock_guard<std::mutex> lock(states[w].mu);
        states[w].engine = engine;
      } else {
        engine->rebindWorkload(workloadFor(candidate.assignment));
      }
      // Injected faults are keyed by candidate index, not by worker or
      // global check order — determinism under any thread count.
      engine->setFaultScope("cand" + std::to_string(idx));

      stage = "exists";
      const core::AnalysisResult exists = engine->check(query);
      if (exists.opt) optSlots[idx] = exists.opt;
      if (exists.verdict == core::Verdict::WitnessMismatch ||
          exists.inconclusive()) {
        failFrom(exists);
        return;
      }
      candidate.existsSat = exists.sat();

      if (candidate.existsSat && opts.requireUniversal) {
        stage = "forall";
        const core::AnalysisResult forall = engine->verify(query);
        if (forall.verdict == core::Verdict::WitnessMismatch ||
            forall.inconclusive()) {
          failFrom(forall);
          return;
        }
        candidate.forallHolds = forall.holds();
      } else if (candidate.existsSat) {
        candidate.forallHolds = true;
      }

      candidate.seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        candidateStart)
              .count();
      const bool solution = candidate.existsSat && candidate.forallHolds;
      slots[idx] = std::move(candidate);
      if (solution && opts.firstOnly) noteSolution(idx);
    } catch (const std::exception& e) {
      fail(FailureKind::Exception, e.what());
    }
    if (fresh) {
      // Unpublish before `fresh` dies so no interrupt can land on a
      // destroyed engine; the mutex orders this against an in-flight one.
      const std::lock_guard<std::mutex> lock(states[w].mu);
      states[w].engine = persistent;
    }
  };

  auto workerLoop = [&](std::size_t w, core::Analysis* engine) {
    WorkerState& state = states[w];
    {
      const std::lock_guard<std::mutex> lock(state.mu);
      state.engine = engine;
    }
    while (true) {
      const std::size_t idx = next.fetch_add(1);
      if (idx >= total) break;
      // Publish the claim before checking the cutoff: either noteSolution
      // observes the claim (and interrupts only if it is past the cutoff),
      // or this load observes the new cutoff and skips — so a candidate at
      // or below the cutoff can never be wrongly canceled.
      state.current.store(idx);
      // A candidate past an already-found solution cannot be the first.
      if (opts.firstOnly && idx > firstSolution.load()) continue;
      evaluate(w, engine, idx);
      checked.fetch_add(1);
    }
    state.current.store(kNoSolution);
    {
      const std::lock_guard<std::mutex> lock(state.mu);
      state.engine = nullptr;
    }
  };

  if (workers <= 1) {
    workerLoop(0, engine0.get());
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        // Worker 0 inherits the probe engine; the rest compile their own
        // (each Analysis owns its own Z3 context — contexts must not be
        // shared across threads). A failure to build the engine is
        // isolated too: this worker records nothing and retires, the
        // others keep draining the queue.
        std::unique_ptr<core::Analysis> own;
        core::Analysis* engine = engine0.get();
        if (w != 0) {
          try {
            own = std::make_unique<core::Analysis>(unit, options_);
          } catch (const std::exception&) {
            return;
          }
          engine = own.get();
        }
        workerLoop(w, engine);
      });
    }
    for (auto& t : pool) t.join();
  }

  result.candidatesChecked = checked.load();
  const std::size_t cutoff =
      opts.firstOnly ? firstSolution.load() : kNoSolution;
  for (std::size_t i = 0; i < total && i <= cutoff; ++i) {
    if (slots[i]) {
      ++result.solvedCount;
      if (slots[i]->existsSat && slots[i]->forallHolds) {
        result.solutions.push_back(std::move(*slots[i]));
        if (opts.firstOnly) break;
      }
    } else if (failSlots[i] &&
               failSlots[i]->kind != FailureKind::Canceled) {
      // Canceled candidates are an artifact of firstOnly cancellation (they
      // lie past the cutoff by construction) — never part of the report.
      if (failSlots[i]->kind == FailureKind::Unknown) {
        ++result.unknownCount;
      } else {
        ++result.failedCount;
      }
      result.failures.push_back(std::move(*failSlots[i]));
    }
    if (!result.opt && optSlots[i]) result.opt = std::move(optSlots[i]);
  }

  result.totalSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace buffy::synth
