#include "synth/synthesizer.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <unordered_map>

#include "ir/term_hash.hpp"
#include "ir/term_printer.hpp"
#include "jobs/job.hpp"
#include "pipeline/driver.hpp"
#include "pipeline/encoder.hpp"
#include "support/error.hpp"

namespace buffy::synth {

const char* patternName(Pattern pattern) {
  switch (pattern) {
    case Pattern::None: return "none";
    case Pattern::ExactlyOnePerStep: return "1/step";
    case Pattern::AtLeastOnePerStep: return ">=1/step";
    case Pattern::BurstAtStart2: return "burst2@0";
    case Pattern::BurstAtStart3: return "burst3@0";
    case Pattern::AtMostOnePerStep: return "<=1/step";
    case Pattern::PacedSkipOne: return "1,0,1,1,...";
    case Pattern::Unconstrained: return "any";
  }
  return "?";
}

core::WorkloadRule patternRule(Pattern pattern, const std::string& buffer) {
  using core::Workload;
  switch (pattern) {
    case Pattern::None:
      return Workload::perStepCount(buffer, 0, 0);
    case Pattern::ExactlyOnePerStep:
      return Workload::perStepCount(buffer, 1, 1);
    case Pattern::AtLeastOnePerStep:
      return Workload::perStepCount(buffer, 1,
                                    std::numeric_limits<int>::max());
    case Pattern::BurstAtStart2:
    case Pattern::BurstAtStart3: {
      const std::int64_t k = pattern == Pattern::BurstAtStart2 ? 2 : 3;
      return [buffer, k](const core::ArrivalView& view, ir::TermArena& arena,
                         std::vector<ir::TermRef>& out) {
        out.push_back(arena.eq(view.count(buffer, 0), arena.intConst(k)));
        for (int t = 1; t < view.horizon(); ++t) {
          out.push_back(arena.eq(view.count(buffer, t), arena.intConst(0)));
        }
      };
    }
    case Pattern::AtMostOnePerStep:
      return Workload::perStepCount(buffer, 0, 1);
    case Pattern::PacedSkipOne:
      return [buffer](const core::ArrivalView& view, ir::TermArena& arena,
                      std::vector<ir::TermRef>& out) {
        for (int t = 0; t < view.horizon(); ++t) {
          const std::int64_t n = t == 1 ? 0 : 1;
          out.push_back(arena.eq(view.count(buffer, t), arena.intConst(n)));
        }
      };
    case Pattern::Unconstrained:
      return [](const core::ArrivalView&, ir::TermArena&,
                std::vector<ir::TermRef>&) {};
  }
  throw AnalysisError("unknown pattern");
}

namespace {

std::string describeAssignment(const std::map<std::string, Pattern>& a) {
  std::string out;
  for (const auto& [buffer, pattern] : a) {
    if (!out.empty()) out += ", ";
    out += buffer + ":" + patternName(pattern);
  }
  return out;
}

}  // namespace

std::string Candidate::describe() const {
  return describeAssignment(assignment);
}

const char* failureKindName(FailureKind kind) {
  switch (kind) {
    case FailureKind::Unknown: return "unknown";
    case FailureKind::Exception: return "exception";
    case FailureKind::WitnessMismatch: return "witness-mismatch";
    case FailureKind::Canceled: return "canceled";
  }
  return "?";
}

std::string CandidateFailure::describe() const {
  std::string out = "#" + std::to_string(index) + " [" +
                    describeAssignment(assignment) + "] " +
                    failureKindName(kind) + " in " + stage;
  if (!detail.empty()) out += ": " + detail;
  return out;
}

std::string SynthesisResult::summary() const {
  std::string out =
      std::to_string(solutions.size()) + " solution(s); " +
      std::to_string(solvedCount) + " solved, " +
      std::to_string(unknownCount) + " unknown, " +
      std::to_string(failedCount) + " failed of " +
      std::to_string(candidatesChecked) + " checked";
  if (prescreenRejected > 0 || prescreenWitnessed > 0) {
    out += " (prescreen: " + std::to_string(prescreenRejected) +
           " rejected, " + std::to_string(prescreenWitnessed) +
           " witnessed)";
  }
  return out;
}

namespace {

/// All grammar^inputs assignments in mixed-radix order (inputs[0]'s pattern
/// varies fastest) — the canonical enumeration order; "first solution" and
/// the solution list are defined by it regardless of thread count.
std::vector<std::map<std::string, Pattern>> enumerateAssignments(
    const std::vector<std::string>& inputs,
    const std::vector<Pattern>& grammar) {
  std::vector<std::map<std::string, Pattern>> out;
  const std::size_t base = grammar.size();
  std::vector<std::size_t> digits(inputs.size(), 0);
  bool done = false;
  while (!done) {
    std::map<std::string, Pattern> assignment;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      assignment[inputs[i]] = grammar[digits[i]];
    }
    out.push_back(std::move(assignment));
    std::size_t pos = 0;
    while (pos < digits.size()) {
      if (++digits[pos] < base) break;
      digits[pos] = 0;
      ++pos;
    }
    done = pos == digits.size();
  }
  return out;
}

core::Workload workloadFor(const std::map<std::string, Pattern>& assignment) {
  core::Workload workload;
  for (const auto& [buffer, pattern] : assignment) {
    workload.add(patternRule(pattern, buffer));
  }
  return workload;
}

/// Whether a pattern pins its per-step counts (so every prescreen sample
/// of it is the same trace).
bool patternDeterministic(Pattern pattern) {
  switch (pattern) {
    case Pattern::AtLeastOnePerStep:
    case Pattern::AtMostOnePerStep:
    case Pattern::Unconstrained:
      return false;
    default:
      return true;
  }
}

/// A sampled arrival count conforming to `pattern` at step `t`, or nullopt
/// when no count within the buffer's per-step bound can conform (the
/// pattern is infeasible for this buffer — leave it to the solver).
std::optional<int> sampleCount(Pattern pattern, int t, int maxArrivals,
                               std::mt19937& rng) {
  switch (pattern) {
    case Pattern::None:
      return 0;
    case Pattern::ExactlyOnePerStep:
      if (maxArrivals < 1) return std::nullopt;
      return 1;
    case Pattern::AtLeastOnePerStep:
      if (maxArrivals < 1) return std::nullopt;
      return 1 + static_cast<int>(rng() % static_cast<unsigned>(maxArrivals));
    case Pattern::BurstAtStart2:
    case Pattern::BurstAtStart3: {
      const int k = pattern == Pattern::BurstAtStart2 ? 2 : 3;
      if (t != 0) return 0;
      if (k > maxArrivals) return std::nullopt;
      return k;
    }
    case Pattern::AtMostOnePerStep:
      if (maxArrivals < 1) return 0;
      return static_cast<int>(rng() % 2);
    case Pattern::PacedSkipOne:
      if (maxArrivals < 1) return std::nullopt;
      return t == 1 ? 0 : 1;
    case Pattern::Unconstrained:
      return static_cast<int>(rng() %
                              static_cast<unsigned>(maxArrivals + 1));
  }
  return std::nullopt;
}

}  // namespace

SynthesisResult Synthesizer::run(const core::Query& query,
                                 const SynthesisOptions& opts) {
  if (opts.grammar.empty()) {
    throw AnalysisError("synthesis grammar is empty");
  }

  // One front-half compile for the whole run (DESIGN.md §11): every engine
  // — the probe, per-worker persistent engines, per-candidate fresh ones —
  // shares this unit, so candidates cost solves, not recompiles. Each
  // Analysis still owns its own Z3 context (contexts must not be shared
  // across threads); only the immutable compiled programs are shared.
  const pipeline::CompilerDriver driver(core::pipelineOptionsFor(options_));
  const pipeline::CompilationUnitPtr unit = driver.compile(network_);

  // This engine both discovers the external inputs and serves as the first
  // worker's solving engine.
  auto engine0 = std::make_unique<core::Analysis>(unit, options_);
  const std::vector<std::string> inputs = engine0->inputBufferNames();
  if (inputs.empty()) {
    throw AnalysisError("network has no external inputs to synthesize over");
  }

  const auto assignments = enumerateAssignments(inputs, opts.grammar);
  const std::size_t total = assignments.size();

  SynthesisResult result;
  const auto start = std::chrono::steady_clock::now();

  // ------------------------------------------------------------------
  // Concrete-interpreter prescreening (no solver involved): per-input
  // sampling metadata, gated on the same replayability conditions as the
  // witness cross-check. A runtime failure (nondeterministic model)
  // trips `prescreenBroken` and the rest of the run goes straight to SMT.
  // ------------------------------------------------------------------
  struct ScreenInput {
    std::string name;
    int maxArrivals = 0;
    std::string classField;
    int classDomain = 0;
  };
  std::vector<ScreenInput> screenInputs;
  bool prescreenable = opts.prescreen && !options_.symbolicInitialState &&
                       unit->network().contracts().empty();
  if (prescreenable) {
    for (const auto& ci : unit->instances()) {
      for (const auto& bu : unit->bufferUnits(ci)) {
        if (bu.spec->role != core::BufferSpec::Role::Input) continue;
        if (unit->connectedInputs().count(bu.qualified) != 0) continue;
        screenInputs.push_back({bu.qualified, bu.spec->maxArrivalsPerStep,
                                bu.spec->classField, bu.spec->classDomain});
      }
    }
    prescreenable = !screenInputs.empty();
  }
  std::atomic<bool> prescreenBroken{false};
  std::atomic<int> prescreenRejected{0};
  std::atomic<int> prescreenWitnessed{0};

  struct ScreenResult {
    bool reject = false;   // a conforming sample violated the query
    bool witness = false;  // a conforming sample satisfied the query
    bool skipped = false;  // could not sample — leave it to the solver
  };
  /// Samples a small batch of concrete traces conforming to the
  /// candidate's workload and evaluates the query on each through the
  /// concrete evaluator. Rejection (requireUniversal only) and witnessing
  /// are both sound: a sampled trace satisfies exactly the workload +
  /// arrival-soundness constraint set the symbolic encoding assumes
  /// (counts within the per-step bound, packet fields at their
  /// constrained defaults), so it is a genuine member of the candidate's
  /// trace set.
  auto screenCandidate =
      [&](std::size_t idx,
          const std::map<std::string, Pattern>& assignment) -> ScreenResult {
    ScreenResult out;
    // Seeded per candidate index: the batch is deterministic under any
    // thread count.
    std::mt19937 rng(opts.prescreenSeed +
                     0x9e3779b9u * static_cast<unsigned>(idx + 1));
    bool allDeterministic = true;
    for (const auto& [buffer, pattern] : assignment) {
      (void)buffer;
      if (!patternDeterministic(pattern)) allDeterministic = false;
    }
    const int samples =
        allDeterministic ? 1 : std::max(1, opts.prescreenTraces);
    try {
      for (int s = 0; s < samples; ++s) {
        core::ConcreteArrivals arrivals;
        bool feasible = true;
        for (const auto& in : screenInputs) {
          const auto pit = assignment.find(in.name);
          if (pit == assignment.end()) continue;
          auto& steps = arrivals[in.name];
          for (int t = 0; t < options_.horizon && feasible; ++t) {
            const auto n = sampleCount(pit->second, t, in.maxArrivals, rng);
            if (!n) {
              feasible = false;
              break;
            }
            std::vector<core::ConcretePacket> packets;
            for (int i = 0; i < *n; ++i) {
              core::ConcretePacket packet;
              if (in.classDomain > 0 && !in.classField.empty()) {
                packet[in.classField] = static_cast<std::int64_t>(
                    rng() % static_cast<unsigned>(in.classDomain));
              }
              packets.push_back(std::move(packet));
            }
            steps.push_back(std::move(packets));
          }
          if (!feasible) break;
        }
        if (!feasible) {
          out.skipped = true;
          return out;
        }
        const core::Workload empty;
        const auto enc = pipeline::buildEncoding(*unit, empty, &arrivals);
        const core::SeriesView view(&enc->series, enc->horizon);
        const auto value = ir::constValue(query.build(view, enc->arena));
        if (!value) {
          // Nondeterministic model configuration — no concrete verdicts.
          prescreenBroken.store(true);
          out.skipped = true;
          return out;
        }
        if (*value != 0) {
          out.witness = true;
        } else if (opts.requireUniversal) {
          // A conforming trace violating the query refutes ∀ outright.
          out.reject = true;
          return out;
        }
      }
    } catch (const Error&) {
      prescreenBroken.store(true);
      return {false, false, true};
    }
    return out;
  };

  // One result slot per candidate: deterministic ordering falls out of the
  // index space, however the workers interleave. Each candidate lands in
  // exactly one of `slots` (conclusive verdict) or `failSlots`
  // (inconclusive / broken — per-candidate fault isolation).
  std::vector<std::optional<Candidate>> slots(total);
  std::vector<std::optional<CandidateFailure>> failSlots(total);
  /// Optimizer accounting per candidate's first SMT query (earliest one
  /// that produced stats is surfaced on the result).
  std::vector<std::optional<opt::OptStats>> optSlots(total);

  const std::size_t workers = std::min(
      static_cast<std::size_t>(std::max(1, opts.threads)), total);
  // Worker 0 inherits the probe engine; the rest compile their own in
  // their JobPool setup hook (each Analysis owns its own Z3 context).
  std::vector<std::unique_ptr<core::Analysis>> engines(workers);
  jobs::JobPool pool;

  // In-run negative cache (DESIGN.md §14): canonical workload-set hash ->
  // (existsSat, forallHolds) of a prescreen-rejected candidate. One hasher
  // per worker — each engine has its own arena, and a hasher's memo is
  // only valid within one arena.
  const bool negativeCacheOn = opts.negativeCache && opts.incremental &&
                               opts.requireUniversal;
  std::mutex negMutex;
  std::unordered_map<std::uint64_t, std::pair<bool, bool>> negCache;
  std::atomic<int> prescreenCacheHits{0};
  std::vector<ir::TermHasher> hashers(workers);

  auto evaluate = [&](jobs::JobContext& ctx, core::Analysis* engine,
                      std::size_t idx) {
    const auto candidateStart = std::chrono::steady_clock::now();
    const char* stage = "setup";
    auto fail = [&](FailureKind kind, std::string detail) {
      CandidateFailure failure;
      failure.index = idx;
      failure.assignment = assignments[idx];
      failure.kind = kind;
      failure.stage = stage;
      failure.detail = std::move(detail);
      failSlots[idx] = std::move(failure);
    };
    auto failFrom = [&](const core::AnalysisResult& r) {
      if (r.verdict == core::Verdict::WitnessMismatch) {
        fail(FailureKind::WitnessMismatch, r.detail);
      } else if (r.canceled) {
        fail(FailureKind::Canceled, "interrupted");
      } else {
        fail(FailureKind::Unknown,
             r.detail.empty() ? "solver returned unknown" : r.detail);
      }
    };

    // The fresh path rebuilds the entire pipeline per candidate; the
    // incremental path re-binds the workload delta onto the worker's
    // already-built encoding and queries its persistent session. The
    // ScopedInterrupt publishes the per-candidate fresh engine so firstOnly
    // cancellation interrupts the query actually in flight (and restores
    // the persistent engine's hook before `fresh` dies, so no interrupt
    // can land on a destroyed engine).
    std::unique_ptr<core::Analysis> fresh;
    std::optional<jobs::ScopedInterrupt> guard;
    try {
      Candidate candidate;
      candidate.assignment = assignments[idx];

      bool existsConfirmed = false;
      bool bound = false;
      std::optional<std::uint64_t> negKey;
      if (negativeCacheOn && prescreenable && !prescreenBroken.load()) {
        // Bind the candidate's workload early so its constraint set can be
        // hashed; the rebind is reused by the solver setup below.
        stage = "setup";
        engine->rebindWorkload(workloadFor(candidate.assignment));
        bound = true;
        negKey = hashers[ctx.worker()].hashSet(
            engine->encoding().workloadTerms);
        std::lock_guard<std::mutex> lock(negMutex);
        const auto it = negCache.find(*negKey);
        if (it != negCache.end()) {
          // A structurally identical candidate was already rejected: its
          // counterexample trace conforms to this one too.
          candidate.existsSat = it->second.first;
          candidate.forallHolds = it->second.second;
          candidate.prescreened = true;
          candidate.seconds =
              std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - candidateStart)
                  .count();
          prescreenCacheHits.fetch_add(1);
          prescreenRejected.fetch_add(1);
          slots[idx] = std::move(candidate);
          return;
        }
      }
      if (prescreenable && !prescreenBroken.load()) {
        stage = "prescreen";
        const ScreenResult screen =
            screenCandidate(idx, candidate.assignment);
        if (screen.reject) {
          candidate.existsSat = screen.witness;
          candidate.forallHolds = false;
          candidate.prescreened = true;
          candidate.seconds =
              std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - candidateStart)
                  .count();
          prescreenRejected.fetch_add(1);
          if (negKey) {
            std::lock_guard<std::mutex> lock(negMutex);
            negCache.emplace(*negKey,
                             std::make_pair(candidate.existsSat,
                                            candidate.forallHolds));
          }
          slots[idx] = std::move(candidate);
          return;
        }
        if (screen.witness) {
          existsConfirmed = true;
          candidate.prescreened = true;
          prescreenWitnessed.fetch_add(1);
        }
      }

      // A prescreen-witnessed candidate in existential-only mode needs no
      // solver at all.
      const bool engineNeeded = !existsConfirmed || opts.requireUniversal;
      if (engineNeeded) {
        stage = "setup";
        if (!opts.incremental) {
          fresh = std::make_unique<core::Analysis>(unit, options_);
          fresh->setWorkload(workloadFor(candidate.assignment));
          engine = fresh.get();
          guard.emplace(ctx, [engine] { engine->interrupt(); });
        } else if (!bound) {
          engine->rebindWorkload(workloadFor(candidate.assignment));
        }
        // Injected faults are keyed by candidate index, not by worker or
        // global check order — determinism under any thread count.
        engine->setFaultScope("cand" + std::to_string(idx));
      }

      if (existsConfirmed) {
        candidate.existsSat = true;
      } else {
        stage = "exists";
        const core::AnalysisResult exists = engine->check(query);
        if (exists.opt) optSlots[idx] = exists.opt;
        if (exists.verdict == core::Verdict::WitnessMismatch ||
            exists.inconclusive()) {
          failFrom(exists);
          return;
        }
        candidate.existsSat = exists.sat();
      }

      if (candidate.existsSat && opts.requireUniversal) {
        stage = "forall";
        const core::AnalysisResult forall = engine->verify(query);
        if (forall.opt && !optSlots[idx]) optSlots[idx] = forall.opt;
        if (forall.verdict == core::Verdict::WitnessMismatch ||
            forall.inconclusive()) {
          failFrom(forall);
          return;
        }
        candidate.forallHolds = forall.holds();
      } else if (candidate.existsSat) {
        candidate.forallHolds = true;
      }

      candidate.seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        candidateStart)
              .count();
      const bool solution = candidate.existsSat && candidate.forallHolds;
      slots[idx] = std::move(candidate);
      // firstOnly: candidates above a known solution can never be "first"
      // — lower the pool cutoff and interrupt the doomed in-flight ones.
      if (solution && opts.firstOnly) pool.cutAt(idx);
    } catch (const std::exception& e) {
      fail(FailureKind::Exception, e.what());
    }
  };

  jobs::JobPool::RunSpec spec;
  spec.jobs = total;
  spec.workers = workers;
  spec.setup = [&](jobs::JobContext& ctx) {
    const std::size_t w = ctx.worker();
    core::Analysis* engine = engine0.get();
    if (w != 0) {
      // A failure to build the engine is isolated: this worker records
      // nothing and retires, the others keep draining the queue.
      engines[w] = std::make_unique<core::Analysis>(unit, options_);
      engine = engines[w].get();
    }
    ctx.onInterrupt([engine] { engine->interrupt(); });
    return true;
  };
  spec.body = [&](jobs::JobContext& ctx, std::size_t idx) {
    core::Analysis* engine =
        ctx.worker() == 0 ? engine0.get() : engines[ctx.worker()].get();
    evaluate(ctx, engine, idx);
  };
  pool.run(spec);

  result.candidatesChecked = static_cast<int>(pool.completed());
  result.prescreenRejected = prescreenRejected.load();
  result.prescreenWitnessed = prescreenWitnessed.load();
  result.prescreenCacheHits = prescreenCacheHits.load();
  const std::size_t cutoff = opts.firstOnly ? pool.cutoff() : jobs::JobPool::kNone;
  for (std::size_t i = 0; i < total && i <= cutoff; ++i) {
    if (slots[i]) {
      ++result.solvedCount;
      if (slots[i]->existsSat && slots[i]->forallHolds) {
        result.solutions.push_back(std::move(*slots[i]));
        if (opts.firstOnly) break;
      }
    } else if (failSlots[i] &&
               failSlots[i]->kind != FailureKind::Canceled) {
      // Canceled candidates are an artifact of firstOnly cancellation (they
      // lie past the cutoff by construction) — never part of the report.
      if (failSlots[i]->kind == FailureKind::Unknown) {
        ++result.unknownCount;
      } else {
        ++result.failedCount;
      }
      result.failures.push_back(std::move(*failSlots[i]));
    }
    if (!result.opt && optSlots[i]) result.opt = std::move(optSlots[i]);
  }

  result.totalSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace buffy::synth
