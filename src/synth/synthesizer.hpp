// FPerf-style workload synthesis (paper §4: "use FPerf to synthesize the
// assumptions on the input traffic that would cause the query to be
// satisfied", and §5's SyGuS-with-domain-specific-grammar direction).
//
// Guess-and-check over a grammar of per-input arrival patterns: each
// candidate assigns one pattern to every external input buffer; a
// candidate is a *solution* when
//   (∃) some trace satisfying it satisfies the query, and
//   (∀) every trace satisfying it satisfies the query (checked via UNSAT
//       of the negation) — i.e. the synthesized workload *guarantees* the
//       queried behavior, which is what FPerf reports to the user.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/analysis.hpp"

namespace buffy::synth {

enum class Pattern {
  None,               // no arrivals, ever
  ExactlyOnePerStep,  // count == 1 at every step
  AtLeastOnePerStep,  // count >= 1 at every step
  BurstAtStart2,      // count == 2 at step 0, none afterwards
  BurstAtStart3,      // count == 3 at step 0, none afterwards
  AtMostOnePerStep,   // count <= 1 at every step (free pacing)
  PacedSkipOne,       // 1, 0, 1, 1, ... — the RFC 8290 "just the right
                      // rate" pacing that triggers the §2.1 bug
  Unconstrained,      // anything within the per-step bound
};

const char* patternName(Pattern pattern);

/// The workload rule a pattern denotes for one buffer.
core::WorkloadRule patternRule(Pattern pattern, const std::string& buffer);

struct SynthesisOptions {
  /// Patterns the search may assign (the grammar).
  std::vector<Pattern> grammar = {
      Pattern::None, Pattern::ExactlyOnePerStep, Pattern::PacedSkipOne,
      Pattern::BurstAtStart2, Pattern::BurstAtStart3};
  /// Require the ∀ direction too (FPerf semantics). When false, any
  /// satisfiable candidate is a solution.
  bool requireUniversal = true;
  /// Stop after the first solution (by enumeration order — deterministic
  /// regardless of `threads`).
  bool firstOnly = false;
  /// Worker threads. Each worker compiles + encodes the network once into
  /// its own engine with its own Z3 context (Z3 contexts are not
  /// thread-safe), then pulls candidates from a shared queue. The solution
  /// set and its order are identical for any thread count.
  int threads = 1;
  /// Reuse one compiled encoding + incremental solver session per worker,
  /// re-binding each candidate as a workload delta (the fast path). When
  /// false, every candidate rebuilds the full pipeline in a fresh engine —
  /// the pre-incremental behavior, kept for differential testing and the
  /// fresh-vs-incremental benchmark.
  bool incremental = true;
  /// Concrete-interpreter prescreening: before any SMT call, simulate a
  /// small batch of sampled traces conforming to the candidate's workload.
  /// A conforming trace that VIOLATES the query refutes the ∀ direction
  /// (the candidate is conclusively not a solution — no solver needed);
  /// one that SATISFIES it is an ∃ witness (the exists query is skipped).
  /// Sampling is seeded and deterministic, so the solution set and report
  /// are identical with prescreening on or off — it only changes which
  /// verdicts come from the interpreter instead of the solver. Disabled
  /// automatically for networks the interpreter cannot replay (contracts,
  /// havoced initial state, nondeterministic models). CLI: --no-prescreen.
  bool prescreen = true;
  /// Traces sampled per candidate (only patterns with freedom — at-most /
  /// at-least / unconstrained — actually vary between samples).
  int prescreenTraces = 3;
  /// Seed for the per-candidate trace sampler. Candidate index is mixed
  /// in, so the batch is deterministic under any thread count.
  unsigned prescreenSeed = 12345;
  /// Negative-cache prescreen rejections within a run (DESIGN.md §14),
  /// keyed by the canonical hash of the candidate's workload constraint
  /// set: two candidates whose assignments produce structurally identical
  /// workload terms (e.g. grammar entries that encode the same
  /// constraints) share one rejection — the later one is decided without
  /// sampling or solving. Sound because identical constraint sets have
  /// identical trace sets, so a conforming counterexample for one rejects
  /// both. Incremental mode + requireUniversal only.
  bool negativeCache = true;
};

struct Candidate {
  std::map<std::string, Pattern> assignment;  // input buffer -> pattern
  bool existsSat = false;
  bool forallHolds = false;
  /// True when the concrete-interpreter prescreen decided this candidate
  /// (∀ refuted or ∃ witnessed on a sampled trace) before any SMT call.
  bool prescreened = false;
  double seconds = 0.0;

  [[nodiscard]] std::string describe() const;
};

/// Why a candidate could not be conclusively evaluated (DESIGN.md §8).
enum class FailureKind {
  Unknown,          // solver returned Unknown after the full retry ladder —
                    // the candidate is INCONCLUSIVE, not rejected
  Exception,        // the worker threw while evaluating (solver crash, ...)
  WitnessMismatch,  // a solver model diverged from the concrete replay
  Canceled,         // query interrupted by firstOnly cancellation (never
                    // reported: canceled candidates lie past the cutoff)
};

const char* failureKindName(FailureKind kind);

/// Per-candidate fault-isolation record: a worker hitting a solver crash or
/// an Unknown verdict no longer aborts the whole run — the candidate is
/// recorded here and the search continues. Records are keyed by the
/// candidate's enumeration index, so the failure report is identical under
/// any thread count.
struct CandidateFailure {
  std::size_t index = 0;
  std::map<std::string, Pattern> assignment;
  FailureKind kind = FailureKind::Unknown;
  /// Which evaluation phase failed: "exists", "forall", or "setup".
  std::string stage;
  std::string detail;

  [[nodiscard]] std::string describe() const;
};

struct SynthesisResult {
  std::vector<Candidate> solutions;
  /// Candidates that could not be conclusively evaluated, in enumeration
  /// order. Unknown entries are inconclusive — NOT "not a solution".
  std::vector<CandidateFailure> failures;
  int candidatesChecked = 0;
  /// Conclusively evaluated candidates (solutions included).
  int solvedCount = 0;
  /// Inconclusive candidates (FailureKind::Unknown).
  int unknownCount = 0;
  /// Broken candidates (FailureKind::Exception / WitnessMismatch).
  int failedCount = 0;
  /// Candidates rejected by the concrete-interpreter prescreen (a sampled
  /// conforming trace violated the query) — a subset of solvedCount that
  /// never reached the solver.
  int prescreenRejected = 0;
  /// Exists-direction SMT queries skipped because a sampled trace already
  /// witnessed satisfiability.
  int prescreenWitnessed = 0;
  /// Candidates rejected straight from the in-run negative cache (a
  /// structurally identical earlier candidate was already prescreen-
  /// rejected) — a subset of prescreenRejected.
  int prescreenCacheHits = 0;
  double totalSeconds = 0.0;
  /// Encoding-optimizer accounting from the earliest (by enumeration
  /// order) conclusively evaluated candidate's ∃ query — representative of
  /// the per-candidate encoding size, since candidates share the same
  /// structural constraints and differ only in the workload delta. Absent
  /// when the optimizer is disabled.
  std::optional<opt::OptStats> opt;

  /// One-line run report: solutions / solved / unknown / failed counts.
  [[nodiscard]] std::string summary() const;
};

class Synthesizer {
 public:
  Synthesizer(core::Network network, core::AnalysisOptions options)
      : network_(std::move(network)), options_(options) {}

  /// Enumerates the grammar over all external inputs, checking each
  /// candidate with the Z3 backend.
  SynthesisResult run(const core::Query& query, const SynthesisOptions& opts);

 private:
  core::Network network_;
  core::AnalysisOptions options_;
};

}  // namespace buffy::synth
