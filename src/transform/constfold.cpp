#include <algorithm>
#include <vector>

#include "ir/term.hpp"  // euclideanDiv / euclideanMod
#include "transform/transforms.hpp"

namespace buffy::transform {

using namespace lang;

namespace {

/// Folds expressions in place: a node whose operands are literals becomes
/// a literal node under its own handle (kind swap, zero allocation).
/// Short-circuit identities return the surviving child handle, which the
/// caller writes back into the parent edge.
class Folder {
 public:
  explicit Folder(AstArena& arena) : arena_(arena) {}

  bool isIntLit(ExprId id, std::int64_t& out) const {
    const ExprNode& e = arena_.expr(id);
    if (e.kind == ExprKind::IntLit) {
      out = e.intLit.value;
      return true;
    }
    return false;
  }

  bool isBoolLit(ExprId id, bool& out) const {
    const ExprNode& e = arena_.expr(id);
    if (e.kind == ExprKind::BoolLit) {
      out = e.boolLit.value;
      return true;
    }
    return false;
  }

  void setIntLit(ExprId id, std::int64_t v) {
    ExprNode& e = arena_.expr(id);
    e.kind = ExprKind::IntLit;
    e.intLit.value = v;
  }

  void setBoolLit(ExprId id, bool v) {
    ExprNode& e = arena_.expr(id);
    e.kind = ExprKind::BoolLit;
    e.boolLit.value = v;
  }

  ExprId foldBinary(ExprId id) {
    auto e = arena_.expr(id).binary;
    e.lhs = foldExpr(e.lhs);
    e.rhs = foldExpr(e.rhs);
    arena_.expr(id).binary = e;
    std::int64_t li = 0;
    std::int64_t ri = 0;
    bool lb = false;
    bool rb = false;
    if (isIntLit(e.lhs, li) && isIntLit(e.rhs, ri)) {
      switch (e.op) {
        // Fold arithmetic only when the exact result fits in int64 (program
        // integers are mathematical; a wrapped fold would change semantics —
        // and raw `li + ri` overflow is UB besides). Unfoldable operands
        // stay symbolic and the solver computes them exactly.
        case BinaryOp::Add:
          if (const auto v = ir::foldAdd(li, ri)) setIntLit(id, *v);
          return id;
        case BinaryOp::Sub:
          if (const auto v = ir::foldSub(li, ri)) setIntLit(id, *v);
          return id;
        case BinaryOp::Mul:
          if (const auto v = ir::foldMul(li, ri)) setIntLit(id, *v);
          return id;
        case BinaryOp::Div:
          if (li != INT64_MIN || ri != -1) {
            setIntLit(id, ir::euclideanDiv(li, ri));
          }
          return id;
        case BinaryOp::Mod:
          setIntLit(id, ir::euclideanMod(li, ri));
          return id;
        case BinaryOp::Eq: setBoolLit(id, li == ri); return id;
        case BinaryOp::Ne: setBoolLit(id, li != ri); return id;
        case BinaryOp::Lt: setBoolLit(id, li < ri); return id;
        case BinaryOp::Le: setBoolLit(id, li <= ri); return id;
        case BinaryOp::Gt: setBoolLit(id, li > ri); return id;
        case BinaryOp::Ge: setBoolLit(id, li >= ri); return id;
        default: return id;
      }
    }
    if (isBoolLit(e.lhs, lb) && isBoolLit(e.rhs, rb)) {
      switch (e.op) {
        case BinaryOp::And: setBoolLit(id, lb && rb); return id;
        case BinaryOp::Or: setBoolLit(id, lb || rb); return id;
        case BinaryOp::Eq: setBoolLit(id, lb == rb); return id;
        case BinaryOp::Ne: setBoolLit(id, lb != rb); return id;
        default: return id;
      }
    }
    // Short-circuit identities with one literal side.
    if (e.op == BinaryOp::And) {
      if (isBoolLit(e.lhs, lb)) {
        if (lb) return e.rhs;
        setBoolLit(id, false);
        return id;
      }
      if (isBoolLit(e.rhs, rb)) {
        if (rb) return e.lhs;
        // false on the right is kept: dropping the left side could drop its
        // evaluation order only, which is side-effect free anyway, but keep
        // the conservative form for readability of emitted code.
        return id;
      }
    }
    if (e.op == BinaryOp::Or) {
      if (isBoolLit(e.lhs, lb)) {
        if (lb) {
          setBoolLit(id, true);
          return id;
        }
        return e.rhs;
      }
    }
    return id;
  }

  ExprId foldExpr(ExprId id) {
    switch (arena_.expr(id).kind) {
      case ExprKind::Binary:
        return foldBinary(id);
      case ExprKind::Unary: {
        auto e = arena_.expr(id).unary;
        e.operand = foldExpr(e.operand);
        arena_.expr(id).unary = e;
        std::int64_t i = 0;
        bool b = false;
        if (e.op == UnaryOp::Neg && isIntLit(e.operand, i)) {
          if (const auto v = ir::foldNeg(i)) setIntLit(id, *v);
        } else if (e.op == UnaryOp::Not && isBoolLit(e.operand, b)) {
          setBoolLit(id, !b);
        }
        return id;
      }
      case ExprKind::Index: {
        const ExprId index = foldExpr(arena_.expr(id).index.index);
        arena_.expr(id).index.index = index;
        return id;
      }
      case ExprKind::Backlog: {
        const ExprId buffer = foldExpr(arena_.expr(id).backlog.buffer);
        arena_.expr(id).backlog.buffer = buffer;
        return id;
      }
      case ExprKind::Filter: {
        auto e = arena_.expr(id).filter;
        e.base = foldExpr(e.base);
        e.value = foldExpr(e.value);
        arena_.expr(id).filter = e;
        return id;
      }
      case ExprKind::ListHas: {
        const ExprId value = foldExpr(arena_.expr(id).listOp.value);
        arena_.expr(id).listOp.value = value;
        return id;
      }
      case ExprKind::Call: {
        const ExprSpan args = arena_.expr(id).call.args;
        for (std::uint32_t i = 0; i < args.count; ++i) {
          arena_.spanSet(args, i, foldExpr(arena_.spanAt(args, i)));
        }
        // Fold fully-literal min/max.
        const std::string& callee = arena_.str(arena_.expr(id).call.callee);
        if ((callee == "min" || callee == "max") && args.count != 0) {
          std::int64_t acc = 0;
          if (!isIntLit(arena_.spanAt(args, 0), acc)) return id;
          bool allLit = true;
          for (std::uint32_t i = 1; i < args.count; ++i) {
            std::int64_t v = 0;
            if (!isIntLit(arena_.spanAt(args, i), v)) {
              allLit = false;
              break;
            }
            acc = callee == "min" ? std::min(acc, v) : std::max(acc, v);
          }
          if (allLit) setIntLit(id, acc);
        }
        return id;
      }
      default:
        return id;
    }
  }

  void foldStmt(StmtId id, std::vector<StmtId>& out) {
    switch (arena_.stmt(id).kind) {
      case StmtKind::Block:
        foldBlock(id);
        break;
      case StmtKind::Decl: {
        auto s = arena_.stmt(id).decl;
        if (s.init.valid()) {
          s.init = foldExpr(s.init);
          arena_.stmt(id).decl = s;
        }
        break;
      }
      case StmtKind::Assign: {
        auto s = arena_.stmt(id).assign;
        if (s.index.valid()) s.index = foldExpr(s.index);
        s.value = foldExpr(s.value);
        arena_.stmt(id).assign = s;
        break;
      }
      case StmtKind::If: {
        auto s = arena_.stmt(id).ifs;
        s.cond = foldExpr(s.cond);
        arena_.stmt(id).ifs = s;
        foldBlock(s.thenBlock);
        if (s.elseBlock.valid()) foldBlock(s.elseBlock);
        bool c = false;
        if (isBoolLit(s.cond, c)) {
          // Replace the if with the (block of the) taken branch.
          if (c) {
            out.push_back(s.thenBlock);
          } else if (s.elseBlock.valid()) {
            out.push_back(s.elseBlock);
          }
          return;  // the if node itself is dropped
        }
        break;
      }
      case StmtKind::For: {
        auto s = arena_.stmt(id).fors;
        s.lo = foldExpr(s.lo);
        s.hi = foldExpr(s.hi);
        arena_.stmt(id).fors = s;
        foldBlock(s.body);
        break;
      }
      case StmtKind::Move: {
        auto s = arena_.stmt(id).move;
        s.src = foldExpr(s.src);
        s.dst = foldExpr(s.dst);
        s.amount = foldExpr(s.amount);
        arena_.stmt(id).move = s;
        break;
      }
      case StmtKind::ListPush: {
        const ExprId value = foldExpr(arena_.stmt(id).listPush.value);
        arena_.stmt(id).listPush.value = value;
        break;
      }
      case StmtKind::Assert:
      case StmtKind::Assume: {
        const ExprId cond = foldExpr(arena_.stmt(id).guard.cond);
        arena_.stmt(id).guard.cond = cond;
        break;
      }
      case StmtKind::Return: {
        auto s = arena_.stmt(id).ret;
        if (s.value.valid()) {
          s.value = foldExpr(s.value);
          arena_.stmt(id).ret = s;
        }
        break;
      }
      case StmtKind::ExprStmt: {
        const ExprId expr = foldExpr(arena_.stmt(id).exprStmt.expr);
        arena_.stmt(id).exprStmt.expr = expr;
        break;
      }
      case StmtKind::PopFront:
        break;
    }
    out.push_back(id);
  }

  void foldBlock(StmtId block) {
    const StmtSpan span = arena_.stmt(block).block.stmts;
    std::vector<StmtId> out;
    out.reserve(span.count);
    for (std::uint32_t i = 0; i < span.count; ++i) {
      foldStmt(arena_.spanAt(span, i), out);
    }
    arena_.stmt(block).block.stmts = arena_.makeStmtSpan(out);
  }

 private:
  AstArena& arena_;
};

}  // namespace

void foldConstants(Ast& ast) {
  Folder folder(ast.arena);
  for (auto& fn : ast.program.functions) folder.foldBlock(fn.body);
  folder.foldBlock(ast.program.body);
}

}  // namespace buffy::transform
