#include "ir/term.hpp"  // euclideanDiv / euclideanMod
#include "transform/transforms.hpp"

namespace buffy::transform {

using namespace lang;

namespace {

bool isIntLit(const Expr& e, std::int64_t& out) {
  if (e.exprKind == ExprKind::IntLit) {
    out = static_cast<const IntLitExpr&>(e).value;
    return true;
  }
  return false;
}

bool isBoolLit(const Expr& e, bool& out) {
  if (e.exprKind == ExprKind::BoolLit) {
    out = static_cast<const BoolLitExpr&>(e).value;
    return true;
  }
  return false;
}

void foldExpr(ExprPtr& expr);

void foldBinary(ExprPtr& expr) {
  auto& e = static_cast<BinaryExpr&>(*expr);
  foldExpr(e.lhs);
  foldExpr(e.rhs);
  std::int64_t li = 0;
  std::int64_t ri = 0;
  bool lb = false;
  bool rb = false;
  const SourceLoc loc = e.loc;
  if (isIntLit(*e.lhs, li) && isIntLit(*e.rhs, ri)) {
    switch (e.op) {
      // Fold arithmetic only when the exact result fits in int64 (program
      // integers are mathematical; a wrapped fold would change semantics —
      // and raw `li + ri` overflow is UB besides). Unfoldable operands stay
      // symbolic and the solver computes them exactly.
      case BinaryOp::Add:
        if (const auto v = ir::foldAdd(li, ri)) expr = makeIntLit(*v, loc);
        return;
      case BinaryOp::Sub:
        if (const auto v = ir::foldSub(li, ri)) expr = makeIntLit(*v, loc);
        return;
      case BinaryOp::Mul:
        if (const auto v = ir::foldMul(li, ri)) expr = makeIntLit(*v, loc);
        return;
      case BinaryOp::Div:
        if (li != INT64_MIN || ri != -1) {
          expr = makeIntLit(ir::euclideanDiv(li, ri), loc);
        }
        return;
      case BinaryOp::Mod:
        expr = makeIntLit(ir::euclideanMod(li, ri), loc);
        return;
      case BinaryOp::Eq: expr = makeBoolLit(li == ri, loc); return;
      case BinaryOp::Ne: expr = makeBoolLit(li != ri, loc); return;
      case BinaryOp::Lt: expr = makeBoolLit(li < ri, loc); return;
      case BinaryOp::Le: expr = makeBoolLit(li <= ri, loc); return;
      case BinaryOp::Gt: expr = makeBoolLit(li > ri, loc); return;
      case BinaryOp::Ge: expr = makeBoolLit(li >= ri, loc); return;
      default: return;
    }
  }
  if (isBoolLit(*e.lhs, lb) && isBoolLit(*e.rhs, rb)) {
    switch (e.op) {
      case BinaryOp::And: expr = makeBoolLit(lb && rb, loc); return;
      case BinaryOp::Or: expr = makeBoolLit(lb || rb, loc); return;
      case BinaryOp::Eq: expr = makeBoolLit(lb == rb, loc); return;
      case BinaryOp::Ne: expr = makeBoolLit(lb != rb, loc); return;
      default: return;
    }
  }
  // Short-circuit identities with one literal side.
  if (e.op == BinaryOp::And) {
    if (isBoolLit(*e.lhs, lb)) {
      expr = lb ? std::move(e.rhs) : makeBoolLit(false, loc);
      return;
    }
    if (isBoolLit(*e.rhs, rb)) {
      if (rb) expr = std::move(e.lhs);
      // false on the right is kept: dropping the left side could drop its
      // evaluation order only, which is side-effect free anyway, but keep
      // the conservative form for readability of emitted code.
      return;
    }
  }
  if (e.op == BinaryOp::Or) {
    if (isBoolLit(*e.lhs, lb)) {
      expr = lb ? makeBoolLit(true, loc) : std::move(e.rhs);
      return;
    }
  }
}

void foldExpr(ExprPtr& expr) {
  switch (expr->exprKind) {
    case ExprKind::Binary:
      foldBinary(expr);
      break;
    case ExprKind::Unary: {
      auto& e = static_cast<UnaryExpr&>(*expr);
      foldExpr(e.operand);
      std::int64_t i = 0;
      bool b = false;
      if (e.op == UnaryOp::Neg && isIntLit(*e.operand, i)) {
        if (const auto v = ir::foldNeg(i)) expr = makeIntLit(*v, e.loc);
      } else if (e.op == UnaryOp::Not && isBoolLit(*e.operand, b)) {
        expr = makeBoolLit(!b, e.loc);
      }
      break;
    }
    case ExprKind::Index:
      foldExpr(static_cast<IndexExpr&>(*expr).index);
      break;
    case ExprKind::Backlog:
      foldExpr(static_cast<BacklogExpr&>(*expr).buffer);
      break;
    case ExprKind::Filter: {
      auto& e = static_cast<FilterExpr&>(*expr);
      foldExpr(e.base);
      foldExpr(e.value);
      break;
    }
    case ExprKind::ListHas:
      foldExpr(static_cast<ListHasExpr&>(*expr).value);
      break;
    case ExprKind::Call: {
      auto& e = static_cast<CallExpr&>(*expr);
      for (auto& arg : e.args) foldExpr(arg);
      // Fold fully-literal min/max.
      if ((e.callee == "min" || e.callee == "max") && !e.args.empty()) {
        std::int64_t acc = 0;
        if (!isIntLit(*e.args[0], acc)) break;
        bool allLit = true;
        for (std::size_t i = 1; i < e.args.size(); ++i) {
          std::int64_t v = 0;
          if (!isIntLit(*e.args[i], v)) {
            allLit = false;
            break;
          }
          acc = e.callee == "min" ? std::min(acc, v) : std::max(acc, v);
        }
        if (allLit) expr = makeIntLit(acc, e.loc);
      }
      break;
    }
    default:
      break;
  }
}

void foldBlock(BlockStmt& block);

void foldStmt(StmtPtr& stmt, std::vector<StmtPtr>& out) {
  switch (stmt->stmtKind) {
    case StmtKind::Block:
      foldBlock(static_cast<BlockStmt&>(*stmt));
      break;
    case StmtKind::Decl: {
      auto& s = static_cast<DeclStmt&>(*stmt);
      if (s.init) foldExpr(s.init);
      break;
    }
    case StmtKind::Assign: {
      auto& s = static_cast<AssignStmt&>(*stmt);
      if (s.index) foldExpr(s.index);
      foldExpr(s.value);
      break;
    }
    case StmtKind::If: {
      auto& s = static_cast<IfStmt&>(*stmt);
      foldExpr(s.cond);
      foldBlock(*s.thenBlock);
      if (s.elseBlock) foldBlock(*s.elseBlock);
      bool c = false;
      if (isBoolLit(*s.cond, c)) {
        // Replace the if with the (block of the) taken branch.
        if (c) {
          stmt = std::move(s.thenBlock);
        } else if (s.elseBlock) {
          stmt = std::move(s.elseBlock);
        } else {
          return;  // drop the statement entirely
        }
      }
      break;
    }
    case StmtKind::For: {
      auto& s = static_cast<ForStmt&>(*stmt);
      foldExpr(s.lo);
      foldExpr(s.hi);
      foldBlock(*s.body);
      break;
    }
    case StmtKind::Move: {
      auto& s = static_cast<MoveStmt&>(*stmt);
      foldExpr(s.src);
      foldExpr(s.dst);
      foldExpr(s.amount);
      break;
    }
    case StmtKind::ListPush:
      foldExpr(static_cast<ListPushStmt&>(*stmt).value);
      break;
    case StmtKind::Assert:
      foldExpr(static_cast<AssertStmt&>(*stmt).cond);
      break;
    case StmtKind::Assume:
      foldExpr(static_cast<AssumeStmt&>(*stmt).cond);
      break;
    case StmtKind::Return: {
      auto& s = static_cast<ReturnStmt&>(*stmt);
      if (s.value) foldExpr(s.value);
      break;
    }
    case StmtKind::ExprStmt:
      foldExpr(static_cast<ExprStmt&>(*stmt).expr);
      break;
    case StmtKind::PopFront:
      break;
  }
  out.push_back(std::move(stmt));
}

void foldBlock(BlockStmt& block) {
  std::vector<StmtPtr> out;
  out.reserve(block.stmts.size());
  for (auto& stmt : block.stmts) foldStmt(stmt, out);
  block.stmts = std::move(out);
}

}  // namespace

void foldConstants(Program& prog) {
  for (auto& fn : prog.functions) foldBlock(*fn.body);
  foldBlock(*prog.body);
}

}  // namespace buffy::transform
