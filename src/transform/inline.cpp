#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "support/error.hpp"
#include "transform/transforms.hpp"

namespace buffy::transform {

using namespace lang;

namespace {

/// Applies a name substitution over a statement tree: plain renames
/// (locals, list/buffer-array aliases) and expression substitutions
/// (scalar-buffer parameters bound to indexed buffers). Renames mutate
/// nodes in place; expression substitutions clone the replacement subtree
/// per use and return the new handle, which the caller writes back into
/// the child edge.
class Substituter {
 public:
  explicit Substituter(AstArena& arena) : arena_(arena) {}

  std::unordered_map<std::uint32_t, NameId> renames;
  std::unordered_map<std::uint32_t, ExprId> exprSubst;  // VarRef -> subtree

  void applyBlock(StmtId block) {
    const StmtSpan span = arena_.stmt(block).block.stmts;
    for (std::uint32_t i = 0; i < span.count; ++i) {
      applyStmt(arena_.spanAt(span, i));
    }
  }

 private:
  NameId mapName(NameId name) const {
    const auto it = renames.find(name.idx);
    return it != renames.end() ? it->second : name;
  }

  void applyStmt(StmtId id) {
    switch (arena_.stmt(id).kind) {
      case StmtKind::Block:
        applyBlock(id);
        break;
      case StmtKind::Decl: {
        auto s = arena_.stmt(id).decl;
        s.name = mapName(s.name);
        if (s.init.valid()) s.init = applyExpr(s.init);
        arena_.stmt(id).decl = s;
        break;
      }
      case StmtKind::Assign: {
        auto s = arena_.stmt(id).assign;
        s.target = mapName(s.target);
        if (s.index.valid()) s.index = applyExpr(s.index);
        s.value = applyExpr(s.value);
        arena_.stmt(id).assign = s;
        break;
      }
      case StmtKind::If: {
        auto s = arena_.stmt(id).ifs;
        s.cond = applyExpr(s.cond);
        arena_.stmt(id).ifs = s;
        applyBlock(s.thenBlock);
        if (s.elseBlock.valid()) applyBlock(s.elseBlock);
        break;
      }
      case StmtKind::For: {
        auto s = arena_.stmt(id).fors;
        s.lo = applyExpr(s.lo);
        s.hi = applyExpr(s.hi);
        s.var = mapName(s.var);
        arena_.stmt(id).fors = s;
        applyBlock(s.body);
        break;
      }
      case StmtKind::Move: {
        auto s = arena_.stmt(id).move;
        s.src = applyExpr(s.src);
        s.dst = applyExpr(s.dst);
        s.amount = applyExpr(s.amount);
        arena_.stmt(id).move = s;
        break;
      }
      case StmtKind::ListPush: {
        auto s = arena_.stmt(id).listPush;
        s.list = mapName(s.list);
        s.value = applyExpr(s.value);
        arena_.stmt(id).listPush = s;
        break;
      }
      case StmtKind::PopFront: {
        auto s = arena_.stmt(id).popFront;
        s.target = mapName(s.target);
        s.list = mapName(s.list);
        arena_.stmt(id).popFront = s;
        break;
      }
      case StmtKind::Assert:
      case StmtKind::Assume: {
        const ExprId cond = applyExpr(arena_.stmt(id).guard.cond);
        arena_.stmt(id).guard.cond = cond;
        break;
      }
      case StmtKind::Return: {
        auto s = arena_.stmt(id).ret;
        if (s.value.valid()) {
          s.value = applyExpr(s.value);
          arena_.stmt(id).ret = s;
        }
        break;
      }
      case StmtKind::ExprStmt: {
        const ExprId e = applyExpr(arena_.stmt(id).exprStmt.expr);
        arena_.stmt(id).exprStmt.expr = e;
        break;
      }
    }
  }

  ExprId applyExpr(ExprId id) {
    switch (arena_.expr(id).kind) {
      case ExprKind::VarRef: {
        const NameId name = arena_.expr(id).varRef.name;
        const auto substIt = exprSubst.find(name.idx);
        if (substIt != exprSubst.end()) {
          return arena_.cloneExpr(substIt->second);
        }
        arena_.expr(id).varRef.name = mapName(name);
        return id;
      }
      case ExprKind::Index: {
        auto e = arena_.expr(id).index;
        e.base = mapName(e.base);
        e.index = applyExpr(e.index);
        arena_.expr(id).index = e;
        return id;
      }
      case ExprKind::Binary: {
        auto e = arena_.expr(id).binary;
        e.lhs = applyExpr(e.lhs);
        e.rhs = applyExpr(e.rhs);
        arena_.expr(id).binary = e;
        return id;
      }
      case ExprKind::Unary: {
        const ExprId operand = applyExpr(arena_.expr(id).unary.operand);
        arena_.expr(id).unary.operand = operand;
        return id;
      }
      case ExprKind::Backlog: {
        const ExprId buffer = applyExpr(arena_.expr(id).backlog.buffer);
        arena_.expr(id).backlog.buffer = buffer;
        return id;
      }
      case ExprKind::Filter: {
        auto e = arena_.expr(id).filter;
        e.base = applyExpr(e.base);
        e.value = applyExpr(e.value);
        arena_.expr(id).filter = e;
        return id;
      }
      case ExprKind::ListHas: {
        auto e = arena_.expr(id).listOp;
        e.list = mapName(e.list);
        e.value = applyExpr(e.value);
        arena_.expr(id).listOp = e;
        return id;
      }
      case ExprKind::ListEmpty:
      case ExprKind::ListLen: {
        const NameId list = mapName(arena_.expr(id).listOp.list);
        arena_.expr(id).listOp.list = list;
        return id;
      }
      case ExprKind::Call: {
        const ExprSpan args = arena_.expr(id).call.args;
        for (std::uint32_t i = 0; i < args.count; ++i) {
          arena_.spanSet(args, i, applyExpr(arena_.spanAt(args, i)));
        }
        return id;
      }
      case ExprKind::IntLit:
      case ExprKind::BoolLit:
        return id;
    }
    return id;
  }

  AstArena& arena_;
};

/// Collects every local name declared in a block tree (for renaming).
void collectDecls(const AstArena& arena, StmtId block,
                  std::set<std::uint32_t>& names) {
  const StmtSpan span = arena.stmt(block).block.stmts;
  for (std::uint32_t i = 0; i < span.count; ++i) {
    const StmtId id = arena.spanAt(span, i);
    const StmtNode& stmt = arena.stmt(id);
    switch (stmt.kind) {
      case StmtKind::Decl:
        names.insert(stmt.decl.name.idx);
        break;
      case StmtKind::Block:
        collectDecls(arena, id, names);
        break;
      case StmtKind::If:
        collectDecls(arena, stmt.ifs.thenBlock, names);
        if (stmt.ifs.elseBlock.valid()) {
          collectDecls(arena, stmt.ifs.elseBlock, names);
        }
        break;
      case StmtKind::For:
        names.insert(stmt.fors.var.idx);
        collectDecls(arena, stmt.fors.body, names);
        break;
      default:
        break;
    }
  }
}

/// Total statements in a block tree (the unit maxInlinedStmts is
/// measured in).
std::size_t countStmts(const AstArena& arena, StmtId block) {
  const StmtSpan span = arena.stmt(block).block.stmts;
  std::size_t n = 0;
  for (std::uint32_t i = 0; i < span.count; ++i) {
    ++n;
    const StmtId id = arena.spanAt(span, i);
    const StmtNode& stmt = arena.stmt(id);
    switch (stmt.kind) {
      case StmtKind::Block:
        n += countStmts(arena, id);
        break;
      case StmtKind::If:
        n += countStmts(arena, stmt.ifs.thenBlock);
        if (stmt.ifs.elseBlock.valid()) {
          n += countStmts(arena, stmt.ifs.elseBlock);
        }
        break;
      case StmtKind::For:
        n += countStmts(arena, stmt.fors.body);
        break;
      default:
        break;
    }
  }
  return n;
}

class Inliner {
 public:
  Inliner(Ast& ast, const CompileBudget& budget)
      : arena_(ast.arena), budget_(budget) {
    for (const auto& fn : ast.program.functions) {
      functions_[arena_.intern(fn.name).idx] = &fn;
    }
  }

  void rewriteBlock(StmtId block) {
    const StmtSpan span = arena_.stmt(block).block.stmts;
    std::vector<StmtId> out;
    out.reserve(span.count);
    for (std::uint32_t i = 0; i < span.count; ++i) {
      const StmtId stmt = arena_.spanAt(span, i);
      std::vector<StmtId> prelude;
      const bool keep = rewriteStmt(stmt, prelude);
      for (const StmtId p : prelude) out.push_back(p);
      if (keep) out.push_back(stmt);
    }
    arena_.stmt(block).block.stmts = arena_.makeStmtSpan(out);
  }

 private:
  /// Rewrites expressions inside `stmt`, hoisting call expansions into
  /// `prelude`. Returns false when the statement itself should be dropped
  /// (a void-call ExprStmt fully expanded into the prelude).
  bool rewriteStmt(StmtId id, std::vector<StmtId>& prelude) {
    switch (arena_.stmt(id).kind) {
      case StmtKind::Block:
        rewriteBlock(id);
        return true;
      case StmtKind::Decl: {
        auto s = arena_.stmt(id).decl;
        if (s.init.valid()) {
          s.init = rewriteExpr(s.init, prelude);
          arena_.stmt(id).decl = s;
        }
        return true;
      }
      case StmtKind::Assign: {
        auto s = arena_.stmt(id).assign;
        if (s.index.valid()) s.index = rewriteExpr(s.index, prelude);
        s.value = rewriteExpr(s.value, prelude);
        arena_.stmt(id).assign = s;
        return true;
      }
      case StmtKind::If: {
        auto s = arena_.stmt(id).ifs;
        s.cond = rewriteExpr(s.cond, prelude);
        arena_.stmt(id).ifs = s;
        rewriteBlock(s.thenBlock);
        if (s.elseBlock.valid()) rewriteBlock(s.elseBlock);
        return true;
      }
      case StmtKind::For: {
        auto s = arena_.stmt(id).fors;
        s.lo = rewriteExpr(s.lo, prelude);
        s.hi = rewriteExpr(s.hi, prelude);
        arena_.stmt(id).fors = s;
        rewriteBlock(s.body);
        return true;
      }
      case StmtKind::Move: {
        auto s = arena_.stmt(id).move;
        s.src = rewriteExpr(s.src, prelude);
        s.dst = rewriteExpr(s.dst, prelude);
        s.amount = rewriteExpr(s.amount, prelude);
        arena_.stmt(id).move = s;
        return true;
      }
      case StmtKind::ListPush: {
        const ExprId value =
            rewriteExpr(arena_.stmt(id).listPush.value, prelude);
        arena_.stmt(id).listPush.value = value;
        return true;
      }
      case StmtKind::Assert:
      case StmtKind::Assume: {
        const ExprId cond = rewriteExpr(arena_.stmt(id).guard.cond, prelude);
        arena_.stmt(id).guard.cond = cond;
        return true;
      }
      case StmtKind::Return: {
        auto s = arena_.stmt(id).ret;
        if (s.value.valid()) {
          s.value = rewriteExpr(s.value, prelude);
          arena_.stmt(id).ret = s;
        }
        return true;
      }
      case StmtKind::ExprStmt: {
        const ExprId expr = arena_.stmt(id).exprStmt.expr;
        if (arena_.expr(expr).kind == ExprKind::Call &&
            functions_.count(arena_.expr(expr).call.callee.idx) != 0) {
          expandCall(expr, prelude, /*wantResult=*/false);
          return false;  // the whole statement became the prelude
        }
        const ExprId rewritten = rewriteExpr(expr, prelude);
        arena_.stmt(id).exprStmt.expr = rewritten;
        return true;
      }
      case StmtKind::PopFront:
        return true;
    }
    return true;
  }

  ExprId rewriteExpr(ExprId id, std::vector<StmtId>& prelude) {
    switch (arena_.expr(id).kind) {
      case ExprKind::Call: {
        const ExprSpan args = arena_.expr(id).call.args;
        for (std::uint32_t i = 0; i < args.count; ++i) {
          arena_.spanSet(args, i, rewriteExpr(arena_.spanAt(args, i), prelude));
        }
        if (functions_.count(arena_.expr(id).call.callee.idx) != 0) {
          return expandCall(id, prelude, /*wantResult=*/true);
        }
        return id;
      }
      case ExprKind::Index: {
        const ExprId index = rewriteExpr(arena_.expr(id).index.index, prelude);
        arena_.expr(id).index.index = index;
        return id;
      }
      case ExprKind::Binary: {
        auto e = arena_.expr(id).binary;
        e.lhs = rewriteExpr(e.lhs, prelude);
        e.rhs = rewriteExpr(e.rhs, prelude);
        arena_.expr(id).binary = e;
        return id;
      }
      case ExprKind::Unary: {
        const ExprId operand =
            rewriteExpr(arena_.expr(id).unary.operand, prelude);
        arena_.expr(id).unary.operand = operand;
        return id;
      }
      case ExprKind::Backlog: {
        const ExprId buffer =
            rewriteExpr(arena_.expr(id).backlog.buffer, prelude);
        arena_.expr(id).backlog.buffer = buffer;
        return id;
      }
      case ExprKind::Filter: {
        auto e = arena_.expr(id).filter;
        e.base = rewriteExpr(e.base, prelude);
        e.value = rewriteExpr(e.value, prelude);
        arena_.expr(id).filter = e;
        return id;
      }
      case ExprKind::ListHas: {
        const ExprId value = rewriteExpr(arena_.expr(id).listOp.value, prelude);
        arena_.expr(id).listOp.value = value;
        return id;
      }
      default:
        return id;
    }
  }

  /// Expands one call. Emits parameter bindings and the substituted body
  /// into `prelude`; returns the expression standing for the result
  /// (invalid when wantResult is false).
  ExprId expandCall(ExprId callId, std::vector<StmtId>& prelude,
                    bool wantResult) {
    const NameId callee = arena_.expr(callId).call.callee;
    const ExprSpan args = arena_.expr(callId).call.args;
    const SourceLoc callLoc = arena_.exprLoc(callId);
    const FuncDecl& fn = *functions_.at(callee.idx);
    if (active_.count(fn.name) != 0) {
      throw SemanticError("recursive call to '" + fn.name +
                              "' cannot be inlined",
                          callLoc);
    }
    if (args.count != fn.params.size()) {
      throw SemanticError("arity mismatch calling '" + fn.name + "'",
                          callLoc);
    }

    // Charge this expansion before materializing it: nested expansions
    // check again on every level, so call bombs (f calls g calls h ...,
    // each several times) stop at the threshold instead of after
    // exponential growth.
    emitted_ += countStmts(arena_, fn.body) + fn.params.size() + 2;
    checkBudget(emitted_, budget_.maxInlinedStmts, "inlined-stmts", callLoc);

    const std::string tag = "__" + fn.name + std::to_string(counter_++);
    Substituter subst(arena_);

    // Bind parameters.
    for (std::uint32_t i = 0; i < args.count; ++i) {
      const Param& param = fn.params[i];
      const ExprId arg = arena_.spanAt(args, i);
      const NameId paramName = arena_.intern(param.name);
      if (param.type.isScalar()) {
        StmtNode decl;
        decl.kind = StmtKind::Decl;
        decl.decl = {Storage::Local, param.type,
                     arena_.intern(tag + "_" + param.name), arg, NameId{}};
        prelude.push_back(arena_.addStmt(decl, callLoc));
        subst.renames[paramName.idx] = decl.decl.name;
      } else if (param.type.kind == TypeKind::Buffer) {
        // Alias: substitute uses of the parameter by the argument
        // expression (a VarRef or an Index into a buffer array).
        subst.exprSubst[paramName.idx] = arg;
      } else {
        // list / buffer array: must be a plain name.
        if (arena_.expr(arg).kind != ExprKind::VarRef) {
          throw SemanticError("argument for '" + param.name +
                                  "' must be a simple name",
                              callLoc);
        }
        subst.renames[paramName.idx] = arena_.expr(arg).varRef.name;
      }
    }

    // Rename all body-declared locals to fresh names.
    std::set<std::uint32_t> bodyNames;
    collectDecls(arena_, fn.body, bodyNames);
    for (const std::uint32_t name : bodyNames) {
      subst.renames[name] =
          arena_.intern(tag + "_" + arena_.str(NameId{name}));
    }

    // Result variable.
    NameId retName{};
    if (fn.returnType.kind != TypeKind::Void) {
      retName = arena_.intern(tag + "_ret");
      StmtNode decl;
      decl.kind = StmtKind::Decl;
      decl.decl = {Storage::Local, fn.returnType, retName, ExprId{}, NameId{}};
      prelude.push_back(arena_.addStmt(decl, callLoc));
    }

    // Clone + substitute the body; turn the trailing return into an
    // assignment (or drop it for void functions).
    const StmtId body = arena_.cloneStmt(fn.body);
    subst.applyBlock(body);
    const StmtSpan bodySpan = arena_.stmt(body).block.stmts;
    const StmtId last = bodySpan.count != 0
                            ? arena_.spanAt(bodySpan, bodySpan.count - 1)
                            : StmtId{};
    if (last.valid() && arena_.stmt(last).kind == StmtKind::Return) {
      if (fn.returnType.kind != TypeKind::Void) {
        const ExprId retValue = arena_.stmt(last).ret.value;
        StmtNode assign;
        assign.kind = StmtKind::Assign;
        assign.assign = {retName, ExprId{}, retValue};
        arena_.spanSet(bodySpan, bodySpan.count - 1,
                       arena_.addStmt(assign, arena_.stmtLoc(last)));
      } else {
        arena_.stmt(body).block.stmts.count -= 1;
      }
    } else if (fn.returnType.kind != TypeKind::Void) {
      throw SemanticError("function '" + fn.name +
                              "' must end with a return statement",
                          fn.loc);
    }

    // Recursively expand nested calls inside the inlined body.
    active_.insert(fn.name);
    rewriteBlock(body);
    active_.erase(fn.name);

    prelude.push_back(body);
    if (!wantResult) return ExprId{};
    return arena_.mkVarRef(retName, callLoc);
  }

  AstArena& arena_;
  std::unordered_map<std::uint32_t, const FuncDecl*> functions_;
  std::set<std::string> active_;
  const CompileBudget& budget_;
  std::size_t emitted_ = 0;  // statements produced by inlining so far
  std::uint64_t counter_ = 0;
};

}  // namespace

void inlineFunctions(Ast& ast, const CompileBudget& budget) {
  if (ast.program.functions.empty()) return;
  Inliner inliner(ast, budget);
  inliner.rewriteBlock(ast.program.body);
  ast.program.functions.clear();
}

}  // namespace buffy::transform
