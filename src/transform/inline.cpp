#include <map>
#include <set>

#include "support/error.hpp"
#include "transform/transforms.hpp"

namespace buffy::transform {

using namespace lang;

namespace {

/// Applies a name substitution over a statement tree: plain renames
/// (locals, list/buffer-array aliases) and expression substitutions
/// (scalar-buffer parameters bound to indexed buffers).
class Substituter {
 public:
  std::map<std::string, std::string> renames;
  std::map<std::string, const Expr*> exprSubst;  // VarRef name -> replacement

  void applyBlock(BlockStmt& block) {
    for (auto& stmt : block.stmts) applyStmt(*stmt);
  }

 private:
  std::string mapName(const std::string& name) const {
    const auto it = renames.find(name);
    return it != renames.end() ? it->second : name;
  }

  void applyStmt(Stmt& stmt) {
    switch (stmt.stmtKind) {
      case StmtKind::Block:
        applyBlock(static_cast<BlockStmt&>(stmt));
        break;
      case StmtKind::Decl: {
        auto& s = static_cast<DeclStmt&>(stmt);
        s.name = mapName(s.name);
        if (s.init) applyExpr(s.init);
        break;
      }
      case StmtKind::Assign: {
        auto& s = static_cast<AssignStmt&>(stmt);
        s.target = mapName(s.target);
        if (s.index) applyExpr(s.index);
        applyExpr(s.value);
        break;
      }
      case StmtKind::If: {
        auto& s = static_cast<IfStmt&>(stmt);
        applyExpr(s.cond);
        applyBlock(*s.thenBlock);
        if (s.elseBlock) applyBlock(*s.elseBlock);
        break;
      }
      case StmtKind::For: {
        auto& s = static_cast<ForStmt&>(stmt);
        applyExpr(s.lo);
        applyExpr(s.hi);
        s.var = mapName(s.var);
        applyBlock(*s.body);
        break;
      }
      case StmtKind::Move: {
        auto& s = static_cast<MoveStmt&>(stmt);
        applyExpr(s.src);
        applyExpr(s.dst);
        applyExpr(s.amount);
        break;
      }
      case StmtKind::ListPush: {
        auto& s = static_cast<ListPushStmt&>(stmt);
        s.list = mapName(s.list);
        applyExpr(s.value);
        break;
      }
      case StmtKind::PopFront: {
        auto& s = static_cast<PopFrontStmt&>(stmt);
        s.target = mapName(s.target);
        s.list = mapName(s.list);
        break;
      }
      case StmtKind::Assert:
        applyExpr(static_cast<AssertStmt&>(stmt).cond);
        break;
      case StmtKind::Assume:
        applyExpr(static_cast<AssumeStmt&>(stmt).cond);
        break;
      case StmtKind::Return: {
        auto& s = static_cast<ReturnStmt&>(stmt);
        if (s.value) applyExpr(s.value);
        break;
      }
      case StmtKind::ExprStmt:
        applyExpr(static_cast<ExprStmt&>(stmt).expr);
        break;
    }
  }

  void applyExpr(ExprPtr& expr) {
    switch (expr->exprKind) {
      case ExprKind::VarRef: {
        auto& e = static_cast<VarRefExpr&>(*expr);
        const auto substIt = exprSubst.find(e.name);
        if (substIt != exprSubst.end()) {
          expr = substIt->second->clone();
          return;
        }
        e.name = mapName(e.name);
        break;
      }
      case ExprKind::Index: {
        auto& e = static_cast<IndexExpr&>(*expr);
        e.base = mapName(e.base);
        applyExpr(e.index);
        break;
      }
      case ExprKind::Binary: {
        auto& e = static_cast<BinaryExpr&>(*expr);
        applyExpr(e.lhs);
        applyExpr(e.rhs);
        break;
      }
      case ExprKind::Unary:
        applyExpr(static_cast<UnaryExpr&>(*expr).operand);
        break;
      case ExprKind::Backlog:
        applyExpr(static_cast<BacklogExpr&>(*expr).buffer);
        break;
      case ExprKind::Filter: {
        auto& e = static_cast<FilterExpr&>(*expr);
        applyExpr(e.base);
        applyExpr(e.value);
        break;
      }
      case ExprKind::ListHas: {
        auto& e = static_cast<ListHasExpr&>(*expr);
        e.list = mapName(e.list);
        applyExpr(e.value);
        break;
      }
      case ExprKind::ListEmpty: {
        auto& e = static_cast<ListEmptyExpr&>(*expr);
        e.list = mapName(e.list);
        break;
      }
      case ExprKind::ListLen: {
        auto& e = static_cast<ListLenExpr&>(*expr);
        e.list = mapName(e.list);
        break;
      }
      case ExprKind::Call:
        for (auto& arg : static_cast<CallExpr&>(*expr).args) applyExpr(arg);
        break;
      case ExprKind::IntLit:
      case ExprKind::BoolLit:
        break;
    }
  }
};

/// Collects every local name declared in a block tree (for renaming).
void collectDecls(const BlockStmt& block, std::set<std::string>& names) {
  for (const auto& stmt : block.stmts) {
    switch (stmt->stmtKind) {
      case StmtKind::Decl:
        names.insert(static_cast<const DeclStmt&>(*stmt).name);
        break;
      case StmtKind::Block:
        collectDecls(static_cast<const BlockStmt&>(*stmt), names);
        break;
      case StmtKind::If: {
        const auto& s = static_cast<const IfStmt&>(*stmt);
        collectDecls(*s.thenBlock, names);
        if (s.elseBlock) collectDecls(*s.elseBlock, names);
        break;
      }
      case StmtKind::For: {
        const auto& s = static_cast<const ForStmt&>(*stmt);
        names.insert(s.var);
        collectDecls(*s.body, names);
        break;
      }
      default:
        break;
    }
  }
}

/// Total statements in a block tree (the unit maxInlinedStmts is
/// measured in).
std::size_t countStmts(const BlockStmt& block) {
  std::size_t n = 0;
  for (const auto& stmt : block.stmts) {
    ++n;
    switch (stmt->stmtKind) {
      case StmtKind::Block:
        n += countStmts(static_cast<const BlockStmt&>(*stmt));
        break;
      case StmtKind::If: {
        const auto& s = static_cast<const IfStmt&>(*stmt);
        n += countStmts(*s.thenBlock);
        if (s.elseBlock) n += countStmts(*s.elseBlock);
        break;
      }
      case StmtKind::For:
        n += countStmts(*static_cast<const ForStmt&>(*stmt).body);
        break;
      default:
        break;
    }
  }
  return n;
}

class Inliner {
 public:
  Inliner(const Program& prog, const CompileBudget& budget)
      : budget_(budget) {
    for (const auto& fn : prog.functions) functions_[fn.name] = &fn;
  }

  void rewriteBlock(BlockStmt& block) {
    std::vector<StmtPtr> out;
    out.reserve(block.stmts.size());
    for (auto& stmt : block.stmts) {
      std::vector<StmtPtr> prelude;
      const bool keep = rewriteStmt(*stmt, prelude);
      for (auto& p : prelude) out.push_back(std::move(p));
      if (keep) out.push_back(std::move(stmt));
    }
    block.stmts = std::move(out);
  }

 private:
  /// Rewrites expressions inside `stmt`, hoisting call expansions into
  /// `prelude`. Returns false when the statement itself should be dropped
  /// (a void-call ExprStmt fully expanded into the prelude).
  bool rewriteStmt(Stmt& stmt, std::vector<StmtPtr>& prelude) {
    switch (stmt.stmtKind) {
      case StmtKind::Block:
        rewriteBlock(static_cast<BlockStmt&>(stmt));
        return true;
      case StmtKind::Decl: {
        auto& s = static_cast<DeclStmt&>(stmt);
        if (s.init) rewriteExpr(s.init, prelude);
        return true;
      }
      case StmtKind::Assign: {
        auto& s = static_cast<AssignStmt&>(stmt);
        if (s.index) rewriteExpr(s.index, prelude);
        rewriteExpr(s.value, prelude);
        return true;
      }
      case StmtKind::If: {
        auto& s = static_cast<IfStmt&>(stmt);
        rewriteExpr(s.cond, prelude);
        rewriteBlock(*s.thenBlock);
        if (s.elseBlock) rewriteBlock(*s.elseBlock);
        return true;
      }
      case StmtKind::For: {
        auto& s = static_cast<ForStmt&>(stmt);
        rewriteExpr(s.lo, prelude);
        rewriteExpr(s.hi, prelude);
        rewriteBlock(*s.body);
        return true;
      }
      case StmtKind::Move: {
        auto& s = static_cast<MoveStmt&>(stmt);
        rewriteExpr(s.src, prelude);
        rewriteExpr(s.dst, prelude);
        rewriteExpr(s.amount, prelude);
        return true;
      }
      case StmtKind::ListPush:
        rewriteExpr(static_cast<ListPushStmt&>(stmt).value, prelude);
        return true;
      case StmtKind::Assert:
        rewriteExpr(static_cast<AssertStmt&>(stmt).cond, prelude);
        return true;
      case StmtKind::Assume:
        rewriteExpr(static_cast<AssumeStmt&>(stmt).cond, prelude);
        return true;
      case StmtKind::Return: {
        auto& s = static_cast<ReturnStmt&>(stmt);
        if (s.value) rewriteExpr(s.value, prelude);
        return true;
      }
      case StmtKind::ExprStmt: {
        auto& s = static_cast<ExprStmt&>(stmt);
        if (s.expr->exprKind == ExprKind::Call) {
          auto& call = static_cast<CallExpr&>(*s.expr);
          if (functions_.count(call.callee) != 0) {
            expandCall(call, prelude, /*wantResult=*/false);
            return false;  // the whole statement became the prelude
          }
        }
        rewriteExpr(s.expr, prelude);
        return true;
      }
      case StmtKind::PopFront:
        return true;
    }
    return true;
  }

  void rewriteExpr(ExprPtr& expr, std::vector<StmtPtr>& prelude) {
    switch (expr->exprKind) {
      case ExprKind::Call: {
        auto& call = static_cast<CallExpr&>(*expr);
        for (auto& arg : call.args) rewriteExpr(arg, prelude);
        if (functions_.count(call.callee) != 0) {
          expr = expandCall(call, prelude, /*wantResult=*/true);
        }
        break;
      }
      case ExprKind::Index:
        rewriteExpr(static_cast<IndexExpr&>(*expr).index, prelude);
        break;
      case ExprKind::Binary: {
        auto& e = static_cast<BinaryExpr&>(*expr);
        rewriteExpr(e.lhs, prelude);
        rewriteExpr(e.rhs, prelude);
        break;
      }
      case ExprKind::Unary:
        rewriteExpr(static_cast<UnaryExpr&>(*expr).operand, prelude);
        break;
      case ExprKind::Backlog:
        rewriteExpr(static_cast<BacklogExpr&>(*expr).buffer, prelude);
        break;
      case ExprKind::Filter: {
        auto& e = static_cast<FilterExpr&>(*expr);
        rewriteExpr(e.base, prelude);
        rewriteExpr(e.value, prelude);
        break;
      }
      case ExprKind::ListHas:
        rewriteExpr(static_cast<ListHasExpr&>(*expr).value, prelude);
        break;
      default:
        break;
    }
  }

  /// Expands one call. Emits parameter bindings and the substituted body
  /// into `prelude`; returns the expression standing for the result (null
  /// when wantResult is false).
  ExprPtr expandCall(CallExpr& call, std::vector<StmtPtr>& prelude,
                     bool wantResult) {
    const FuncDecl& fn = *functions_.at(call.callee);
    if (active_.count(fn.name) != 0) {
      throw SemanticError("recursive call to '" + fn.name +
                              "' cannot be inlined",
                          call.loc);
    }
    if (call.args.size() != fn.params.size()) {
      throw SemanticError("arity mismatch calling '" + fn.name + "'",
                          call.loc);
    }

    // Charge this expansion before materializing it: nested expansions
    // check again on every level, so call bombs (f calls g calls h ...,
    // each several times) stop at the threshold instead of after
    // exponential growth.
    emitted_ += countStmts(*fn.body) + fn.params.size() + 2;
    checkBudget(emitted_, budget_.maxInlinedStmts, "inlined-stmts", call.loc);

    const std::string tag = "__" + fn.name + std::to_string(counter_++);
    Substituter subst;

    // Bind parameters.
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      const Param& param = fn.params[i];
      ExprPtr& arg = call.args[i];
      if (param.type.isScalar()) {
        const std::string fresh = tag + "_" + param.name;
        auto decl = std::make_unique<DeclStmt>(Storage::Local, param.type,
                                               fresh, std::move(arg));
        decl->loc = call.loc;
        prelude.push_back(std::move(decl));
        subst.renames[param.name] = fresh;
      } else if (param.type.kind == TypeKind::Buffer) {
        // Alias: substitute uses of the parameter by the argument
        // expression (a VarRef or an Index into a buffer array).
        subst.exprSubst[param.name] = arg.get();
      } else {
        // list / buffer array: must be a plain name.
        if (arg->exprKind != ExprKind::VarRef) {
          throw SemanticError("argument for '" + param.name +
                                  "' must be a simple name",
                              call.loc);
        }
        subst.renames[param.name] =
            static_cast<const VarRefExpr&>(*arg).name;
      }
    }

    // Rename all body-declared locals to fresh names.
    std::set<std::string> bodyNames;
    collectDecls(*fn.body, bodyNames);
    for (const auto& name : bodyNames) {
      subst.renames[name] = tag + "_" + name;
    }

    // Result variable.
    std::string retName;
    if (fn.returnType.kind != TypeKind::Void) {
      retName = tag + "_ret";
      auto decl = std::make_unique<DeclStmt>(Storage::Local, fn.returnType,
                                             retName, nullptr);
      decl->loc = call.loc;
      prelude.push_back(std::move(decl));
    }

    // Clone + substitute the body; turn the trailing return into an
    // assignment (or drop it for void functions).
    auto body = std::unique_ptr<BlockStmt>(
        static_cast<BlockStmt*>(fn.body->clone().release()));
    subst.applyBlock(*body);
    if (!body->stmts.empty() &&
        body->stmts.back()->stmtKind == StmtKind::Return) {
      auto ret = std::unique_ptr<ReturnStmt>(
          static_cast<ReturnStmt*>(body->stmts.back().release()));
      body->stmts.pop_back();
      if (fn.returnType.kind != TypeKind::Void) {
        auto assign = std::make_unique<AssignStmt>(retName, nullptr,
                                                   std::move(ret->value));
        assign->loc = ret->loc;
        body->stmts.push_back(std::move(assign));
      }
    } else if (fn.returnType.kind != TypeKind::Void) {
      throw SemanticError("function '" + fn.name +
                              "' must end with a return statement",
                          fn.loc);
    }

    // Recursively expand nested calls inside the inlined body.
    active_.insert(fn.name);
    rewriteBlock(*body);
    active_.erase(fn.name);

    prelude.push_back(std::move(body));
    if (!wantResult) return nullptr;
    return makeVarRef(retName, call.loc);
  }

  std::map<std::string, const FuncDecl*> functions_;
  std::set<std::string> active_;
  const CompileBudget& budget_;
  std::size_t emitted_ = 0;  // statements produced by inlining so far
  std::uint64_t counter_ = 0;
};

}  // namespace

void inlineFunctions(Program& prog, const CompileBudget& budget) {
  if (prog.functions.empty()) return;
  Inliner inliner(prog, budget);
  inliner.rewriteBlock(*prog.body);
  prog.functions.clear();
}

}  // namespace buffy::transform
