// AST -> AST program transformations: function inlining, bounded-loop
// unrolling, and constant folding — the "standard program transformations
// such as loop unrolling, function inlining, and SSA" the paper's §4 relies
// on. (The SSA step itself is performed by the symbolic evaluator's
// store-merging; see eval/evaluator.hpp.)
//
// All passes mutate the program in place and may be composed in any order;
// the canonical pipeline is elaborate -> typecheck -> inlineFunctions ->
// foldConstants [-> unrollLoops].
#pragma once

#include "lang/ast.hpp"

namespace buffy::transform {

/// Replaces every call to a `def` function with its body (parameters bound
/// to fresh locals, body locals renamed, the trailing `return` turned into
/// an assignment to a fresh result variable). Afterwards the program
/// contains no user-function calls and `Program::functions` is cleared.
/// Throws SemanticError on (mutual) recursion.
void inlineFunctions(lang::Program& prog);

/// Replaces every `for (v in lo..hi)` whose bounds are integer literals
/// (guaranteed after elaborate + foldConstants) with hi-lo copies of the
/// body, each wrapped in a block that binds `v`. Throws SemanticError if a
/// loop bound is not a literal (paper §7: bounded loops only).
void unrollLoops(lang::Program& prog);

/// Bottom-up constant folding over all expressions, plus pruning of
/// if-statements with literal conditions. Division/modulo fold with the
/// SMT-LIB Euclidean convention (matching the IR and backends).
void foldConstants(lang::Program& prog);

}  // namespace buffy::transform
