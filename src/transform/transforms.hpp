// AST -> AST program transformations: function inlining, bounded-loop
// unrolling, and constant folding — the "standard program transformations
// such as loop unrolling, function inlining, and SSA" the paper's §4 relies
// on. (The SSA step itself is performed by the symbolic evaluator's
// store-merging; see eval/evaluator.hpp.)
//
// All passes mutate the AST in place and may be composed in any order; the
// canonical pipeline is elaborate -> typecheck -> inlineFunctions ->
// foldConstants [-> unrollLoops]. On the arena representation the passes
// splice statement spans instead of deep-copying subtrees: constant folding
// rewrites nodes in place (kind swap under the same handle), inlining
// allocates one substituted copy of the callee body per call site, and
// unrolling re-references the same body handles from every iteration block
// (sound because nothing downstream mutates statement nodes — the
// re-checker writes identical types and the evaluator is read-only).
#pragma once

#include "lang/ast.hpp"
#include "support/budget.hpp"

namespace buffy::transform {

/// Replaces every call to a `def` function with its body (parameters bound
/// to fresh locals, body locals renamed, the trailing `return` turned into
/// an assignment to a fresh result variable). Afterwards the program
/// contains no user-function calls and `Program::functions` is cleared.
/// Throws SemanticError on (mutual) recursion, and BudgetExceeded once the
/// pass has emitted more than budget.maxInlinedStmts statements (nested
/// expansion bombs fail at the threshold, not after materializing).
void inlineFunctions(lang::Ast& ast,
                     const CompileBudget& budget = CompileBudget::defaults());

/// Replaces every `for (v in lo..hi)` whose bounds are integer literals
/// (guaranteed after elaborate + foldConstants) with hi-lo copies of the
/// body, each wrapped in a block that binds `v`. Throws SemanticError if a
/// loop bound is not a literal (paper §7: bounded loops only), and
/// BudgetExceeded when the unrolled output would exceed
/// budget.maxUnrolledStmts statements — checked with an overflow-safe
/// iterations×body-size estimate BEFORE materializing, so unroll bombs
/// (`for (i in 0..1000000000)`) fail in microseconds.
void unrollLoops(lang::Ast& ast,
                 const CompileBudget& budget = CompileBudget::defaults());

/// Bottom-up constant folding over all expressions, plus pruning of
/// if-statements with literal conditions. Division/modulo fold with the
/// SMT-LIB Euclidean convention (matching the IR and backends).
void foldConstants(lang::Ast& ast);

}  // namespace buffy::transform
