#include <limits>
#include <vector>

#include "support/error.hpp"
#include "transform/transforms.hpp"

namespace buffy::transform {

using namespace lang;

namespace {

std::int64_t literalOrThrow(const AstArena& arena, ExprId id,
                            const char* what) {
  const ExprNode& expr = arena.expr(id);
  if (expr.kind != ExprKind::IntLit) {
    throw SemanticError(
        std::string(what) +
            " is not a compile-time constant; Buffy only allows bounded "
            "loops (run elaborate/foldConstants first)",
        arena.exprLoc(id));
  }
  return expr.intLit.value;
}

/// Total statements in a block tree, the unit maxUnrolledStmts is
/// measured in.
std::size_t countStmts(const AstArena& arena, StmtId block) {
  const StmtSpan span = arena.stmt(block).block.stmts;
  std::size_t n = 0;
  for (std::uint32_t i = 0; i < span.count; ++i) {
    ++n;
    const StmtId id = arena.spanAt(span, i);
    const StmtNode& stmt = arena.stmt(id);
    switch (stmt.kind) {
      case StmtKind::Block:
        n += countStmts(arena, id);
        break;
      case StmtKind::If:
        n += countStmts(arena, stmt.ifs.thenBlock);
        if (stmt.ifs.elseBlock.valid()) {
          n += countStmts(arena, stmt.ifs.elseBlock);
        }
        break;
      case StmtKind::For:
        n += countStmts(arena, stmt.fors.body);
        break;
      default:
        break;
    }
  }
  return n;
}

class Unroller {
 public:
  Unroller(AstArena& arena, const CompileBudget& budget)
      : arena_(arena), budget_(budget) {}

  void unrollBlock(StmtId block) {
    const StmtSpan span = arena_.stmt(block).block.stmts;
    std::vector<StmtId> out;
    out.reserve(span.count);
    for (std::uint32_t idx = 0; idx < span.count; ++idx) {
      const StmtId stmtId = arena_.spanAt(span, idx);
      switch (arena_.stmt(stmtId).kind) {
        case StmtKind::For: {
          const auto s = arena_.stmt(stmtId).fors;
          const SourceLoc loc = arena_.stmtLoc(stmtId);
          const std::int64_t lo =
              literalOrThrow(arena_, s.lo, "loop lower bound");
          const std::int64_t hi =
              literalOrThrow(arena_, s.hi, "loop upper bound");
          unrollBlock(s.body);
          // Fast-fail BEFORE materializing anything: an unroll bomb must
          // cost an overflow-safe multiply, not gigabytes of AST. +2 per
          // iteration for the wrapper block and the loop-variable binding.
          if (hi > lo) {
            const auto iters = static_cast<std::uint64_t>(hi - lo);
            const std::uint64_t perIter = countStmts(arena_, s.body) + 2;
            const std::uint64_t limit = budget_.maxUnrolledStmts;
            if (limit != 0 &&
                (iters > limit / perIter ||
                 emitted_ + iters * perIter > limit)) {
              throw BudgetExceeded("unrolled-stmts", limit, loc);
            }
            emitted_ += iters * perIter;
          }
          // Each iteration becomes a block binding the loop variable, so
          // iteration-local declarations stay properly scoped. The body
          // statements are NOT cloned: every iteration block's span
          // references the same handles (only the loop-variable binding is
          // fresh). Sound because no later pass mutates statement nodes —
          // the post-transform re-check writes identical types into the
          // side array and the evaluator walks read-only.
          const StmtSpan bodySpan = arena_.stmt(s.body).block.stmts;
          std::vector<StmtId> iterStmts;
          iterStmts.reserve(1 + bodySpan.count);
          for (std::int64_t i = lo; i < hi; ++i) {
            iterStmts.clear();
            StmtNode bind;
            bind.kind = StmtKind::Decl;
            bind.decl = {Storage::Local, Type::intTy(), s.var,
                         arena_.mkIntLit(i, loc), NameId{}};
            iterStmts.push_back(arena_.addStmt(bind, loc));
            for (std::uint32_t j = 0; j < bodySpan.count; ++j) {
              iterStmts.push_back(arena_.spanAt(bodySpan, j));
            }
            StmtNode iter;
            iter.kind = StmtKind::Block;
            iter.block = {arena_.makeStmtSpan(iterStmts)};
            out.push_back(arena_.addStmt(iter, loc));
          }
          break;
        }
        case StmtKind::Block:
          unrollBlock(stmtId);
          out.push_back(stmtId);
          break;
        case StmtKind::If: {
          const auto s = arena_.stmt(stmtId).ifs;
          unrollBlock(s.thenBlock);
          if (s.elseBlock.valid()) unrollBlock(s.elseBlock);
          out.push_back(stmtId);
          break;
        }
        default:
          out.push_back(stmtId);
          break;
      }
    }
    arena_.stmt(block).block.stmts = arena_.makeStmtSpan(out);
  }

 private:
  AstArena& arena_;
  const CompileBudget& budget_;
  std::uint64_t emitted_ = 0;  // statements produced by unrolling so far
};

}  // namespace

void unrollLoops(Ast& ast, const CompileBudget& budget) {
  Unroller unroller(ast.arena, budget);
  for (auto& fn : ast.program.functions) unroller.unrollBlock(fn.body);
  unroller.unrollBlock(ast.program.body);
}

}  // namespace buffy::transform
