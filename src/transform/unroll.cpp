#include <limits>

#include "support/error.hpp"
#include "transform/transforms.hpp"

namespace buffy::transform {

using namespace lang;

namespace {

std::int64_t literalOrThrow(const Expr& expr, const char* what) {
  if (expr.exprKind != ExprKind::IntLit) {
    throw SemanticError(
        std::string(what) +
            " is not a compile-time constant; Buffy only allows bounded "
            "loops (run elaborate/foldConstants first)",
        expr.loc);
  }
  return static_cast<const IntLitExpr&>(expr).value;
}

/// Total statements in a block tree, the unit maxUnrolledStmts is
/// measured in.
std::size_t countStmts(const BlockStmt& block) {
  std::size_t n = 0;
  for (const auto& stmt : block.stmts) {
    ++n;
    switch (stmt->stmtKind) {
      case StmtKind::Block:
        n += countStmts(static_cast<const BlockStmt&>(*stmt));
        break;
      case StmtKind::If: {
        const auto& s = static_cast<const IfStmt&>(*stmt);
        n += countStmts(*s.thenBlock);
        if (s.elseBlock) n += countStmts(*s.elseBlock);
        break;
      }
      case StmtKind::For:
        n += countStmts(*static_cast<const ForStmt&>(*stmt).body);
        break;
      default:
        break;
    }
  }
  return n;
}

class Unroller {
 public:
  explicit Unroller(const CompileBudget& budget) : budget_(budget) {}

  void unrollBlock(BlockStmt& block) {
    std::vector<StmtPtr> out;
    out.reserve(block.stmts.size());
    for (auto& stmt : block.stmts) {
      switch (stmt->stmtKind) {
        case StmtKind::For: {
          auto& s = static_cast<ForStmt&>(*stmt);
          const std::int64_t lo = literalOrThrow(*s.lo, "loop lower bound");
          const std::int64_t hi = literalOrThrow(*s.hi, "loop upper bound");
          unrollBlock(*s.body);
          // Fast-fail BEFORE cloning anything: an unroll bomb must cost an
          // overflow-safe multiply, not gigabytes of AST. +2 per iteration
          // for the wrapper block and the loop-variable binding.
          if (hi > lo) {
            const auto iters = static_cast<std::uint64_t>(hi - lo);
            const std::uint64_t perIter = countStmts(*s.body) + 2;
            const std::uint64_t limit = budget_.maxUnrolledStmts;
            if (limit != 0 &&
                (iters > limit / perIter ||
                 emitted_ + iters * perIter > limit)) {
              throw BudgetExceeded("unrolled-stmts", limit, s.loc);
            }
            emitted_ += iters * perIter;
          }
          for (std::int64_t i = lo; i < hi; ++i) {
            // Each iteration becomes a block binding the loop variable, so
            // iteration-local declarations stay properly scoped.
            auto iter = std::make_unique<BlockStmt>();
            iter->loc = s.loc;
            auto bind = std::make_unique<DeclStmt>(
                Storage::Local, Type::intTy(), s.var, makeIntLit(i, s.loc));
            bind->loc = s.loc;
            iter->stmts.push_back(std::move(bind));
            auto bodyCopy = std::unique_ptr<BlockStmt>(
                static_cast<BlockStmt*>(s.body->clone().release()));
            for (auto& inner : bodyCopy->stmts) {
              iter->stmts.push_back(std::move(inner));
            }
            out.push_back(std::move(iter));
          }
          break;
        }
        case StmtKind::Block:
          unrollBlock(static_cast<BlockStmt&>(*stmt));
          out.push_back(std::move(stmt));
          break;
        case StmtKind::If: {
          auto& s = static_cast<IfStmt&>(*stmt);
          unrollBlock(*s.thenBlock);
          if (s.elseBlock) unrollBlock(*s.elseBlock);
          out.push_back(std::move(stmt));
          break;
        }
        default:
          out.push_back(std::move(stmt));
          break;
      }
    }
    block.stmts = std::move(out);
  }

 private:
  const CompileBudget& budget_;
  std::uint64_t emitted_ = 0;  // statements produced by unrolling so far
};

}  // namespace

void unrollLoops(Program& prog, const CompileBudget& budget) {
  Unroller unroller(budget);
  for (auto& fn : prog.functions) unroller.unrollBlock(*fn.body);
  unroller.unrollBlock(*prog.body);
}

}  // namespace buffy::transform
