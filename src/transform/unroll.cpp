#include "support/error.hpp"
#include "transform/transforms.hpp"

namespace buffy::transform {

using namespace lang;

namespace {

std::int64_t literalOrThrow(const Expr& expr, const char* what) {
  if (expr.exprKind != ExprKind::IntLit) {
    throw SemanticError(
        std::string(what) +
            " is not a compile-time constant; Buffy only allows bounded "
            "loops (run elaborate/foldConstants first)",
        expr.loc);
  }
  return static_cast<const IntLitExpr&>(expr).value;
}

void unrollBlock(BlockStmt& block) {
  std::vector<StmtPtr> out;
  out.reserve(block.stmts.size());
  for (auto& stmt : block.stmts) {
    switch (stmt->stmtKind) {
      case StmtKind::For: {
        auto& s = static_cast<ForStmt&>(*stmt);
        const std::int64_t lo = literalOrThrow(*s.lo, "loop lower bound");
        const std::int64_t hi = literalOrThrow(*s.hi, "loop upper bound");
        unrollBlock(*s.body);
        for (std::int64_t i = lo; i < hi; ++i) {
          // Each iteration becomes a block binding the loop variable, so
          // iteration-local declarations stay properly scoped.
          auto iter = std::make_unique<BlockStmt>();
          iter->loc = s.loc;
          auto bind = std::make_unique<DeclStmt>(
              Storage::Local, Type::intTy(), s.var, makeIntLit(i, s.loc));
          bind->loc = s.loc;
          iter->stmts.push_back(std::move(bind));
          auto bodyCopy = std::unique_ptr<BlockStmt>(
              static_cast<BlockStmt*>(s.body->clone().release()));
          for (auto& inner : bodyCopy->stmts) {
            iter->stmts.push_back(std::move(inner));
          }
          out.push_back(std::move(iter));
        }
        break;
      }
      case StmtKind::Block:
        unrollBlock(static_cast<BlockStmt&>(*stmt));
        out.push_back(std::move(stmt));
        break;
      case StmtKind::If: {
        auto& s = static_cast<IfStmt&>(*stmt);
        unrollBlock(*s.thenBlock);
        if (s.elseBlock) unrollBlock(*s.elseBlock);
        out.push_back(std::move(stmt));
        break;
      }
      default:
        out.push_back(std::move(stmt));
        break;
    }
  }
  block.stmts = std::move(out);
}

}  // namespace

void unrollLoops(Program& prog) {
  for (auto& fn : prog.functions) unrollBlock(*fn.body);
  unrollBlock(*prog.body);
}

}  // namespace buffy::transform
