// Integration tests: the full parse -> transform -> encode -> solve
// pipeline on the paper's models.
#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "support/error.hpp"

namespace buffy::core {
namespace {

using buffy::testing::schedulerNet;
using buffy::testing::starvationWorkload;

AnalysisOptions fastOpts(int horizon,
                         buffers::ModelKind model = buffers::ModelKind::List) {
  AnalysisOptions opts;
  opts.horizon = horizon;
  opts.model = model;
  return opts;
}

// ---------------------------------------------------------------------------
// §6.1: the FQ scheduler case study
// ---------------------------------------------------------------------------

TEST(FqCaseStudy, BuggySchedulerStarves) {
  Analysis analysis(schedulerNet(models::kFairQueueBuggy, "fq", 2),
                    fastOpts(5));
  analysis.setWorkload(starvationWorkload("fq", 5));
  const auto result = analysis.check(Query::expr(
      "fq.cdeq.0[T-1] >= T-1 & fq.cdeq.1[T-1] <= 1 & "
      "fq.ibs.1.backlog[T-1] > 0"));
  ASSERT_EQ(result.verdict, Verdict::Satisfiable);
  ASSERT_TRUE(result.trace.has_value());
  EXPECT_GE(result.trace->at("fq.cdeq.0", 4), 4);
}

TEST(FqCaseStudy, FixedSchedulerDoesNotStarve) {
  Analysis analysis(schedulerNet(models::kFairQueueFixed, "fq", 2),
                    fastOpts(5));
  analysis.setWorkload(starvationWorkload("fq", 5));
  const auto result = analysis.check(Query::expr(
      "fq.cdeq.0[T-1] >= T-1 & fq.cdeq.1[T-1] <= 1 & "
      "fq.ibs.1.backlog[T-1] > 0"));
  EXPECT_EQ(result.verdict, Verdict::Unsatisfiable);
}

TEST(FqCaseStudy, FixedSchedulerFairnessVerifies) {
  // Under the starvation workload, the fixed scheduler guarantees queue 1
  // at least 2 services over 5 steps.
  Analysis analysis(schedulerNet(models::kFairQueueFixed, "fq", 2),
                    fastOpts(5));
  analysis.setWorkload(starvationWorkload("fq", 5));
  const auto result = analysis.verify(Query::expr("fq.cdeq.1[T-1] >= 2"));
  EXPECT_EQ(result.verdict, Verdict::Verified);
}

TEST(FqCaseStudy, ViolatedVerifyProducesCounterexample) {
  Analysis analysis(schedulerNet(models::kFairQueueBuggy, "fq", 2),
                    fastOpts(5));
  analysis.setWorkload(starvationWorkload("fq", 5));
  const auto result = analysis.verify(Query::expr("fq.cdeq.1[T-1] >= 2"));
  ASSERT_EQ(result.verdict, Verdict::Violated);
  ASSERT_TRUE(result.trace.has_value());
  EXPECT_LT(result.trace->at("fq.cdeq.1", 4), 2);
}

// ---------------------------------------------------------------------------
// Scheduler guarantees
// ---------------------------------------------------------------------------

TEST(RoundRobin, WorkConservingAndFair) {
  Analysis analysis(schedulerNet(models::kRoundRobin, "rr", 2), fastOpts(6));
  Workload both;
  both.add(Workload::perStepCount("rr.ibs.0", 1, 2))
      .add(Workload::perStepCount("rr.ibs.1", 1, 2));
  analysis.setWorkload(both);
  // With both queues always backlogged, neither queue can take more than
  // half the service (rounded up).
  EXPECT_EQ(analysis.verify(Query::expr("rr.cdeq.0[T-1] <= T/2 + 1")).verdict,
            Verdict::Verified);
  EXPECT_EQ(analysis.verify(Query::expr("rr.cdeq.1[T-1] <= T/2 + 1")).verdict,
            Verdict::Verified);
  // And the link is fully used: one dequeue every step.
  EXPECT_EQ(analysis
                .verify(Query::expr(
                    "rr.cdeq.0[T-1] + rr.cdeq.1[T-1] == T"))
                .verdict,
            Verdict::Verified);
}

TEST(StrictPriority, HighPriorityMonopolizes) {
  Analysis analysis(schedulerNet(models::kStrictPriority, "sp", 2),
                    fastOpts(5));
  Workload both;
  both.add(Workload::perStepCount("sp.ibs.0", 1, 1))
      .add(Workload::perStepCount("sp.ibs.1", 1, 1));
  analysis.setWorkload(both);
  // Starvation of queue 1 is guaranteed (not just possible).
  EXPECT_EQ(analysis.verify(Query::expr("sp.cdeq.1[T-1] == 0")).verdict,
            Verdict::Verified);
  EXPECT_EQ(analysis.verify(Query::expr("sp.cdeq.0[T-1] == T")).verdict,
            Verdict::Verified);
}

TEST(StrictPriority, LowPriorityServedWhenHighIdle) {
  Analysis analysis(schedulerNet(models::kStrictPriority, "sp", 2),
                    fastOpts(4));
  Workload w;
  w.add(Workload::perStepCount("sp.ibs.0", 0, 0))
      .add(Workload::perStepCount("sp.ibs.1", 1, 1));
  analysis.setWorkload(w);
  EXPECT_EQ(analysis.verify(Query::expr("sp.cdeq.1[T-1] == T")).verdict,
            Verdict::Verified);
}

// ---------------------------------------------------------------------------
// Packet conservation (a global invariant of the buffer semantics)
// ---------------------------------------------------------------------------

TEST(Conservation, ArrivalsEqualServicePlusBacklogPlusDrops) {
  // Kept at T=3: the monolithic-unrolling proof cost grows exponentially
  // in T (the Figure 6 effect; see bench/fig6_verification_time).
  Analysis analysis(schedulerNet(models::kRoundRobin, "rr", 2,
                                 /*capacity=*/3),
                    fastOpts(3));
  const Query conservation = Query::custom(
      "conservation", [](const SeriesView& view, ir::TermArena& arena) {
        ir::TermRef arrived = arena.intConst(0);
        ir::TermRef out = arena.intConst(0);
        for (int t = 0; t < view.horizon(); ++t) {
          for (const char* buf : {"rr.ibs.0", "rr.ibs.1"}) {
            arrived = arena.add(
                arrived, view.find(std::string(buf) + ".arrived")
                             ->at(static_cast<std::size_t>(t)));
          }
          out = arena.add(out, view.find("rr.ob.out")->at(
                                   static_cast<std::size_t>(t)));
        }
        const int last = view.horizon() - 1;
        ir::TermRef backlog = arena.intConst(0);
        ir::TermRef dropped = arena.intConst(0);
        for (const char* buf : {"rr.ibs.0", "rr.ibs.1"}) {
          backlog = arena.add(backlog,
                              view.find(std::string(buf) + ".backlog")
                                  ->at(static_cast<std::size_t>(last)));
          dropped = arena.add(dropped,
                              view.find(std::string(buf) + ".dropped")
                                  ->at(static_cast<std::size_t>(last)));
        }
        return arena.eq(arrived,
                        arena.add(out, arena.add(backlog, dropped)));
      });
  EXPECT_EQ(analysis.verify(conservation).verdict, Verdict::Verified);
}

// ---------------------------------------------------------------------------
// Buffer model precision (paper §3)
// ---------------------------------------------------------------------------

TEST(Precision, CounterModelAgreesOnCountQueries) {
  // The FQ starvation query only involves counts, so the counter model
  // must reach the same verdicts as the list model.
  for (const auto model :
       {buffers::ModelKind::List, buffers::ModelKind::Counter}) {
    Analysis analysis(schedulerNet(models::kFairQueueBuggy, "fq", 2),
                      fastOpts(5, model));
    analysis.setWorkload(starvationWorkload("fq", 5));
    const auto result = analysis.check(
        Query::expr("fq.cdeq.0[T-1] >= T-1 & fq.cdeq.1[T-1] <= 1"));
    EXPECT_EQ(result.verdict, Verdict::Satisfiable)
        << (model == buffers::ModelKind::List ? "list" : "counter");
  }
}

TEST(Precision, ListModelSupportsContentFilters) {
  // A classifier program: packets with val==1 go to the second output.
  const char* source = R"(
cls(buffer inb, buffer hi, buffer lo) {
  global monitor int mhi;
  mhi = mhi + backlog-p(inb |> val == 1);
  move-p(inb, lo, backlog-p(inb));
})";
  ProgramSpec spec;
  spec.instance = "cls";
  spec.source = source;
  spec.buffers = {
      {.param = "inb", .role = BufferSpec::Role::Input, .capacity = 4,
       .schema = {{"val"}}, .maxArrivalsPerStep = 2},
      {.param = "hi", .role = BufferSpec::Role::Output, .capacity = 8},
      {.param = "lo", .role = BufferSpec::Role::Output, .capacity = 8},
  };
  Network net;
  net.add(spec);
  Analysis analysis(net, fastOpts(3));
  Workload w;
  w.add(Workload::fieldRange("cls.inb", "val", 0, 1));
  analysis.setWorkload(w);
  const auto result =
      analysis.check(Query::expr("cls.mhi[T-1] >= 2"));
  EXPECT_EQ(result.verdict, Verdict::Satisfiable);
}

// ---------------------------------------------------------------------------
// SMT-LIB path equivalence
// ---------------------------------------------------------------------------

TEST(Backends, SmtLibPathAgreesWithNative) {
  Analysis analysis(schedulerNet(models::kFairQueueBuggy, "fq", 2),
                    fastOpts(4));
  analysis.setWorkload(starvationWorkload("fq", 4));
  const Query query = Query::expr("fq.cdeq.0[T-1] >= T-1");
  const auto native = analysis.check(query);
  const auto viaText = analysis.checkViaSmtLib(query);
  EXPECT_EQ(native.verdict, viaText.verdict);
  const std::string text = analysis.toSmtLib(query, false);
  EXPECT_NE(text.find("(check-sat)"), std::string::npos);
  EXPECT_NE(text.find("declare-const"), std::string::npos);
}

// ---------------------------------------------------------------------------
// API surface
// ---------------------------------------------------------------------------

TEST(AnalysisApi, InputAndMonitorNames) {
  Analysis analysis(schedulerNet(models::kRoundRobin, "rr", 3), fastOpts(2));
  const auto inputs = analysis.inputBufferNames();
  ASSERT_EQ(inputs.size(), 3u);
  EXPECT_EQ(inputs[2], "rr.ibs.2");
  const auto monitors = analysis.monitorNames();
  ASSERT_EQ(monitors.size(), 1u);
  EXPECT_EQ(monitors[0], "rr.cdeq");
}

TEST(AnalysisApi, WorkloadLockedAfterEncoding) {
  Analysis analysis(schedulerNet(models::kRoundRobin, "rr", 2), fastOpts(2));
  analysis.check(Query::always());
  EXPECT_THROW(analysis.setWorkload(Workload{}), AnalysisError);
}

TEST(AnalysisApi, EncodingStatsAvailable) {
  Analysis analysis(schedulerNet(models::kRoundRobin, "rr", 2), fastOpts(3));
  const Encoding& enc = analysis.encoding();
  EXPECT_EQ(enc.horizon, 3);
  EXPECT_FALSE(enc.series.empty());
  EXPECT_FALSE(enc.assumptions.empty());
  EXPECT_GT(enc.arena.size(), 100u);
}

TEST(AnalysisApi, BadHorizonRejected) {
  EXPECT_THROW(
      Analysis(schedulerNet(models::kRoundRobin, "rr", 2), fastOpts(0)),
      AnalysisError);
}

TEST(AnalysisApi, InProgramAssertsCheckedByVerify) {
  ProgramSpec spec;
  spec.instance = "p";
  spec.source = R"(
p(buffer a, buffer b) {
  global monitor int steps;
  steps = steps + 1;
  assert(steps <= 2);
})";
  spec.buffers = {
      {.param = "a", .role = BufferSpec::Role::Input, .capacity = 2},
      {.param = "b", .role = BufferSpec::Role::Output, .capacity = 2},
  };
  Network net;
  net.add(spec);
  {
    Analysis ok(net, fastOpts(2));
    EXPECT_EQ(ok.verify(Query::always()).verdict, Verdict::Verified);
  }
  {
    Analysis bad(net, fastOpts(4));
    EXPECT_EQ(bad.verify(Query::always()).verdict, Verdict::Violated);
  }
}

TEST(AnalysisApi, SymbolicInitialState) {
  // With empty initial queues and zero arrivals, nothing can leave; with a
  // havoced initial state, service from pre-existing backlog is possible.
  Workload silent;
  silent.add(Workload::perStepCount("rr.ibs.0", 0, 0));
  silent.add(Workload::perStepCount("rr.ibs.1", 0, 0));
  const Query served = Query::expr("rr.ob.out[0] == 1");
  {
    Analysis empty(schedulerNet(models::kRoundRobin, "rr", 2), fastOpts(2));
    empty.setWorkload(silent);
    EXPECT_EQ(empty.check(served).verdict, Verdict::Unsatisfiable);
  }
  for (const auto model :
       {buffers::ModelKind::List, buffers::ModelKind::Counter}) {
    AnalysisOptions opts = fastOpts(2, model);
    opts.symbolicInitialState = true;
    Analysis havoced(schedulerNet(models::kRoundRobin, "rr", 2), opts);
    havoced.setWorkload(silent);
    EXPECT_EQ(havoced.check(served).verdict, Verdict::Satisfiable);
    // But backlog can never exceed capacity, even initially.
    Analysis bounded(schedulerNet(models::kRoundRobin, "rr", 2), opts);
    bounded.setWorkload(silent);
    EXPECT_EQ(bounded.verify(Query::expr("rr.ibs.0.backlog[0] <= 6")).verdict,
              Verdict::Verified);
  }
}

TEST(AnalysisApi, SymbolicInitialStateSimulationRejected) {
  AnalysisOptions opts = fastOpts(2);
  opts.symbolicInitialState = true;
  Analysis analysis(schedulerNet(models::kRoundRobin, "rr", 2), opts);
  EXPECT_THROW(analysis.simulate({}), AnalysisError);
}

// Property sweep: RR fairness bound holds across queue counts and horizons.
class RrFairness : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RrFairness, BoundHolds) {
  const auto [n, horizon] = GetParam();
  Analysis analysis(schedulerNet(models::kRoundRobin, "rr", n),
                    fastOpts(horizon));
  Workload all;
  for (int q = 0; q < n; ++q) {
    all.add(Workload::perStepCount("rr.ibs." + std::to_string(q), 1, 2));
  }
  analysis.setWorkload(all);
  // Everyone backlogged: queue 0 gets at most ceil(T/N) services.
  const std::string bound =
      "rr.cdeq.0[T-1] <= " + std::to_string((horizon + n - 1) / n);
  EXPECT_EQ(analysis.verify(Query::expr(bound)).verdict, Verdict::Verified)
      << "N=" << n << " T=" << horizon;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RrFairness,
                         ::testing::Values(std::pair{2, 4}, std::pair{2, 6},
                                           std::pair{3, 4}, std::pair{3, 6}));

}  // namespace
}  // namespace buffy::core
