// CompileBudget regression suite (ISSUE: compiler hardening, satellite c).
//
// Adversarial inputs — 10k-deep nesting, 10k-term expressions, unroll and
// inline bombs — must either succeed (when the relevant walk is iterative)
// or fail with a structured BudgetExceeded, never a stack overflow or
// multi-second hang. Runs under BUFFY_SANITIZE in the sanitize preset.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "eval/store.hpp"

#include "eval/evaluator.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "lang/typecheck.hpp"
#include "support/budget.hpp"
#include "support/diagnostics.hpp"
#include "support/error.hpp"
#include "transform/transforms.hpp"

using namespace buffy;

namespace {

std::string repeat(const std::string& piece, std::size_t n) {
  std::string out;
  out.reserve(piece.size() * n);
  for (std::size_t i = 0; i < n; ++i) out += piece;
  return out;
}

/// `p() { global int x; if (x > 0) { if (x > 0) { ... x = 1; ... } } }`
std::string deepNesting(std::size_t depth) {
  return "p() {\n  global int x;\n" + repeat("if (x >= 0) {", depth) +
         "x = 1;" + repeat("}", depth) + "\n}\n";
}

/// `p() { global int x; x = 1 + 1 + ... + 1; }`
std::string wideExpression(std::size_t terms) {
  return "p() {\n  global int x;\n  x = 1" + repeat(" + 1", terms) + ";\n}\n";
}

BudgetExceeded captureBudgetError(const std::string& source,
                                  const CompileBudget& budget) {
  try {
    (void)lang::parse(source, budget);
  } catch (const BudgetExceeded& e) {
    return e;
  }
  ADD_FAILURE() << "expected BudgetExceeded";
  return BudgetExceeded("none", 0, SourceLoc{});
}

}  // namespace

TEST(Budget, DeepNestingHitsDepthLimitNotTheStack) {
  // 10k nested ifs: far beyond the default limit; the parser must reject
  // it with a structured error before its recursion gets anywhere near
  // stack exhaustion (ASan would catch an overflow here).
  const BudgetExceeded e =
      captureBudgetError(deepNesting(10000), CompileBudget::defaults());
  EXPECT_EQ(e.resource(), "nesting-depth");
  EXPECT_EQ(e.limit(), CompileBudget::defaults().maxNestingDepth);
}

TEST(Budget, DeepNestingWithinLimitParsesAndPrints) {
  CompileBudget budget = CompileBudget::defaults();
  const std::size_t depth = budget.maxNestingDepth - 8;
  const lang::Ast prog = lang::parse(deepNesting(depth), budget);
  // Printer and recursive AST walks must survive the accepted depth.
  EXPECT_FALSE(lang::printProgram(prog).empty());
}

TEST(Budget, DeepNestingRecoveryModeAlsoBounded) {
  DiagnosticEngine diag;
  EXPECT_THROW((void)lang::parseRecover(deepNesting(10000), diag),
               BudgetExceeded);
}

TEST(Budget, WideExpressionHitsTermLimit) {
  const BudgetExceeded e =
      captureBudgetError(wideExpression(10000), CompileBudget::defaults());
  EXPECT_EQ(e.resource(), "expr-terms");
}

TEST(Budget, WideExpressionWithinLimitEvaluates) {
  // A chain just under the default cap must make it through the recursive
  // walks (elaborate + typecheck) without stack trouble — this is the
  // test that caught the original 4096 default overflowing typecheck
  // under ASan, which is why the default is now 1024.
  const std::size_t terms = CompileBudget::defaults().maxExprTerms - 16;
  lang::Ast prog = lang::parse(wideExpression(terms));
  lang::CompileOptions copts;
  lang::elaborate(prog, copts);
  DiagnosticEngine diag;
  const auto result = lang::typecheck(prog, copts, diag);
  EXPECT_TRUE(result.ok) << diag.renderAll();
}

TEST(Budget, AstNodeCapBoundsTotalProgramSize) {
  CompileBudget budget = CompileBudget::defaults();
  budget.maxAstNodes = 100;
  const std::string source =
      "p() {\n  global int x;\n" + repeat("  x = x + 1;\n", 200) + "}\n";
  const BudgetExceeded e = captureBudgetError(source, budget);
  EXPECT_EQ(e.resource(), "ast-nodes");
}

TEST(Budget, AstNodeAccountingChargedAtArenaAllocationOnly) {
  // The one "ast-nodes" counter is charged by AstArena::addExpr/addStmt
  // while the parser runs, and the parser disarms the arena before
  // returning. A budget that barely admits the parse must therefore NOT
  // trip when inline/constfold/unroll allocate additional arena nodes —
  // those passes have their own counters (inlined-stmts, unrolled-stmts);
  // re-charging ast-nodes per pass would double count.
  const std::string source =
      "p() {\n"
      "  def int inc(int v) { return v + 1; }\n"
      "  global int x;\n"
      "  for (i in 0..4) do { x = inc(x); }\n"
      "}\n";
  const std::size_t parsed = lang::parse(source).arena.nodeCount();
  CompileBudget budget = CompileBudget::defaults();
  budget.maxAstNodes = parsed;  // exactly enough for the parse
  lang::Ast ast = lang::parse(source, budget);
  EXPECT_EQ(ast.arena.nodeCount(), parsed);
  lang::elaborate(ast, {});
  EXPECT_NO_THROW(transform::inlineFunctions(ast, budget));
  EXPECT_NO_THROW(transform::foldConstants(ast));
  EXPECT_NO_THROW(transform::unrollLoops(ast, budget));
  // The transforms really did allocate past the parse-time cap.
  EXPECT_GT(ast.arena.nodeCount(), parsed);
}

TEST(Budget, AstNodeCounterSurvivesParserRecovery) {
  // Recovery mode re-synchronizes after errors but allocates into the same
  // arena; the cap still applies to the total.
  CompileBudget budget = CompileBudget::defaults();
  budget.maxAstNodes = 100;
  const std::string source =
      "p() {\n  global int x\n" + repeat("  x = x + 1;\n", 200) + "}\n";
  DiagnosticEngine diag;
  EXPECT_THROW((void)lang::parseRecover(source, diag, budget),
               BudgetExceeded);
}

TEST(Budget, UnrollBombFailsFastWithoutMaterializing) {
  lang::Ast prog = lang::parse(
      "p() {\n"
      "  global int x;\n"
      "  for (i in 0..1000000000) do { x = x + 1; }\n"
      "}\n");
  lang::elaborate(prog, {});
  try {
    transform::unrollLoops(prog, CompileBudget::defaults());
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.resource(), "unrolled-stmts");
    EXPECT_EQ(e.limit(), CompileBudget::defaults().maxUnrolledStmts);
  }
}

TEST(Budget, NestedUnrollBombCaughtByEmittedCount) {
  // Each loop is individually under the limit; the product is not.
  lang::Ast prog = lang::parse(
      "p() {\n"
      "  global int x;\n"
      "  for (i in 0..1000) do {\n"
      "    for (j in 0..1000) do { x = x + 1; }\n"
      "  }\n"
      "}\n");
  lang::elaborate(prog, {});
  EXPECT_THROW(transform::unrollLoops(prog, CompileBudget::defaults()),
               BudgetExceeded);
}

TEST(Budget, InlineBombBounded) {
  // Chained doubling through function calls: f9 expands to 2^9 copies of
  // f0's body — an expansion bomb the emitted-statement counter stops.
  std::string source = "p() {\n  def int f0() { return 1; }\n";
  for (int i = 1; i < 10; ++i) {
    source += "  def int f" + std::to_string(i) + "() { return f" +
              std::to_string(i - 1) + "() + f" + std::to_string(i - 1) +
              "(); }\n";
  }
  source += "  global int x;\n  x = f9();\n}\n";
  lang::Ast prog = lang::parse(source);
  lang::elaborate(prog, {});
  CompileBudget budget = CompileBudget::defaults();
  budget.maxInlinedStmts = 500;
  try {
    transform::inlineFunctions(prog, budget);
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.resource(), "inlined-stmts");
  }
}

TEST(Budget, EvaluatorExecCapIsPerStep) {
  lang::Ast prog = lang::parse(
      "p() {\n"
      "  global int x;\n"
      "  for (i in 0..100) do { x = x + 1; }\n"
      "}\n");
  const lang::CompileOptions copts;
  lang::checkOrThrow(prog, copts);

  ir::TermArena arena;
  eval::Store store(arena);
  std::vector<ir::TermRef> assumptions;
  std::vector<eval::Obligation> obligations;
  std::vector<ir::TermRef> soundness;
  const eval::EvalSinks sinks{&assumptions, &obligations, &soundness};
  eval::Evaluator ev(arena, store, sinks);

  CompileBudget budget = CompileBudget::defaults();
  budget.maxExecStmts = 1000;
  ev.setBudget(budget);
  // ~500 statements per step, under the cap; several steps must NOT
  // accumulate into a spurious violation (the counter resets per step).
  for (int step = 0; step < 5; ++step) {
    EXPECT_NO_THROW(ev.execStep(prog, step)) << "step " << step;
  }

  budget.maxExecStmts = 50;
  ev.setBudget(budget);
  EXPECT_THROW(ev.execStep(prog, 5), BudgetExceeded);
}

TEST(Budget, TermArenaNodeLimitOnlyCountsNewNodes) {
  ir::TermArena arena;
  const ir::TermRef a = arena.var("a", ir::Sort::Int);
  const ir::TermRef b = arena.var("b", ir::Sort::Int);
  const ir::TermRef sum = arena.add(a, b);
  arena.setNodeLimit(arena.size());
  // Cache hits are free: re-interning identical structure must not throw.
  EXPECT_EQ(arena.add(a, b), sum);
  EXPECT_THROW((void)arena.mul(a, b), BudgetExceeded);
}

TEST(Budget, UnlimitedDisablesEveryCap) {
  const CompileBudget budget = CompileBudget::unlimited();
  EXPECT_EQ(budget.maxNestingDepth, 0u);
  EXPECT_EQ(budget.maxExprTerms, 0u);
  EXPECT_EQ(budget.maxAstNodes, 0u);
  EXPECT_EQ(budget.maxUnrolledStmts, 0u);
  EXPECT_EQ(budget.maxInlinedStmts, 0u);
  EXPECT_EQ(budget.maxExecStmts, 0u);
  EXPECT_EQ(budget.maxTermNodes, 0u);
  // And an unlimited parse of a deep-but-sane input succeeds.
  EXPECT_NO_THROW((void)lang::parse(deepNesting(300), budget));
}
