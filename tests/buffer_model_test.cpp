#include "buffers/model.hpp"

#include <deque>

#include <gtest/gtest.h>

#include "backends/z3/z3_backend.hpp"
#include "buffers/counter_model.hpp"
#include "buffers/list_model.hpp"
#include "ir/term_eval.hpp"
#include "ir/term_printer.hpp"
#include "support/error.hpp"

namespace buffy::buffers {
namespace {

std::int64_t cval(ir::TermRef t) {
  const auto v = ir::constValue(t);
  EXPECT_TRUE(v.has_value()) << ir::toSExpr(t);
  return v.value_or(-999);
}

BufferConfig listConfig(int capacity = 4) {
  BufferConfig cfg;
  cfg.name = "b";
  cfg.capacity = capacity;
  cfg.schema.fields = {"val"};
  return cfg;
}

PacketBatch constBatch(ir::TermArena& arena,
                       const std::vector<std::int64_t>& vals,
                       const std::vector<std::int64_t>& bytes = {}) {
  PacketBatch batch;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    PacketSlot slot;
    slot.present = arena.trueTerm();
    slot.fields["val"] = arena.intConst(vals[i]);
    if (i < bytes.size()) slot.fields["bytes"] = arena.intConst(bytes[i]);
    batch.slots.push_back(std::move(slot));
  }
  return batch;
}

// ---------------------------------------------------------------------------
// List model
// ---------------------------------------------------------------------------

TEST(ListBuffer, StartsEmpty) {
  ir::TermArena arena;
  ListBuffer buf(listConfig(), arena);
  EXPECT_EQ(cval(buf.backlogP()), 0);
  EXPECT_EQ(cval(buf.backlogB()), 0);
  EXPECT_EQ(cval(buf.droppedP()), 0);
}

TEST(ListBuffer, AcceptAndBacklog) {
  ir::TermArena arena;
  ListBuffer buf(listConfig(), arena);
  buf.accept(constBatch(arena, {1, 2, 3}), arena.trueTerm());
  EXPECT_EQ(cval(buf.backlogP()), 3);
  EXPECT_EQ(cval(buf.fieldAt(0, "val")), 1);
  EXPECT_EQ(cval(buf.fieldAt(2, "val")), 3);
}

TEST(ListBuffer, TailDropAtCapacity) {
  ir::TermArena arena;
  ListBuffer buf(listConfig(2), arena);
  buf.accept(constBatch(arena, {1, 2, 3, 4}), arena.trueTerm());
  EXPECT_EQ(cval(buf.backlogP()), 2);
  EXPECT_EQ(cval(buf.droppedP()), 2);
  // FIFO order preserved; the head survives.
  EXPECT_EQ(cval(buf.fieldAt(0, "val")), 1);
  EXPECT_EQ(cval(buf.fieldAt(1, "val")), 2);
}

TEST(ListBuffer, GuardedAcceptIsNoOp) {
  ir::TermArena arena;
  ListBuffer buf(listConfig(), arena);
  buf.accept(constBatch(arena, {1}), arena.falseTerm());
  EXPECT_EQ(cval(buf.backlogP()), 0);
  EXPECT_EQ(cval(buf.droppedP()), 0);
}

TEST(ListBuffer, PopPreservesOrder) {
  ir::TermArena arena;
  ListBuffer buf(listConfig(), arena);
  buf.accept(constBatch(arena, {10, 20, 30}), arena.trueTerm());
  const PacketBatch popped = buf.popP(arena.intConst(2), arena.trueTerm());
  EXPECT_EQ(cval(popped.count(arena)), 2);
  EXPECT_EQ(cval(popped.slots[0].fields.at("val")), 10);
  EXPECT_EQ(cval(popped.slots[1].fields.at("val")), 20);
  EXPECT_EQ(cval(buf.backlogP()), 1);
  EXPECT_EQ(cval(buf.fieldAt(0, "val")), 30);
}

TEST(ListBuffer, PopClampsToBacklogAndZero) {
  ir::TermArena arena;
  ListBuffer buf(listConfig(), arena);
  buf.accept(constBatch(arena, {5}), arena.trueTerm());
  EXPECT_EQ(cval(buf.popP(arena.intConst(99), arena.trueTerm()).count(arena)),
            1);
  buf.accept(constBatch(arena, {6}), arena.trueTerm());
  EXPECT_EQ(cval(buf.popP(arena.intConst(-3), arena.trueTerm()).count(arena)),
            0);
  EXPECT_EQ(cval(buf.backlogP()), 1);
}

TEST(ListBuffer, FilteredBacklog) {
  ir::TermArena arena;
  ListBuffer buf(listConfig(), arena);
  buf.accept(constBatch(arena, {1, 2, 1}), arena.trueTerm());
  const Filter f1{"val", arena.intConst(1)};
  const Filter f2{"val", arena.intConst(2)};
  EXPECT_EQ(cval(buf.backlogP(f1)), 2);
  EXPECT_EQ(cval(buf.backlogP(f2)), 1);
  EXPECT_EQ(cval(buf.backlogP(Filter{"val", arena.intConst(9)})), 0);
}

TEST(ListBuffer, FilterUnknownFieldThrows) {
  ir::TermArena arena;
  ListBuffer buf(listConfig(), arena);
  buf.accept(constBatch(arena, {1}), arena.trueTerm());
  EXPECT_THROW(buf.backlogP(Filter{"nope", arena.intConst(1)}),
               AnalysisError);
}

TEST(ListBuffer, BytesAccounting) {
  ir::TermArena arena;
  BufferConfig cfg = listConfig();
  cfg.schema.fields = {"val", "bytes"};
  ListBuffer buf(cfg, arena);
  buf.accept(constBatch(arena, {1, 2, 3}, {10, 20, 30}), arena.trueTerm());
  EXPECT_EQ(cval(buf.backlogB()), 60);
  // popB takes whole packets while their cumulative size fits.
  const PacketBatch popped = buf.popB(arena.intConst(35), arena.trueTerm());
  EXPECT_EQ(cval(popped.count(arena)), 2);  // 10+20 <= 35, +30 would exceed
  EXPECT_EQ(cval(buf.backlogB()), 30);
}

TEST(ListBuffer, BytesDefaultToOnePerPacket) {
  ir::TermArena arena;
  ListBuffer buf(listConfig(), arena);  // schema without "bytes"
  buf.accept(constBatch(arena, {1, 2}), arena.trueTerm());
  EXPECT_EQ(cval(buf.backlogB()), 2);
}

TEST(ListBuffer, MoveBetweenBuffers) {
  ir::TermArena arena;
  ListBuffer src(listConfig(), arena);
  ListBuffer dst(listConfig(), arena);
  src.accept(constBatch(arena, {1, 2, 3}), arena.trueTerm());
  moveP(src, dst, arena.intConst(2), arena.trueTerm(), arena);
  EXPECT_EQ(cval(src.backlogP()), 1);
  EXPECT_EQ(cval(dst.backlogP()), 2);
  EXPECT_EQ(cval(dst.fieldAt(0, "val")), 1);
  EXPECT_EQ(cval(dst.fieldAt(1, "val")), 2);
}

TEST(ListBuffer, MoveSelfRejected) {
  ir::TermArena arena;
  ListBuffer buf(listConfig(), arena);
  EXPECT_THROW(moveP(buf, buf, arena.intConst(1), arena.trueTerm(), arena),
               AnalysisError);
}

TEST(ListBuffer, PopAllEmpties) {
  ir::TermArena arena;
  ListBuffer buf(listConfig(), arena);
  buf.accept(constBatch(arena, {4, 5}), arena.trueTerm());
  const PacketBatch all = buf.popAll();
  EXPECT_EQ(cval(all.count(arena)), 2);
  EXPECT_EQ(cval(buf.backlogP()), 0);
}

TEST(ListBuffer, MergeSelectsBranchState) {
  ir::TermArena arena;
  ListBuffer base(listConfig(), arena);
  base.accept(constBatch(arena, {9}), arena.trueTerm());
  auto thenBuf = base.clone();
  auto elseBuf = base.clone();
  thenBuf->accept(constBatch(arena, {1}), arena.trueTerm());
  elseBuf->popP(arena.intConst(1), arena.trueTerm());

  const ir::TermRef c = arena.var("c", ir::Sort::Bool);
  thenBuf->mergeElse(c, *elseBuf);
  EXPECT_EQ(ir::evalTerm(thenBuf->backlogP(), {{"c", 1}}), 2);
  EXPECT_EQ(ir::evalTerm(thenBuf->backlogP(), {{"c", 0}}), 0);
}

TEST(ListBuffer, AggregateBatchRejected) {
  ir::TermArena arena;
  ListBuffer buf(listConfig(), arena);
  PacketBatch batch;
  batch.classCounts["val"] = {arena.intConst(1)};
  EXPECT_THROW(buf.accept(batch, arena.trueTerm()), AnalysisError);
}

// Symbolic pop count: ensure shifting works for every possible m via the
// term evaluator.
TEST(ListBuffer, SymbolicPopShift) {
  ir::TermArena arena;
  ListBuffer buf(listConfig(4), arena);
  buf.accept(constBatch(arena, {10, 20, 30, 40}), arena.trueTerm());
  const ir::TermRef m = arena.var("m", ir::Sort::Int);
  buf.popP(m, arena.trueTerm());
  for (std::int64_t take = 0; take <= 4; ++take) {
    const ir::Assignment env{{"m", take}};
    EXPECT_EQ(ir::evalTerm(buf.backlogP(), env), 4 - take);
    if (take < 4) {
      EXPECT_EQ(ir::evalTerm(buf.fieldAt(0, "val"), env), 10 * (take + 1));
    }
  }
}

// ---------------------------------------------------------------------------
// Counter model
// ---------------------------------------------------------------------------

BufferConfig counterConfig(int capacity = 8, int bytesPerPacket = 3) {
  BufferConfig cfg;
  cfg.name = "c";
  cfg.capacity = capacity;
  cfg.bytesPerPacket = bytesPerPacket;
  return cfg;
}

TEST(CounterBuffer, CountsPacketsAndBytes) {
  ir::TermArena arena;
  CounterBuffer buf(counterConfig(), arena, nullptr);
  buf.accept(constBatch(arena, {1, 2}), arena.trueTerm());
  EXPECT_EQ(cval(buf.backlogP()), 2);
  EXPECT_EQ(cval(buf.backlogB()), 6);  // 2 * bytesPerPacket(3)
}

TEST(CounterBuffer, PopAndDrop) {
  ir::TermArena arena;
  CounterBuffer buf(counterConfig(3), arena, nullptr);
  buf.accept(constBatch(arena, {1, 2, 3, 4, 5}), arena.trueTerm());
  EXPECT_EQ(cval(buf.backlogP()), 3);
  EXPECT_EQ(cval(buf.droppedP()), 2);
  const PacketBatch popped = buf.popP(arena.intConst(2), arena.trueTerm());
  EXPECT_EQ(cval(popped.count(arena)), 2);
  EXPECT_EQ(cval(buf.backlogP()), 1);
}

TEST(CounterBuffer, PopBUsesConstantPacketSize) {
  ir::TermArena arena;
  CounterBuffer buf(counterConfig(8, 3), arena, nullptr);
  buf.accept(constBatch(arena, {1, 2, 3}), arena.trueTerm());
  const PacketBatch popped = buf.popB(arena.intConst(7), arena.trueTerm());
  EXPECT_EQ(cval(popped.count(arena)), 2);  // 7 / 3 = 2 whole packets
}

TEST(CounterBuffer, FilterWithoutClassesThrows) {
  ir::TermArena arena;
  CounterBuffer buf(counterConfig(), arena, nullptr);
  EXPECT_THROW(buf.backlogP(Filter{"val", arena.intConst(0)}), AnalysisError);
}

TEST(CounterBuffer, ClassifiedNeedsSink) {
  ir::TermArena arena;
  BufferConfig cfg = counterConfig();
  cfg.classField = "val";
  cfg.classDomain = 2;
  EXPECT_THROW(CounterBuffer(cfg, arena, nullptr), AnalysisError);
}

TEST(CounterBuffer, ClassifiedAcceptCountsPerClass) {
  ir::TermArena arena;
  std::vector<ir::TermRef> side;
  BufferConfig cfg = counterConfig();
  cfg.classField = "val";
  cfg.classDomain = 3;
  cfg.schema.fields = {"val"};
  CounterBuffer buf(cfg, arena, &side);
  buf.accept(constBatch(arena, {0, 1, 1, 2}), arena.trueTerm());
  // The per-class split is nondeterministic (fresh vars + side
  // constraints); verify with Z3 that the model is forced to the exact
  // split when nothing is dropped.
  const Filter f1{"val", arena.intConst(1)};
  std::vector<ir::TermRef> constraints = side;
  constraints.push_back(
      arena.mkNot(arena.eq(buf.backlogP(f1), arena.intConst(2))));
  backends::Z3Backend z3;
  const auto result = z3.check(constraints);
  EXPECT_EQ(result.status, backends::SolveStatus::Unsat)
      << "class-1 count must be forced to 2";
}

TEST(CounterBuffer, MergeSelectsBranchState) {
  ir::TermArena arena;
  CounterBuffer base(counterConfig(), arena, nullptr);
  base.accept(constBatch(arena, {1}), arena.trueTerm());
  auto thenBuf = base.clone();
  auto elseBuf = base.clone();
  thenBuf->accept(constBatch(arena, {2, 3}), arena.trueTerm());
  const ir::TermRef c = arena.var("c", ir::Sort::Bool);
  thenBuf->mergeElse(c, *elseBuf);
  EXPECT_EQ(ir::evalTerm(thenBuf->backlogP(), {{"c", 1}}), 3);
  EXPECT_EQ(ir::evalTerm(thenBuf->backlogP(), {{"c", 0}}), 1);
}

TEST(CounterBuffer, ListToCounterMove) {
  // Cross-precision move: a list source feeding a counter destination.
  ir::TermArena arena;
  ListBuffer src(listConfig(), arena);
  CounterBuffer dst(counterConfig(), arena, nullptr);
  src.accept(constBatch(arena, {1, 2, 3}), arena.trueTerm());
  moveP(src, dst, arena.intConst(2), arena.trueTerm(), arena);
  EXPECT_EQ(cval(src.backlogP()), 1);
  EXPECT_EQ(cval(dst.backlogP()), 2);
}

TEST(BufferFactory, MakesRequestedKind) {
  ir::TermArena arena;
  const auto list = makeBuffer(ModelKind::List, listConfig(), arena);
  EXPECT_EQ(list->kind(), ModelKind::List);
  const auto counter = makeBuffer(ModelKind::Counter, counterConfig(), arena);
  EXPECT_EQ(counter->kind(), ModelKind::Counter);
}

// ---------------------------------------------------------------------------
// Property test: random concrete op sequences on ListBuffer vs a
// deque-of-packets reference implementation.
// ---------------------------------------------------------------------------

struct RefPacket {
  std::int64_t val;
};

class ListBufferProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ListBufferProperty, MatchesDequeReference) {
  ir::TermArena arena;
  const int capacity = 4;
  ListBuffer buf(listConfig(capacity), arena);
  std::deque<RefPacket> ref;
  std::int64_t refDropped = 0;
  unsigned state = GetParam();
  auto nextRand = [&state]() {
    state = state * 1664525u + 1013904223u;
    return state >> 16;
  };
  for (int step = 0; step < 150; ++step) {
    switch (nextRand() % 3) {
      case 0: {  // accept 1-3 packets
        const int n = 1 + static_cast<int>(nextRand() % 3);
        std::vector<std::int64_t> vals;
        for (int i = 0; i < n; ++i) {
          vals.push_back(static_cast<std::int64_t>(nextRand() % 10));
        }
        buf.accept(constBatch(arena, vals), arena.trueTerm());
        for (const auto v : vals) {
          if (ref.size() < static_cast<std::size_t>(capacity)) {
            ref.push_back(RefPacket{v});
          } else {
            ++refDropped;
          }
        }
        break;
      }
      case 1: {  // pop 0-3 packets
        const std::int64_t n = static_cast<std::int64_t>(nextRand() % 4);
        const PacketBatch popped =
            buf.popP(arena.intConst(n), arena.trueTerm());
        const std::int64_t expect =
            std::min<std::int64_t>(n, static_cast<std::int64_t>(ref.size()));
        ASSERT_EQ(cval(popped.count(arena)), expect);
        for (std::int64_t i = 0; i < expect; ++i) {
          ASSERT_EQ(cval(popped.slots[static_cast<std::size_t>(i)].fields.at(
                        "val")),
                    ref.front().val);
          ref.pop_front();
        }
        break;
      }
      case 2: {  // filtered backlog probe
        const std::int64_t probe =
            static_cast<std::int64_t>(nextRand() % 10);
        std::int64_t expect = 0;
        for (const auto& p : ref) {
          if (p.val == probe) ++expect;
        }
        ASSERT_EQ(cval(buf.backlogP(Filter{"val", arena.intConst(probe)})),
                  expect);
        break;
      }
    }
    ASSERT_EQ(cval(buf.backlogP()), static_cast<std::int64_t>(ref.size()));
    ASSERT_EQ(cval(buf.droppedP()), refDropped);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ListBufferProperty,
                         ::testing::Values(3u, 17u, 256u, 7777u, 123456u));

// Counter-model property test: random op sequences vs a simple integer
// reference (count + drop accounting only).
class CounterBufferProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(CounterBufferProperty, MatchesIntegerReference) {
  ir::TermArena arena;
  const int capacity = 5;
  CounterBuffer buf(counterConfig(capacity, 2), arena, nullptr);
  std::int64_t refCount = 0;
  std::int64_t refDropped = 0;
  unsigned state = GetParam();
  auto nextRand = [&state]() {
    state = state * 1664525u + 1013904223u;
    return state >> 16;
  };
  for (int step = 0; step < 200; ++step) {
    switch (nextRand() % 3) {
      case 0: {  // accept 0-3 packets
        const int n = static_cast<int>(nextRand() % 4);
        buf.accept(constBatch(arena, std::vector<std::int64_t>(
                                         static_cast<std::size_t>(n), 1)),
                   arena.trueTerm());
        const std::int64_t accepted =
            std::min<std::int64_t>(n, capacity - refCount);
        refCount += accepted;
        refDropped += n - accepted;
        break;
      }
      case 1: {  // pop 0-3 packets
        const std::int64_t n = static_cast<std::int64_t>(nextRand() % 4);
        const PacketBatch popped =
            buf.popP(arena.intConst(n), arena.trueTerm());
        const std::int64_t expect = std::min(n, refCount);
        ASSERT_EQ(cval(popped.count(arena)), expect);
        refCount -= expect;
        break;
      }
      case 2: {  // pop by bytes (2 bytes per packet)
        const std::int64_t budget = static_cast<std::int64_t>(nextRand() % 7);
        const PacketBatch popped =
            buf.popB(arena.intConst(budget), arena.trueTerm());
        const std::int64_t expect = std::min(budget / 2, refCount);
        ASSERT_EQ(cval(popped.count(arena)), expect);
        refCount -= expect;
        break;
      }
    }
    ASSERT_EQ(cval(buf.backlogP()), refCount);
    ASSERT_EQ(cval(buf.backlogB()), refCount * 2);
    ASSERT_EQ(cval(buf.droppedP()), refDropped);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CounterBufferProperty,
                         ::testing::Values(5u, 29u, 444u, 9090u, 654321u));

}  // namespace
}  // namespace buffy::buffers
