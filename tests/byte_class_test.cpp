// End-to-end analyses exercising byte precision (move-b / backlog-b, the
// DRR quantum scheduler) and classified counter buffers (the paper's §3
// "sets of integers ... from different traffic classes" precision level).
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "support/error.hpp"

namespace buffy::core {
namespace {

Network drrNet(int quantum) {
  ProgramSpec spec;
  spec.instance = "drr";
  spec.source = models::kDeficitRoundRobin;
  spec.compile.constants["N"] = 2;
  spec.compile.constants["QUANTUM"] = quantum;
  spec.buffers = {
      {.param = "ibs", .role = BufferSpec::Role::Input, .capacity = 4,
       .schema = {{"bytes"}}, .maxArrivalsPerStep = 2, .maxPacketBytes = 4},
      {.param = "ob", .role = BufferSpec::Role::Output, .capacity = 16,
       .schema = {{"bytes"}}},
  };
  Network net;
  net.add(spec);
  return net;
}

TEST(BytePrecision, DrrSymbolicCheck) {
  AnalysisOptions opts;
  opts.horizon = 2;
  Analysis analysis(drrNet(/*quantum=*/3), opts);
  // Some trace moves at least 2 bytes from queue 0 in the first step.
  const auto result = analysis.check(Query::expr("drr.bdeq.0[0] >= 2"));
  EXPECT_EQ(result.verdict, Verdict::Satisfiable);
}

TEST(BytePrecision, DrrQuantumBoundsPerVisit) {
  // A single DRR visit can never move more than deficit bytes; with
  // quantum 3, fresh state, and packets of >= 1 byte, bdeq after the first
  // step is at most quantum (deficit starts at 0).
  AnalysisOptions opts;
  opts.horizon = 1;
  Analysis analysis(drrNet(/*quantum=*/3), opts);
  EXPECT_EQ(analysis.verify(Query::expr("drr.bdeq.0[0] <= 3")).verdict,
            Verdict::Verified);
  // And whatever leaves queue 0 in one visit fits the quantum; with
  // 2 arrivals of up to 4 bytes each, more than 3 bytes cannot leave.
  EXPECT_EQ(analysis.check(Query::expr("drr.bdeq.0[0] >= 4")).verdict,
            Verdict::Unsatisfiable);
}

TEST(BytePrecision, MoveBRespectsWholePackets) {
  // A 4-byte packet does not fit a 3-byte budget; two 1-byte packets do.
  const char* source = R"(
shaper(buffer src, buffer snk) {
  move-b(src, snk, BUDGET);
})";
  ProgramSpec spec;
  spec.instance = "sh";
  spec.source = source;
  spec.compile.constants["BUDGET"] = 3;
  spec.buffers = {
      {.param = "src", .role = BufferSpec::Role::Input, .capacity = 4,
       .schema = {{"bytes"}}, .maxArrivalsPerStep = 2, .maxPacketBytes = 4},
      {.param = "snk", .role = BufferSpec::Role::Output, .capacity = 8,
       .schema = {{"bytes"}}},
  };
  Network net;
  net.add(spec);
  AnalysisOptions opts;
  opts.horizon = 1;
  {
    Analysis analysis(net, opts);
    // Both arrivals can be forwarded when their sizes fit the budget.
    EXPECT_EQ(analysis.check(Query::expr("sh.snk.out[0] == 2")).verdict,
              Verdict::Satisfiable);
  }
  {
    Analysis analysis(net, opts);
    // But a single 4-byte head-of-line packet blocks everything.
    Workload big;
    big.add(Workload::fieldRange("sh.src", "bytes", 4, 4));
    big.add(Workload::perStepCount("sh.src", 1, 2));
    analysis.setWorkload(big);
    EXPECT_EQ(analysis.verify(Query::expr("sh.snk.out[0] == 0")).verdict,
              Verdict::Verified);
  }
}

// ---------------------------------------------------------------------------
// Classified counter buffers (per-traffic-class counting).
// ---------------------------------------------------------------------------

Network classifierNet() {
  const char* source = R"(
cls(buffer inb, buffer outb) {
  global monitor int mhi;
  mhi = mhi + backlog-p(inb |> val == 1);
  move-p(inb, outb, backlog-p(inb));
})";
  ProgramSpec spec;
  spec.instance = "cls";
  spec.source = source;
  spec.buffers = {
      {.param = "inb", .role = BufferSpec::Role::Input, .capacity = 4,
       .schema = {{"val"}}, .maxArrivalsPerStep = 2, .classField = "val",
       .classDomain = 2},
      {.param = "outb", .role = BufferSpec::Role::Output, .capacity = 16,
       .schema = {{"val"}}, .classField = "val", .classDomain = 2},
  };
  Network net;
  net.add(spec);
  return net;
}

TEST(ClassifiedCounter, FilterQueriesWork) {
  AnalysisOptions opts;
  opts.horizon = 2;
  opts.model = buffers::ModelKind::Counter;
  Analysis analysis(classifierNet(), opts);
  // Class-1 packets can be observed by the filtered backlog monitor.
  EXPECT_EQ(analysis.check(Query::expr("cls.mhi[T-1] >= 2")).verdict,
            Verdict::Satisfiable);
  // The monitor can never exceed the number of arrivals.
  Analysis bounded(classifierNet(), opts);
  EXPECT_EQ(
      bounded
          .verify(Query::expr(
              "cls.mhi[T-1] <= cls.inb.arrived[0] + cls.inb.arrived[1]"))
          .verdict,
      Verdict::Verified);
}

TEST(ClassifiedCounter, AgreesWithListModel) {
  for (const auto model :
       {buffers::ModelKind::List, buffers::ModelKind::Counter}) {
    AnalysisOptions opts;
    opts.horizon = 2;
    opts.model = model;
    Analysis analysis(classifierNet(), opts);
    Workload allHigh;
    allHigh.add(Workload::fieldRange("cls.inb", "val", 1, 1));
    allHigh.add(Workload::perStepCount("cls.inb", 1, 1));
    analysis.setWorkload(allHigh);
    // Every arrival is class 1 and sits in the buffer when observed.
    EXPECT_EQ(analysis.verify(Query::expr("cls.mhi[T-1] >= 2")).verdict,
              Verdict::Verified)
        << (model == buffers::ModelKind::List ? "list" : "counter");
  }
}

TEST(MixedPrecision, PerBufferModelOverride) {
  // List-precision input (packet identities matter for the filter monitor)
  // feeding a counter-precision output (only counts matter) in ONE
  // analysis — the per-buffer modelOverride.
  const char* source = R"(
mix(buffer inb, buffer outb) {
  global monitor int mhi;
  mhi = mhi + backlog-p(inb |> val == 1);
  move-p(inb, outb, 1);
})";
  ProgramSpec spec;
  spec.instance = "mix";
  spec.source = source;
  spec.buffers = {
      {.param = "inb", .role = BufferSpec::Role::Input, .capacity = 4,
       .schema = {{"val"}}, .maxArrivalsPerStep = 2,
       .modelOverride = buffers::ModelKind::List},
      {.param = "outb", .role = BufferSpec::Role::Output, .capacity = 16,
       .modelOverride = buffers::ModelKind::Counter},
  };
  Network net;
  net.add(spec);
  AnalysisOptions opts;
  opts.horizon = 3;
  // The analysis-wide default is irrelevant: overrides win.
  opts.model = buffers::ModelKind::Counter;
  Analysis analysis(net, opts);
  Workload w;
  w.add(Workload::fieldRange("mix.inb", "val", 1, 1));
  w.add(Workload::perStepCount("mix.inb", 1, 1));
  analysis.setWorkload(w);
  // The filter works (list input) and the output counts flow (counter).
  EXPECT_EQ(analysis.verify(Query::expr(
                               "mix.mhi[T-1] >= 1 & sum(mix.outb.out, 0, T) "
                               ">= T-1"))
                .verdict,
            Verdict::Verified);
}

}  // namespace
}  // namespace buffy::core
