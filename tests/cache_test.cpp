// Verdict cache (DESIGN.md §14): key derivation, the checksummed record
// codec, both tiers of cache::VerdictCache, corruption fallback, and the
// end-to-end cold-vs-warm differential across every example model and
// backend — warm answers must be byte-identical to cold ones, and a
// damaged cache must silently fall back to solving, never to a wrong
// answer.
#include "cache/verdict_cache.hpp"

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "ir/term_hash.hpp"
#include "synth/synthesizer.hpp"

namespace buffy {
namespace {

using buffy::testing::schedulerNet;

#ifndef BUFFY_CLI_PATH
#error "BUFFY_CLI_PATH must be defined by the build"
#endif
#ifndef BUFFY_MODELS_DIR
#error "BUFFY_MODELS_DIR must be defined by the build"
#endif

// ---------------------------------------------------------------------------
// Canonical term hashing

TEST(TermHash, StableAcrossArenas) {
  // The same structure built in two independent arenas (different pointer
  // identities, different intern order) must hash identically — that is
  // what makes the key survive a process boundary.
  ir::TermArena a;
  ir::TermArena b;
  const ir::TermRef ta =
      a.le(a.add(a.var("x", ir::Sort::Int), a.intConst(1)), a.intConst(5));
  // Interleave unrelated terms so arena ids diverge.
  (void)b.var("noise", ir::Sort::Bool);
  (void)b.intConst(42);
  const ir::TermRef tb =
      b.le(b.add(b.var("x", ir::Sort::Int), b.intConst(1)), b.intConst(5));
  ir::TermHasher ha;
  ir::TermHasher hb;
  EXPECT_EQ(ha.hash(ta), hb.hash(tb));

  const ir::TermRef other =
      b.le(b.add(b.var("y", ir::Sort::Int), b.intConst(1)), b.intConst(5));
  EXPECT_NE(hb.hash(tb), hb.hash(other));
}

TEST(TermHash, SetHashIsOrderInsensitive) {
  ir::TermArena a;
  const ir::TermRef t1 = a.ge(a.var("p", ir::Sort::Int), a.intConst(0));
  const ir::TermRef t2 = a.lt(a.var("q", ir::Sort::Int), a.intConst(9));
  ir::TermHasher h;
  const std::array<ir::TermRef, 2> fwd = {t1, t2};
  const std::array<ir::TermRef, 2> rev = {t2, t1};
  EXPECT_EQ(h.hashSet(fwd), h.hashSet(rev));
  const std::array<ir::TermRef, 1> just1 = {t1};
  EXPECT_NE(h.hashSet(fwd), h.hashSet(just1));
}

// ---------------------------------------------------------------------------
// Key derivation

TEST(CacheKey, DeterministicAndSensitiveToEveryPart) {
  cache::CacheKeyParts parts;
  parts.problemHash = 0x1234;
  parts.query = "q[T-1] >= 1";
  parts.horizon = 6;
  parts.backend = "z3";
  const std::string base = cache::cacheKeyFor(parts);
  EXPECT_EQ(base.size(), 32u);
  EXPECT_EQ(base, cache::cacheKeyFor(parts));

  auto differs = [&](cache::CacheKeyParts p) {
    EXPECT_NE(cache::cacheKeyFor(p), base);
  };
  {
    auto p = parts;
    p.problemHash ^= 1;
    differs(p);
  }
  {
    auto p = parts;
    p.query += " ";
    differs(p);
  }
  {
    auto p = parts;
    p.horizon = 7;
    differs(p);
  }
  {
    auto p = parts;
    p.forVerify = true;
    differs(p);
  }
  {
    auto p = parts;
    p.backend = "smtlib";
    differs(p);
  }
  {
    auto p = parts;
    p.model = 1;
    differs(p);
  }
  {
    auto p = parts;
    p.symbolicInitialState = true;
    differs(p);
  }
}

// ---------------------------------------------------------------------------
// Record codec

cache::CachedVerdict sampleVerdict() {
  cache::CachedVerdict v;
  v.verdict = "SATISFIABLE";
  v.detail = "sat in 1 attempt";
  v.solveSeconds = 0.125;
  v.witnessChecked = true;
  core::Trace trace;
  trace.horizon = 3;
  trace.series["fq.cdeq.0"] = {0, 1, 2};
  trace.series["fq.ibs.0.arrived"] = {1, 1, 0};
  v.trace = trace;
  return v;
}

TEST(Record, RoundTripsWithTrace) {
  const std::string key(32, 'a');
  const cache::CachedVerdict in = sampleVerdict();
  const std::string bytes = cache::VerdictCache::encodeRecord(key, in);
  const auto out = cache::VerdictCache::decodeRecord(key, bytes);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->verdict, in.verdict);
  EXPECT_EQ(out->detail, in.detail);
  EXPECT_DOUBLE_EQ(out->solveSeconds, in.solveSeconds);
  EXPECT_TRUE(out->witnessChecked);
  ASSERT_TRUE(out->trace.has_value());
  EXPECT_EQ(out->trace->horizon, 3);
  EXPECT_EQ(out->trace->series, in.trace->series);
}

TEST(Record, RejectsEveryMalformation) {
  const std::string key(32, 'b');
  const std::string bytes =
      cache::VerdictCache::encodeRecord(key, sampleVerdict());

  // Truncation at every prefix length must read as corrupt, not crash.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{4}, std::size_t{11}, bytes.size() / 2,
        bytes.size() - 1}) {
    EXPECT_FALSE(
        cache::VerdictCache::decodeRecord(key, bytes.substr(0, len)))
        << "truncated to " << len;
  }
  // A single flipped byte anywhere breaks the checksum (or the framing).
  for (const std::size_t pos :
       {std::size_t{0}, std::size_t{9}, bytes.size() / 2, bytes.size() - 1}) {
    std::string bad = bytes;
    bad[pos] = static_cast<char>(bad[pos] ^ 0xff);
    EXPECT_FALSE(cache::VerdictCache::decodeRecord(key, bad))
        << "flipped byte " << pos;
  }
  // A record copied to another key's filename must not be served.
  EXPECT_FALSE(cache::VerdictCache::decodeRecord(std::string(32, 'c'), bytes));
  // Trailing garbage after a valid record is framing corruption.
  EXPECT_FALSE(cache::VerdictCache::decodeRecord(key, bytes + "x"));
}

// ---------------------------------------------------------------------------
// VerdictCache tiers

std::string freshDir(const char* stem) {
  static int counter = 0;
  const std::string dir = ::testing::TempDir() + "buffy_cache_" + stem + "_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(counter++);
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

TEST(VerdictCache, MemoryTierLruEvicts) {
  cache::VerdictCacheOptions opts;
  opts.maxMemoryEntries = 2;
  cache::VerdictCache c(opts);
  const cache::CachedVerdict v = sampleVerdict();
  c.store(std::string(32, '1'), v);
  c.store(std::string(32, '2'), v);
  // Touch key 1 so key 2 is the LRU victim.
  EXPECT_TRUE(c.lookup(std::string(32, '1')).has_value());
  c.store(std::string(32, '3'), v);
  EXPECT_TRUE(c.lookup(std::string(32, '1')).has_value());
  EXPECT_FALSE(c.lookup(std::string(32, '2')).has_value());
  EXPECT_TRUE(c.lookup(std::string(32, '3')).has_value());
  const cache::CacheStats s = c.stats();
  EXPECT_EQ(s.stores, 3u);
  EXPECT_GE(s.evictions, 1u);
  EXPECT_EQ(s.misses, 1u);
}

TEST(VerdictCache, DiskTierSurvivesInstances) {
  const std::string dir = freshDir("disk");
  const std::string key(32, 'd');
  {
    cache::VerdictCacheOptions opts;
    opts.dir = dir;
    cache::VerdictCache writer(opts);
    writer.store(key, sampleVerdict());
  }
  cache::VerdictCacheOptions opts;
  opts.dir = dir;
  cache::VerdictCache reader(opts);
  const auto hit = reader.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->verdict, "SATISFIABLE");
  ASSERT_TRUE(hit->trace.has_value());
  EXPECT_EQ(hit->trace->horizon, 3);
  EXPECT_EQ(reader.stats().hits, 1u);
}

TEST(VerdictCache, CorruptDiskRecordReadsAsMissAndIsDeleted) {
  const std::string dir = freshDir("corrupt");
  const std::string key(32, 'e');
  cache::VerdictCacheOptions opts;
  opts.dir = dir;
  {
    cache::VerdictCache writer(opts);
    writer.store(key, sampleVerdict());
  }
  // Flip one payload byte on disk.
  cache::VerdictCache victim(opts);
  const std::string path = victim.pathFor(key);
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    std::string bytes = ss.str();
    ASSERT_GT(bytes.size(), 16u);
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x1);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_FALSE(victim.lookup(key).has_value());
  const cache::CacheStats s = victim.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.validationFailures, 1u);
  // The poisoned record was unlinked; the next instance sees a clean miss.
  cache::VerdictCache after(opts);
  EXPECT_FALSE(after.lookup(key).has_value());
  EXPECT_EQ(after.stats().validationFailures, 0u);

  // Truncation is handled the same way.
  {
    cache::VerdictCache writer(opts);
    writer.store(key, sampleVerdict());
    writer.flushDisk();  // stores are write-behind; land it before reading
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string bytes = ss.str();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  cache::VerdictCache truncated(opts);
  EXPECT_FALSE(truncated.lookup(key).has_value());
  EXPECT_EQ(truncated.stats().validationFailures, 1u);
}

TEST(VerdictCache, DiskEvictionRespectsCap) {
  const std::string dir = freshDir("evict");
  cache::VerdictCacheOptions opts;
  opts.dir = dir;
  // Records are a few hundred bytes; cap at ~3 of them.
  const std::string oneRecord = cache::VerdictCache::encodeRecord(
      std::string(32, 'x'), sampleVerdict());
  opts.maxDiskBytes = oneRecord.size() * 3;
  cache::VerdictCache c(opts);
  for (char k = 'a'; k <= 'j'; ++k) {
    c.store(std::string(32, k), sampleVerdict());
  }
  c.flushDisk();  // stores are write-behind; land them before counting
  EXPECT_GT(c.stats().evictions, 0u);
  // The surviving files fit the cap.
  std::uint64_t total = 0;
  int files = 0;
  for (char k = 'a'; k <= 'j'; ++k) {
    std::ifstream in(c.pathFor(std::string(32, k)), std::ios::binary);
    if (!in) continue;
    std::stringstream ss;
    ss << in.rdbuf();
    total += ss.str().size();
    ++files;
  }
  EXPECT_GT(files, 0);
  EXPECT_LT(files, 10);
  EXPECT_LE(total, opts.maxDiskBytes);
}

TEST(VerdictCache, ConcurrentWritersStayConsistent) {
  const std::string dir = freshDir("race");
  cache::VerdictCacheOptions opts;
  opts.dir = dir;
  // Hammer one shared directory from several cache instances (the
  // worker-process topology) and several threads per instance: every
  // lookup must return either a miss or an intact record.
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  std::vector<std::thread> threads;
  std::atomic<int> badReads{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      cache::VerdictCache mine(opts);
      for (int r = 0; r < kRounds; ++r) {
        const std::string key(32, static_cast<char>('a' + (r + t) % 4));
        mine.store(key, sampleVerdict());
        const auto hit = mine.lookup(key);
        if (hit && hit->verdict != "SATISFIABLE") badReads.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(badReads.load(), 0);
}

// ---------------------------------------------------------------------------
// Engine integration: cold solve vs warm hit through core::Analysis

TEST(AnalysisCache, WarmEngineReturnsIdenticalAnswer) {
  core::AnalysisOptions opts;
  opts.horizon = 5;
  opts.cache = std::make_shared<cache::VerdictCache>();
  const core::Query query = core::Query::expr("fq.cdeq.0[T-1] >= T-1");
  const core::Workload workload =
      buffy::testing::starvationWorkload("fq", opts.horizon);

  core::Analysis cold(schedulerNet(models::kFairQueueBuggy, "fq", 2), opts);
  cold.setWorkload(workload);
  const core::AnalysisResult a = cold.check(query);
  EXPECT_FALSE(a.cached);
  EXPECT_FALSE(a.cacheKey.empty());

  // A fresh engine sharing the cache answers without a solver round-trip.
  core::Analysis warm(schedulerNet(models::kFairQueueBuggy, "fq", 2), opts);
  warm.setWorkload(workload);
  const core::AnalysisResult b = warm.check(query);
  EXPECT_TRUE(b.cached);
  EXPECT_EQ(b.cacheKey, a.cacheKey);
  EXPECT_EQ(b.verdict, a.verdict);
  ASSERT_EQ(a.trace.has_value(), b.trace.has_value());
  if (a.trace) {
    EXPECT_EQ(a.trace->horizon, b.trace->horizon);
    EXPECT_EQ(a.trace->series, b.trace->series);
  }
  EXPECT_EQ(opts.cache->stats().hits, 1u);

  // A different workload is a different problem — no false sharing.
  core::Analysis other(schedulerNet(models::kFairQueueBuggy, "fq", 2), opts);
  other.setWorkload(core::Workload{});
  const core::AnalysisResult c = other.check(query);
  EXPECT_FALSE(c.cached);
  EXPECT_NE(c.cacheKey, a.cacheKey);
}

// ---------------------------------------------------------------------------
// Synthesizer negative cache

TEST(SynthCache, DuplicateCandidatesHitNegativeCache) {
  core::AnalysisOptions opts;
  opts.horizon = 4;
  synth::Synthesizer synthesizer(
      schedulerNet(models::kStrictPriority, "sp", 2), opts);
  const core::Query query = core::Query::expr("sp.cdeq.0[T-1] == T");

  // "None" appears twice: the duplicated assignments produce structurally
  // identical workload constraint sets, so every prescreen-rejected
  // candidate's twin must be decided from the negative cache.
  synth::SynthesisOptions sopts;
  sopts.grammar = {synth::Pattern::None, synth::Pattern::None,
                   synth::Pattern::ExactlyOnePerStep};
  const auto cached = synthesizer.run(query, sopts);
  EXPECT_GT(cached.prescreenCacheHits, 0);

  synth::SynthesisOptions nocache = sopts;
  nocache.negativeCache = false;
  const auto plain = synthesizer.run(query, nocache);
  EXPECT_EQ(plain.prescreenCacheHits, 0);

  // Identical reports either way: same solutions, same conclusive counts.
  ASSERT_EQ(cached.solutions.size(), plain.solutions.size());
  for (std::size_t i = 0; i < cached.solutions.size(); ++i) {
    EXPECT_EQ(cached.solutions[i].describe(), plain.solutions[i].describe());
  }
  EXPECT_EQ(cached.solvedCount, plain.solvedCount);
  EXPECT_EQ(cached.prescreenRejected, plain.prescreenRejected);
}

// ---------------------------------------------------------------------------
// End-to-end differential: cold vs warm through the CLI

struct CommandResult {
  int exitCode = -1;
  std::string output;
};

CommandResult runCli(const std::string& args) {
  const std::string command =
      std::string(BUFFY_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return {};
  CommandResult result;
  std::array<char, 4096> buffer{};
  std::size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), n);
  }
  const int status = pclose(pipe);
  result.exitCode = WEXITSTATUS(status);
  return result;
}

std::string model(const char* name) {
  return std::string(BUFFY_MODELS_DIR) + "/" + name + ".bfy";
}

/// Extracts the value of a top-level-ish JSON string field (the reports
/// are flat enough for a textual scan).
std::string jsonField(const std::string& json, const std::string& field) {
  const std::string needle = "\"" + field + "\":\"";
  const auto pos = json.find(needle);
  if (pos == std::string::npos) return {};
  const auto start = pos + needle.size();
  const auto end = json.find('"', start);
  return json.substr(start, end - start);
}

/// The "trace":{...} object, byte-for-byte (empty when absent).
std::string traceBlock(const std::string& json) {
  const auto pos = json.find("\"trace\":");
  if (pos == std::string::npos) return {};
  return json.substr(pos);
}

struct ModelConfig {
  const char* name;
  const char* args;
  const char* query;
};

// The golden_test per-model configurations: small horizons, every model.
constexpr ModelConfig kModels[] = {
    {"aimd",
     "-T 4 -D RTO=3 --input ind:8:2 --input inack:8:2 --output out:16 "
     "--output ackdrain:16",
     "aimd.mcwnd[T-1] >= 0"},
    {"delay_server", "-T 4 --input din:8:2 --output dout:16",
     "delay.mreleased[T-1] >= 0"},
    {"drr", "-T 4 -D N=2 -D QUANTUM=2 --input ibs:6:2 --output ob:16",
     "drr.bdeq.0[T-1] >= 0"},
    {"fq_buggy", "-T 5 -D N=2 --input ibs:6:3 --output ob:32",
     "fq.cdeq.0[T-1] >= T-1"},
    {"fq_fixed", "-T 5 -D N=2 --input ibs:6:3 --output ob:32",
     "fq.cdeq.0[T-1] >= T-1"},
    {"path_server",
     "-T 4 -D RATE=1 -D BUCKET=2 --input pin:8:2 --output pout:16",
     "path.mserved[T-1] >= 0"},
    {"round_robin", "-T 4 -D N=2 --input ibs:6:2 --output ob:16",
     "rr.cdeq.0[T-1] >= 0"},
    {"strict_priority", "-T 4 -D N=2 --input ibs:6:2 --output ob:16",
     "sp.cdeq.0[T-1] >= 0"},
};

TEST(CacheCli, ColdWarmVerdictsIdenticalAcrossModelsAndBackends) {
  for (const auto& m : kModels) {
    for (const char* backend : {"z3", "smtlib"}) {
      const std::string dir =
          freshDir((std::string("cli_") + m.name + "_" + backend).c_str());
      const std::string cmd = std::string("check ") + m.args + " --query \"" +
                              m.query + "\" --backend " + backend +
                              " --cache-dir " + dir + " --json " +
                              model(m.name);
      const CommandResult cold = runCli(cmd);
      const CommandResult warm = runCli(cmd);
      SCOPED_TRACE(std::string(m.name) + " / " + backend);
      EXPECT_EQ(cold.exitCode, warm.exitCode) << warm.output;
      EXPECT_EQ(jsonField(cold.output, "verdict"),
                jsonField(warm.output, "verdict"))
          << cold.output << "\n----\n" << warm.output;
      EXPECT_NE(cold.output.find("\"cached\":false"), std::string::npos)
          << cold.output;
      EXPECT_NE(warm.output.find("\"cached\":true"), std::string::npos)
          << warm.output;
      // The witness trace replays byte-identically from the record.
      EXPECT_EQ(traceBlock(cold.output), traceBlock(warm.output));
    }
  }
}

TEST(CacheCli, RaceIsolateColdWarmIdentical) {
  const std::string dir = freshDir("race_isolate");
  const std::string cmd =
      "check -T 5 -D N=2 --input ibs:6:3 --output ob:32 "
      "--workload fq.ibs.0:0:1 --query \"fq.cdeq.0[T-1] >= T-1\" "
      "--race --isolate --cache-dir " +
      dir + " --json " + model("fq_buggy");
  const CommandResult cold = runCli(cmd);
  const CommandResult warm = runCli(cmd);
  EXPECT_EQ(cold.exitCode, warm.exitCode) << warm.output;
  EXPECT_EQ(jsonField(cold.output, "verdict"),
            jsonField(warm.output, "verdict"))
      << cold.output << "\n----\n" << warm.output;
  // The warm race is short-circuited by the pre-race probe: the synthetic
  // "cache" member is the sole, winning entrant.
  EXPECT_EQ(jsonField(warm.output, "winner"), "cache") << warm.output;
  EXPECT_EQ(traceBlock(cold.output), traceBlock(warm.output));
}

TEST(CacheCli, SweepShardsColdWarmIdentical) {
  const std::string dir = freshDir("sweep_shards");
  const std::string cmd =
      "check -D N=2 --input ibs:6:3 --output ob:32 "
      "--workload fq.ibs.0:0:1 --query \"fq.cdeq.0[T-1] >= T-1\" "
      "--sweep 2:5 --shards 2 --cache-dir " +
      dir + " --json " + model("fq_buggy");
  const CommandResult cold = runCli(cmd);
  const CommandResult warm = runCli(cmd);
  EXPECT_EQ(cold.exitCode, warm.exitCode) << warm.output;
  // Identical per-point verdict sequences; every warm point is a hit.
  auto verdicts = [](const std::string& out) {
    std::string all;
    std::size_t pos = 0;
    while ((pos = out.find("\"verdict\":\"", pos)) != std::string::npos) {
      const auto start = pos + 11;
      const auto end = out.find('"', start);
      all += out.substr(start, end - start) + ";";
      pos = end;
    }
    return all;
  };
  EXPECT_EQ(verdicts(cold.output), verdicts(warm.output))
      << cold.output << "\n----\n" << warm.output;
  EXPECT_EQ(warm.output.find("\"cached\":false"), std::string::npos)
      << warm.output;
  EXPECT_NE(warm.output.find("\"hits\":4"), std::string::npos) << warm.output;
}

TEST(CacheCli, PoisonedCacheDirFallsBackCold) {
  const std::string dir = freshDir("poison");
  const std::string cmd =
      "check -T 5 -D N=2 --input ibs:6:3 --output ob:32 "
      "--workload fq.ibs.0:0:1 --query \"fq.cdeq.0[T-1] >= T-1\" "
      "--cache-dir " +
      dir + " --json " + model("fq_buggy");
  const CommandResult cold = runCli(cmd);
  // Corrupt every record in the directory (overwrite one payload byte).
  {
    const std::string script = "for f in " + dir +
                               "/*.bfc; do printf 'X' | dd of=\"$f\" bs=1 "
                               "seek=12 count=1 conv=notrunc 2>/dev/null; done";
    EXPECT_EQ(std::system(script.c_str()), 0);
  }
  const CommandResult warm = runCli(cmd);
  EXPECT_EQ(cold.exitCode, warm.exitCode) << warm.output;
  EXPECT_EQ(jsonField(cold.output, "verdict"),
            jsonField(warm.output, "verdict"));
  // The poisoned record was detected, never served.
  EXPECT_NE(warm.output.find("\"cached\":false"), std::string::npos)
      << warm.output;
  EXPECT_NE(warm.output.find("\"validationFailures\":1"), std::string::npos)
      << warm.output;
}

TEST(CacheCli, FlagValidationExitsTwo) {
  const std::string m = model("fq_buggy");
  // Missing directory.
  EXPECT_EQ(runCli("check --cache-dir /nonexistent/definitely " + m).exitCode,
            2);
  // A file is not a directory.
  const std::string dir = freshDir("flags");
  const std::string file = dir + "/afile";
  { std::ofstream(file) << "x"; }
  EXPECT_EQ(runCli("check --cache-dir " + file + " " + m).exitCode, 2);
  // Unwritable directory (root bypasses permission checks — skip there).
  if (::geteuid() != 0) {
    const std::string ro = freshDir("ro");
    ::chmod(ro.c_str(), 0555);
    EXPECT_EQ(runCli("check --cache-dir " + ro + " " + m).exitCode, 2);
    ::chmod(ro.c_str(), 0755);
  }
  // Bad sizes: zero, negative, junk, trailing junk.
  for (const char* bad : {"0", "-5", "junk", "12mb", ""}) {
    EXPECT_EQ(runCli("check --cache-dir " + dir + " --cache-max-mb \"" +
                     std::string(bad) + "\" " + m)
                  .exitCode,
              2)
        << bad;
  }
  // --cache-max-mb without --cache-dir, and --no-cache conflicts.
  EXPECT_EQ(runCli("check --cache-max-mb 10 " + m).exitCode, 2);
  EXPECT_EQ(runCli("check --no-cache --cache-dir " + dir + " " + m).exitCode,
            2);
  EXPECT_EQ(runCli("check --no-cache --cache-verify " + m).exitCode, 2);
}

TEST(CacheCli, NoCacheDisablesReporting) {
  const CommandResult r = runCli(
      "check -T 4 -D N=2 --input ibs:6:2 --output ob:16 "
      "--query \"sp.cdeq.0[T-1] >= 0\" --no-cache --json " +
      model("strict_priority"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_EQ(r.output.find("\"cache\":{"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("\"cacheKey\""), std::string::npos) << r.output;
}

TEST(CacheCli, CacheVerifyReplaysWitnessOnHit) {
  const std::string dir = freshDir("verify_hit");
  const std::string cmd =
      "check -T 5 -D N=2 --input ibs:6:3 --output ob:32 "
      "--workload fq.ibs.0:0:1 --query \"fq.cdeq.0[T-1] >= T-1\" "
      "--cache-dir " +
      dir + " --cache-verify --json " + model("fq_buggy");
  const CommandResult cold = runCli(cmd);
  const CommandResult warm = runCli(cmd);
  EXPECT_EQ(jsonField(warm.output, "verdict"),
            jsonField(cold.output, "verdict"));
  EXPECT_NE(warm.output.find("\"cached\":true"), std::string::npos)
      << warm.output;
  EXPECT_NE(warm.output.find("\"witnessChecked\":true"), std::string::npos)
      << warm.output;
}

}  // namespace
}  // namespace buffy
