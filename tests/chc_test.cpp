// Tests of the CHC/Spacer backend: unbounded-horizon safety proofs.
#include "backends/chc/chc_backend.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "support/error.hpp"

namespace buffy::backends {
namespace {

using buffy::testing::schedulerNet;

core::Network rrNet() {
  return schedulerNet(models::kRoundRobin, "rr", 2, /*capacity=*/4,
                      /*maxArrivals=*/2);
}

TEST(Chc, ProvesSimpleInvariants) {
  UnboundedAnalysis analysis(rrNet());
  EXPECT_TRUE(analysis.prove("rr.cdeq.0[0] >= 0").proved());
  EXPECT_TRUE(analysis
                  .prove("rr.ibs.0.pkts[0] >= 0 & rr.ibs.0.pkts[0] <= 4")
                  .proved());
  EXPECT_TRUE(analysis.prove("rr.next[0] >= 0 & rr.next[0] < 2").proved());
}

TEST(Chc, ProvesConservationUnbounded) {
  // The property whose *bounded* proof cost explodes exponentially in T
  // (Figure 6); Spacer proves it for ALL T at once.
  UnboundedAnalysis analysis(rrNet());
  const auto result = analysis.prove(
      "rr.ibs.0.arrivedTotal[0] + rr.ibs.1.arrivedTotal[0] == "
      "rr.ob.outTotal[0] + rr.ibs.0.pkts[0] + rr.ibs.1.pkts[0] + "
      "rr.ibs.0.dropped[0] + rr.ibs.1.dropped[0] + rr.ob.pkts[0] + "
      "rr.ob.dropped[0]");
  EXPECT_TRUE(result.proved()) << result.detail;
}

TEST(Chc, RefutesFalseProperty) {
  UnboundedAnalysis analysis(rrNet());
  // cdeq grows without bound, so any constant cap is eventually violated.
  const auto result = analysis.prove("rr.cdeq.0[0] < 3");
  EXPECT_EQ(result.status, ChcStatus::Violated);
}

TEST(Chc, WorkGuaranteeUnderWorkload) {
  // With queue 0 receiving exactly one packet per step (as a per-step
  // workload rule), service keeps up: its backlog never exceeds 1.
  core::TransitionOptions opts;
  opts.stepWorkload.add(core::Workload::perStepCount("sp.ibs.0", 1, 1));
  UnboundedAnalysis analysis(
      schedulerNet(models::kStrictPriority, "sp", 2, 4, 2), opts);
  EXPECT_TRUE(analysis.prove("sp.ibs.0.pkts[0] <= 1").proved());
  // ...but queue 1's backlog is NOT bounded by any constant.
  EXPECT_EQ(analysis.prove("sp.ibs.1.pkts[0] <= 3").status,
            ChcStatus::Violated);
}

TEST(Chc, InProgramAssertsChecked) {
  core::ProgramSpec spec;
  spec.instance = "p";
  spec.source = R"(
p(buffer a, buffer b) {
  global monitor int steps;
  steps = steps + 1;
  assert(steps >= 1);
})";
  spec.buffers = {
      {.param = "a", .role = core::BufferSpec::Role::Input, .capacity = 2},
      {.param = "b", .role = core::BufferSpec::Role::Output, .capacity = 2},
  };
  core::Network net;
  net.add(spec);
  {
    UnboundedAnalysis ok(net);
    EXPECT_TRUE(ok.prove(core::Query::always()).proved());
  }
  core::ProgramSpec bad = spec;
  bad.source = R"(
p(buffer a, buffer b) {
  global monitor int steps;
  steps = steps + 1;
  assert(steps <= 3);
})";
  core::Network badNet;
  badNet.add(bad);
  {
    UnboundedAnalysis failing(badNet);
    // Violated at step 4 — unreachable for any bounded check with T <= 3,
    // but the CHC backend has no horizon.
    EXPECT_EQ(failing.prove(core::Query::always()).status,
              ChcStatus::Violated);
  }
}

TEST(Chc, FqListInvariants) {
  // The FQ pointer lists stay within capacity forever.
  UnboundedAnalysis analysis(
      schedulerNet(models::kFairQueueBuggy, "fq", 2, 4, 2));
  EXPECT_TRUE(
      analysis.prove("fq.nq.len[0] >= 0 & fq.nq.len[0] <= 2").proved());
  EXPECT_TRUE(
      analysis.prove("fq.oq.len[0] >= 0 & fq.oq.len[0] <= 2").proved());
}

TEST(Chc, CompositionSupported) {
  // Two forwarders in a chain: total egress never exceeds total ingress,
  // over an unbounded horizon, across the composition.
  const char* fwd = R"(
fwd(buffer src, buffer snk) {
  move-p(src, snk, backlog-p(src));
})";
  auto spec = [&](const char* inst) {
    core::ProgramSpec s;
    s.instance = inst;
    s.source = fwd;
    s.buffers = {
        {.param = "src", .role = core::BufferSpec::Role::Input,
         .capacity = 4, .maxArrivalsPerStep = 2},
        {.param = "snk", .role = core::BufferSpec::Role::Output,
         .capacity = 4},
    };
    return s;
  };
  core::Network net;
  net.add(spec("a")).add(spec("b"));
  net.connect("a", "snk", "b", "src");
  UnboundedAnalysis analysis(net);
  EXPECT_TRUE(
      analysis.prove("b.snk.outTotal[0] <= a.src.arrivedTotal[0]").proved());
}

TEST(Chc, NonBooleanPropertyRejected) {
  UnboundedAnalysis analysis(rrNet());
  EXPECT_THROW(analysis.prove("rr.cdeq.0[0] + 1"), Error);
}

TEST(Chc, StateNamesExposed) {
  UnboundedAnalysis analysis(rrNet());
  const auto names = analysis.stateNames();
  EXPECT_EQ(names.size(), 12u);
}

TEST(Chc, StatusNames) {
  EXPECT_STREQ(chcStatusName(ChcStatus::Proved), "PROVED");
  EXPECT_STREQ(chcStatusName(ChcStatus::Violated), "VIOLATED");
  EXPECT_STREQ(chcStatusName(ChcStatus::Unknown), "UNKNOWN");
}

}  // namespace
}  // namespace buffy::backends
