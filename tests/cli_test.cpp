// End-to-end tests of the `buffy` command-line driver (tools/buffy_cli).
#include <array>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace {

#ifndef BUFFY_CLI_PATH
#error "BUFFY_CLI_PATH must be defined by the build"
#endif
#ifndef BUFFY_MODELS_DIR
#error "BUFFY_MODELS_DIR must be defined by the build"
#endif

struct CommandResult {
  int exitCode = -1;
  std::string output;
};

CommandResult runCli(const std::string& args) {
  const std::string command =
      std::string(BUFFY_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return {};
  CommandResult result;
  std::array<char, 4096> buffer{};
  std::size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), n);
  }
  const int status = pclose(pipe);
  result.exitCode = WEXITSTATUS(status);
  return result;
}

std::string model(const char* name) {
  return std::string(BUFFY_MODELS_DIR) + "/" + name;
}

TEST(Cli, PrintRoundTrips) {
  const auto result =
      runCli("print -D N=2 " + model("strict_priority.bfy"));
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_NE(result.output.find("sp(buffer[2] ibs, buffer ob)"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("move-p(ibs[i], ob, 1);"), std::string::npos);
}

TEST(Cli, CheckFindsStarvation) {
  const auto result = runCli(
      "check -T 5 -D N=2 --instance fq --input ibs:6:3 --output ob:32 "
      "--workload fq.ibs.0:0:1 --workload fq.ibs.1@0:3:3 "
      "--workload fq.ibs.1@1:0:0 --workload fq.ibs.1@2:0:0 "
      "--workload fq.ibs.1@3:0:0 --workload fq.ibs.1@4:0:0 "
      "--query \"fq.cdeq.0[T-1] >= T-1 & fq.cdeq.1[T-1] <= 1\" " +
      model("fq_buggy.bfy"));
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_NE(result.output.find("SATISFIABLE"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("fq.cdeq.0"), std::string::npos);
}

TEST(Cli, VerifyRoundRobinFairness) {
  const auto result = runCli(
      "verify -T 4 -D N=2 --instance rr --input ibs:6:2 --output ob:32 "
      "--workload rr.ibs.0:1:2 --workload rr.ibs.1:1:2 "
      "--query \"rr.cdeq.0[T-1] <= T/2 + 1\" " +
      model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_NE(result.output.find("VERIFIED"), std::string::npos)
      << result.output;
}

TEST(Cli, SimulateProducesTrace) {
  const auto result = runCli(
      "simulate -T 3 -D N=2 --instance rr --input ibs:4:2 --output ob:16 "
      "--arrive rr.ibs.0=1,1,1 " +
      model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_NE(result.output.find("rr.cdeq.0"), std::string::npos);
  EXPECT_NE(result.output.find("t2"), std::string::npos);
}

TEST(Cli, EmitSmt2) {
  const auto result = runCli(
      "emit-smt2 -T 3 -D N=2 --instance sp --input ibs:4:2 --output ob:16 "
      "--query \"sp.cdeq.0[T-1] >= 1\" " +
      model("strict_priority.bfy"));
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_NE(result.output.find("(set-logic QF_LIA)"), std::string::npos);
  EXPECT_NE(result.output.find("(check-sat)"), std::string::npos);
}

TEST(Cli, EmitDafny) {
  const auto result = runCli("emit-dafny -T 2 -D N=2 --input ibs:4:2 " +
                             model("fq_buggy.bfy"));
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_NE(result.output.find("method CheckFq()"), std::string::npos)
      << result.output;
}

TEST(Cli, UnrollFlagPrintsUnrolledProgram) {
  const auto result =
      runCli("print --unroll -D N=2 " + model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_EQ(result.output.find("for ("), std::string::npos) << result.output;
}

TEST(Cli, ProveUnbounded) {
  // Listing state variables...
  const auto listing = runCli(
      "prove -D N=2 --instance rr --input ibs:4:2 --output ob:16 " +
      model("round_robin.bfy"));
  EXPECT_EQ(listing.exitCode, 0) << listing.output;
  EXPECT_NE(listing.output.find("rr.cdeq.0"), std::string::npos);
  // ...and proving an invariant for an unbounded horizon.
  const auto proof = runCli(
      "prove -D N=2 --instance rr --input ibs:4:2 --output ob:16 "
      "--model counter --query \"rr.cdeq.0[0] >= 0\" " +
      model("round_robin.bfy"));
  EXPECT_EQ(proof.exitCode, 0) << proof.output;
  EXPECT_NE(proof.output.find("PROVED"), std::string::npos) << proof.output;
}

TEST(Cli, LintCommand) {
  const auto clean = runCli("lint -D N=2 --input ibs --output ob " +
                            model("round_robin.bfy"));
  EXPECT_EQ(clean.exitCode, 0) << clean.output;
  EXPECT_NE(clean.output.find("clean"), std::string::npos);
}

TEST(Cli, CsvFormat) {
  const auto result = runCli(
      "simulate -T 2 -D N=2 --instance rr --input ibs:4:2 --output ob:16 "
      "--arrive rr.ibs.0=1,1 --format csv " +
      model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_NE(result.output.find("series,t0,t1"), std::string::npos);
  EXPECT_NE(result.output.find("rr.cdeq.0,1,2"), std::string::npos);
}

TEST(Cli, BadUsageErrors) {
  EXPECT_EQ(runCli("").exitCode, 64);
  EXPECT_EQ(runCli("check").exitCode, 64);
  EXPECT_EQ(runCli("frobnicate " + model("round_robin.bfy")).exitCode, 64);
  EXPECT_EQ(runCli("check --query \"x[0] > 0\" /nonexistent.bfy").exitCode,
            64);
  // Semantic failure (missing constant binding) is a normal error (1).
  const auto result =
      runCli("check --instance rr --input ibs --output ob --query "
             "\"rr.cdeq.0[0] >= 0\" " +
             model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 1) << result.output;
}

}  // namespace
