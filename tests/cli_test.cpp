// End-to-end tests of the `buffy` command-line driver (tools/buffy_cli).
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace {

#ifndef BUFFY_CLI_PATH
#error "BUFFY_CLI_PATH must be defined by the build"
#endif
#ifndef BUFFY_MODELS_DIR
#error "BUFFY_MODELS_DIR must be defined by the build"
#endif

struct CommandResult {
  int exitCode = -1;
  std::string output;
};

CommandResult runCli(const std::string& args) {
  const std::string command =
      std::string(BUFFY_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return {};
  CommandResult result;
  std::array<char, 4096> buffer{};
  std::size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), n);
  }
  const int status = pclose(pipe);
  result.exitCode = WEXITSTATUS(status);
  return result;
}

std::string model(const char* name) {
  return std::string(BUFFY_MODELS_DIR) + "/" + name;
}

std::string corpusFile(const char* name) {
  return std::string(BUFFY_TESTS_CORPUS_DIR) + "/" + name;
}

/// Writes `source` under the test temp dir and returns the path.
std::string writeTemp(const char* name, const std::string& source) {
  const std::string path =
      testing::TempDir() + "buffy_cli_" + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f != nullptr) {
    std::fwrite(source.data(), 1, source.size(), f);
    std::fclose(f);
  }
  return path;
}

TEST(Cli, PrintRoundTrips) {
  const auto result =
      runCli("print -D N=2 " + model("strict_priority.bfy"));
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_NE(result.output.find("sp(buffer[2] ibs, buffer ob)"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("move-p(ibs[i], ob, 1);"), std::string::npos);
}

TEST(Cli, WarmCacheRepeatsVerdict) {
  // Tier-1 smoke for the verdict cache (DESIGN.md §14): the second run
  // answers from the --cache-dir record with the identical verdict.
  const std::string dir = testing::TempDir() + "buffy_cli_cache_smoke_" +
                          std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  const std::string cmd =
      "check -T 4 -D N=2 --input ibs:6:2 --output ob:16 "
      "--query \"sp.cdeq.0[T-1] >= 0\" --cache-dir " +
      dir + " --json " + model("strict_priority.bfy");
  const auto cold = runCli(cmd);
  const auto warm = runCli(cmd);
  EXPECT_EQ(cold.exitCode, 0) << cold.output;
  EXPECT_EQ(warm.exitCode, 0) << warm.output;
  EXPECT_NE(cold.output.find("\"cached\":false"), std::string::npos)
      << cold.output;
  EXPECT_NE(warm.output.find("\"cached\":true"), std::string::npos)
      << warm.output;
  EXPECT_NE(warm.output.find("\"verdict\":\"SATISFIABLE\""),
            std::string::npos)
      << warm.output;
}

TEST(Cli, CheckFindsStarvation) {
  const auto result = runCli(
      "check -T 5 -D N=2 --instance fq --input ibs:6:3 --output ob:32 "
      "--workload fq.ibs.0:0:1 --workload fq.ibs.1@0:3:3 "
      "--workload fq.ibs.1@1:0:0 --workload fq.ibs.1@2:0:0 "
      "--workload fq.ibs.1@3:0:0 --workload fq.ibs.1@4:0:0 "
      "--query \"fq.cdeq.0[T-1] >= T-1 & fq.cdeq.1[T-1] <= 1\" " +
      model("fq_buggy.bfy"));
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_NE(result.output.find("SATISFIABLE"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("fq.cdeq.0"), std::string::npos);
}

TEST(Cli, VerifyRoundRobinFairness) {
  const auto result = runCli(
      "verify -T 4 -D N=2 --instance rr --input ibs:6:2 --output ob:32 "
      "--workload rr.ibs.0:1:2 --workload rr.ibs.1:1:2 "
      "--query \"rr.cdeq.0[T-1] <= T/2 + 1\" " +
      model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_NE(result.output.find("VERIFIED"), std::string::npos)
      << result.output;
}

TEST(Cli, SimulateProducesTrace) {
  const auto result = runCli(
      "simulate -T 3 -D N=2 --instance rr --input ibs:4:2 --output ob:16 "
      "--arrive rr.ibs.0=1,1,1 " +
      model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_NE(result.output.find("rr.cdeq.0"), std::string::npos);
  EXPECT_NE(result.output.find("t2"), std::string::npos);
}

TEST(Cli, EmitSmt2) {
  const auto result = runCli(
      "emit-smt2 -T 3 -D N=2 --instance sp --input ibs:4:2 --output ob:16 "
      "--query \"sp.cdeq.0[T-1] >= 1\" " +
      model("strict_priority.bfy"));
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_NE(result.output.find("(set-logic QF_LIA)"), std::string::npos);
  EXPECT_NE(result.output.find("(check-sat)"), std::string::npos);
}

TEST(Cli, EmitDafny) {
  const auto result = runCli("emit-dafny -T 2 -D N=2 --input ibs:4:2 " +
                             model("fq_buggy.bfy"));
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_NE(result.output.find("method CheckFq()"), std::string::npos)
      << result.output;
}

TEST(Cli, UnrollFlagPrintsUnrolledProgram) {
  const auto result =
      runCli("print --unroll -D N=2 " + model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_EQ(result.output.find("for ("), std::string::npos) << result.output;
}

TEST(Cli, ProveUnbounded) {
  // Listing state variables...
  const auto listing = runCli(
      "prove -D N=2 --instance rr --input ibs:4:2 --output ob:16 " +
      model("round_robin.bfy"));
  EXPECT_EQ(listing.exitCode, 0) << listing.output;
  EXPECT_NE(listing.output.find("rr.cdeq.0"), std::string::npos);
  // ...and proving an invariant for an unbounded horizon.
  const auto proof = runCli(
      "prove -D N=2 --instance rr --input ibs:4:2 --output ob:16 "
      "--model counter --query \"rr.cdeq.0[0] >= 0\" " +
      model("round_robin.bfy"));
  EXPECT_EQ(proof.exitCode, 0) << proof.output;
  EXPECT_NE(proof.output.find("PROVED"), std::string::npos) << proof.output;
}

TEST(Cli, LintCommand) {
  const auto clean = runCli("lint -D N=2 --input ibs --output ob " +
                            model("round_robin.bfy"));
  EXPECT_EQ(clean.exitCode, 0) << clean.output;
  EXPECT_NE(clean.output.find("clean"), std::string::npos);
}

TEST(Cli, JobsFlagIsDeterministic) {
  // Multi-file compilation fans out across a JobPool; --jobs N must
  // produce byte-identical output and exit code to --jobs 1 (DESIGN.md
  // §16 determinism rule). Mix clean and broken inputs so both the
  // diagnostic and success paths are exercised.
  const std::string files = model("round_robin.bfy") + " " +
                            model("strict_priority.bfy") + " " +
                            corpusFile("multi_err.bfy") + " " +
                            model("delay_server.bfy");
  const std::string flags = "lint -D N=2 -D RTO=3 ";
  const auto serial = runCli(flags + "--jobs 1 " + files);
  const auto parallel = runCli(flags + "--jobs 4 " + files);
  EXPECT_EQ(serial.exitCode, 2) << serial.output;
  EXPECT_EQ(parallel.exitCode, serial.exitCode);
  EXPECT_EQ(parallel.output, serial.output);

  const std::string cleanFiles =
      model("round_robin.bfy") + " " + model("strict_priority.bfy");
  const auto printSerial =
      runCli("print -D N=2 --jobs 1 " + cleanFiles);
  const auto printParallel =
      runCli("print -D N=2 --jobs 4 " + cleanFiles);
  EXPECT_EQ(printSerial.exitCode, 0) << printSerial.output;
  EXPECT_EQ(printParallel.output, printSerial.output);
}

TEST(Cli, CsvFormat) {
  const auto result = runCli(
      "simulate -T 2 -D N=2 --instance rr --input ibs:4:2 --output ob:16 "
      "--arrive rr.ibs.0=1,1 --format csv " +
      model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_NE(result.output.find("series,t0,t1"), std::string::npos);
  EXPECT_NE(result.output.find("rr.cdeq.0,1,2"), std::string::npos);
}

TEST(Cli, BadUsageErrors) {
  EXPECT_EQ(runCli("").exitCode, 2);
  EXPECT_EQ(runCli("check").exitCode, 2);
  EXPECT_EQ(runCli("frobnicate " + model("round_robin.bfy")).exitCode, 2);
  EXPECT_EQ(runCli("check --query \"x[0] > 0\" /nonexistent.bfy").exitCode,
            2);
  // Semantic failure (missing constant binding) is an input error too.
  const auto result =
      runCli("check --instance rr --input ibs --output ob --query "
             "\"rr.cdeq.0[0] >= 0\" " +
             model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 2) << result.output;
}

// --- Resilience exit paths (DESIGN.md §8), driven via the hidden
// --- --inject-fault test seam.

namespace resilience {

const char* kCheckArgs =
    "check -T 4 -D N=2 --instance rr --input ibs:4:2 --output ob:16 "
    "--workload rr.ibs.0:1:1 --workload rr.ibs.1:0:1 "
    "--query \"rr.cdeq.0[T-1] >= 1\" ";

}  // namespace resilience

TEST(Cli, ExitCodeUnknownAfterLadderExhaustion) {
  // Force every rung of the retry ladder (initial, reseed, escalate is
  // skipped without an rlimit/timeout... so pin an rlimit to enable it,
  // then kill all four attempts).
  const auto result = runCli(
      std::string(resilience::kCheckArgs) + "--rlimit 100000000 " +
      "--inject-fault 0:unknown --inject-fault 1:unknown "
      "--inject-fault 2:unknown --inject-fault 3:unknown " +
      model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 3) << result.output;
  EXPECT_NE(result.output.find("UNKNOWN"), std::string::npos) << result.output;
  // The attempt log names every rung.
  EXPECT_NE(result.output.find("initial"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("reseed"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("escalate"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("smtlib"), std::string::npos) << result.output;
}

TEST(Cli, RetryLadderRecoversFromTransientUnknown) {
  // Only the initial attempt fails; the reseed rung answers.
  const auto result =
      runCli(std::string(resilience::kCheckArgs) + "--inject-fault 0:unknown " +
             model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_NE(result.output.find("SATISFIABLE"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("reseed"), std::string::npos) << result.output;
}

TEST(Cli, ExitCodeInternalOnSolverCrash) {
  const auto result =
      runCli(std::string(resilience::kCheckArgs) +
             "--inject-fault 0:throw:solver-crash " + model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 4) << result.output;
  EXPECT_NE(result.output.find("solver-crash"), std::string::npos)
      << result.output;
}

TEST(Cli, ExitCodeViolationOnWitnessMismatch) {
  const auto result = runCli(std::string(resilience::kCheckArgs) +
                             "--inject-fault 0:corrupt-witness " +
                             model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 1) << result.output;
  EXPECT_NE(result.output.find("WITNESS-MISMATCH"), std::string::npos)
      << result.output;
}

TEST(Cli, JsonFormatCarriesVerdictAndAttempts) {
  const auto result =
      runCli(std::string(resilience::kCheckArgs) +
             "--format json --inject-fault 0:unknown:flaky " +
             model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_NE(result.output.find("\"verdict\":\"SATISFIABLE\""),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("\"exitCode\":0"), std::string::npos);
  EXPECT_NE(result.output.find("\"stage\":\"reseed\""), std::string::npos);
  EXPECT_NE(result.output.find("\"reason\":\"flaky\""), std::string::npos);
  EXPECT_NE(result.output.find("\"witnessChecked\":true"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("\"trace\":{"), std::string::npos);
}

TEST(Cli, JsonFormatCarriesOptBlock) {
  const auto result =
      runCli(std::string(resilience::kCheckArgs) + "--format json " +
             model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_NE(result.output.find("\"opt\":{"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("\"nodesBefore\":"), std::string::npos);
  EXPECT_NE(result.output.find("\"assertionsSliced\":"), std::string::npos);
  EXPECT_NE(result.output.find("\"pass\":\"rewrite\""), std::string::npos);
}

TEST(Cli, StageTimingsCarryPipelineBlock) {
  // --json --stage-timings: per-stage accounting from the one shared
  // CompilerDriver front half, plus encode/optimize/solve rows.
  const auto result =
      runCli(std::string(resilience::kCheckArgs) +
             "--json --stage-timings " + model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_NE(result.output.find("\"pipeline\":["), std::string::npos)
      << result.output;
  for (const char* stage : {"parse", "typecheck", "sem", "inline",
                            "constfold", "recheck", "encode", "solve"}) {
    EXPECT_NE(result.output.find(std::string("\"stage\":\"") + stage + "\""),
              std::string::npos)
        << stage << "\n"
        << result.output;
  }
  // Without the flag the block stays out of the json.
  const auto quiet = runCli(std::string(resilience::kCheckArgs) +
                            "--json " + model("round_robin.bfy"));
  EXPECT_EQ(quiet.output.find("\"pipeline\":["), std::string::npos)
      << quiet.output;
}

TEST(Cli, BackendSelectsSmtLibPath) {
  const auto result = runCli(std::string(resilience::kCheckArgs) +
                             "--backend smtlib " + model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_NE(result.output.find("SATISFIABLE"), std::string::npos)
      << result.output;
}

TEST(Cli, BackendCapabilityMismatchIsUsageError) {
  // dafny registers emit-only: asking it to solve is a usage error (2).
  const auto result = runCli(std::string(resilience::kCheckArgs) +
                             "--backend dafny " + model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 2) << result.output;
  EXPECT_NE(result.output.find("cannot solve queries"), std::string::npos)
      << result.output;
}

TEST(Cli, UnknownBackendIsUsageError) {
  const auto result = runCli(std::string(resilience::kCheckArgs) +
                             "--backend cvc5 " + model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 2) << result.output;
  EXPECT_NE(result.output.find("unknown backend 'cvc5'"), std::string::npos)
      << result.output;
}

TEST(Cli, NoOptDisablesOptimizer) {
  // --no-opt: same verdict, no opt accounting in the json.
  const auto on =
      runCli(std::string(resilience::kCheckArgs) + "--format json " +
             model("round_robin.bfy"));
  const auto off =
      runCli(std::string(resilience::kCheckArgs) + "--format json --no-opt " +
             model("round_robin.bfy"));
  EXPECT_EQ(on.exitCode, 0) << on.output;
  EXPECT_EQ(off.exitCode, 0) << off.output;
  EXPECT_NE(on.output.find("\"verdict\":\"SATISFIABLE\""), std::string::npos);
  EXPECT_NE(off.output.find("\"verdict\":\"SATISFIABLE\""),
            std::string::npos)
      << off.output;
  EXPECT_EQ(off.output.find("\"opt\":{"), std::string::npos) << off.output;
}

// --- Compiler hardening (DESIGN.md §10): batched diagnostics, budget
// --- governor exit paths.

TEST(Cli, LintBatchesMultipleDiagnostics) {
  // >= 3 distinct syntax/type errors -> >= 3 located diagnostics in ONE
  // run, exit code 2 (the ISSUE acceptance scenario).
  const auto result = runCli("lint " + corpusFile("multi_err.bfy"));
  EXPECT_EQ(result.exitCode, 2) << result.output;
  std::size_t located = 0;
  for (std::size_t at = result.output.find(": error: ");
       at != std::string::npos; at = result.output.find(": error: ", at + 1)) {
    ++located;
  }
  EXPECT_GE(located, 3u) << result.output;
}

TEST(Cli, CheckReportsAllFrontEndErrorsBeforeFailing) {
  // Non-lint commands run the same batched front half and refuse to
  // continue, still showing every diagnostic.
  const auto result = runCli("check --query \"x[0] >= 0\" " +
                             corpusFile("multi_err.bfy"));
  EXPECT_EQ(result.exitCode, 2) << result.output;
  EXPECT_NE(result.output.find("4:"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("5:"), std::string::npos) << result.output;
}

TEST(Cli, UnrollBombExitsWithBudgetCode) {
  const std::string bomb = writeTemp(
      "bomb.bfy",
      "bomb() {\n"
      "  global int x;\n"
      "  for (i in 0..1000000000) do { x = x + 1; }\n"
      "}\n");
  const auto result =
      runCli("check --query \"bomb.x[0] >= 0\" --instance bomb " + bomb);
  EXPECT_EQ(result.exitCode, 5) << result.output;
  EXPECT_NE(result.output.find("budget exceeded"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("--max-"), std::string::npos) << result.output;
}

TEST(Cli, BudgetJsonStatus) {
  const std::string bomb = writeTemp(
      "bomb_json.bfy",
      "bomb() {\n"
      "  global int x;\n"
      "  for (i in 0..1000000000) do { x = x + 1; }\n"
      "}\n");
  const auto result = runCli(
      "check --format json --query \"bomb.x[0] >= 0\" --instance bomb " +
      bomb);
  EXPECT_EQ(result.exitCode, 5) << result.output;
  EXPECT_NE(result.output.find("\"verdict\":\"BUDGET-EXCEEDED\""),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("\"exitCode\":5"), std::string::npos);
  EXPECT_NE(result.output.find("\"resource\":"), std::string::npos);
  EXPECT_NE(result.output.find("\"limit\":"), std::string::npos);
}

TEST(Cli, MaxFlagsTightenAndNoBudgetLifts) {
  // The same clean program: fine by default, over a --max-depth 2 cap,
  // and fine again under --no-budget.
  const auto ok = runCli("lint " + corpusFile("clean.bfy"));
  EXPECT_EQ(ok.exitCode, 0) << ok.output;
  const auto capped = runCli("lint --max-depth 2 " + corpusFile("clean.bfy"));
  EXPECT_EQ(capped.exitCode, 5) << capped.output;
  EXPECT_NE(capped.output.find("nesting-depth"), std::string::npos)
      << capped.output;
  const auto lifted =
      runCli("lint --no-budget " + corpusFile("clean.bfy"));
  EXPECT_EQ(lifted.exitCode, 0) << lifted.output;
}

TEST(Cli, DeepNestingRejectedStructurally) {
  std::string deep = "p() {\n  global int x;\n";
  for (int i = 0; i < 5000; ++i) deep += "if (x >= 0) {";
  deep += "x = 1;";
  for (int i = 0; i < 5000; ++i) deep += "}";
  deep += "\n}\n";
  const auto result = runCli("lint " + writeTemp("deep.bfy", deep));
  EXPECT_EQ(result.exitCode, 5) << result.output;
  EXPECT_NE(result.output.find("nesting-depth"), std::string::npos)
      << result.output;
}

TEST(Cli, JsonFormatOnUnknown) {
  const auto result = runCli(
      std::string(resilience::kCheckArgs) + "--format json --no-retry " +
      "--inject-fault 0:unknown:gave-up " + model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 3) << result.output;
  EXPECT_NE(result.output.find("\"verdict\":\"UNKNOWN\""), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("\"exitCode\":3"), std::string::npos);
  EXPECT_NE(result.output.find("\"detail\":\"gave-up\""), std::string::npos);
}

// --- Portfolio racing, horizon sweep, and workload synthesis
// --- (DESIGN.md §12).

namespace race {

struct ModelConfig {
  const char* name;
  const char* args;
  const char* query;
};

// One deterministic configuration per example model (mirrors the golden
// snapshot set): the differential acceptance — --race must report the
// same verdict as the single-backend engine on every one.
constexpr ModelConfig kModels[] = {
    {"aimd",
     "-T 4 -D RTO=3 --input ind:8:2 --input inack:8:2 --output out:16 "
     "--output ackdrain:16",
     "aimd.mcwnd[T-1] >= 0"},
    {"delay_server", "-T 4 --input din:8:2 --output dout:16",
     "delay.mreleased[T-1] >= 0"},
    {"drr", "-T 4 -D N=2 -D QUANTUM=2 --input ibs:6:2 --output ob:16",
     "drr.bdeq.0[T-1] >= 0"},
    {"fq_buggy", "-T 5 -D N=2 --input ibs:6:3 --output ob:32",
     "fq.cdeq.0[T-1] >= T-1"},
    {"fq_fixed", "-T 5 -D N=2 --input ibs:6:3 --output ob:32",
     "fq.cdeq.0[T-1] >= T-1"},
    {"path_server",
     "-T 4 -D RATE=1 -D BUCKET=2 --input pin:8:2 --output pout:16",
     "path.mserved[T-1] >= 0"},
    {"round_robin", "-T 4 -D N=2 --input ibs:6:2 --output ob:16",
     "rr.cdeq.0[T-1] >= 0"},
    {"strict_priority", "-T 4 -D N=2 --input ibs:6:2 --output ob:16",
     "sp.cdeq.0[T-1] >= 0"},
};

/// First word of the table report — the verdict name.
std::string verdict(const std::string& output) {
  return output.substr(0, output.find_first_of(" \n"));
}

}  // namespace race

TEST(Cli, RaceMatchesSingleBackendOnEveryModel) {
  for (const auto& m : race::kModels) {
    const std::string args = std::string("verify ") + m.args + " --query \"" +
                             m.query + "\" " + model((std::string(m.name) +
                                                      ".bfy").c_str());
    const auto serial = runCli(args);
    const auto raced = runCli(args + " --race --threads 2");
    EXPECT_EQ(raced.exitCode, serial.exitCode)
        << m.name << "\nserial: " << serial.output
        << "\nraced: " << raced.output;
    EXPECT_EQ(race::verdict(raced.output), race::verdict(serial.output))
        << m.name << "\nserial: " << serial.output
        << "\nraced: " << raced.output;
    EXPECT_NE(raced.output.find("race: winner="), std::string::npos)
        << raced.output;
  }
}

TEST(Cli, RaceJsonCarriesRaceBlock) {
  const auto result = runCli(
      "verify -T 4 -D N=2 --input ibs:6:2 --output ob:16 "
      "--query \"rr.cdeq.0[T-1] >= 0\" --race --format json " +
      model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_NE(result.output.find("\"race\":{\"winner\":\""), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("\"members\":["), std::string::npos);
  EXPECT_NE(result.output.find("\"name\":\"ladder\""), std::string::npos);
  EXPECT_NE(result.output.find("\"won\":true"), std::string::npos)
      << result.output;
}

TEST(Cli, RaceRequiresSolveCapability) {
  // dafny is emit-only: missing `solve` is a usage error naming the
  // capability.
  const auto result = runCli(std::string(resilience::kCheckArgs) +
                             "--race --backend dafny " +
                             model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 2) << result.output;
  EXPECT_NE(result.output.find("cannot solve queries"), std::string::npos)
      << result.output;
}

TEST(Cli, RaceRequiresIncrementalSessions) {
  // smtlib solves one-shot only: missing `incrementalSessions` is a usage
  // error naming the capability.
  const auto result = runCli(std::string(resilience::kCheckArgs) +
                             "--race --backend smtlib " +
                             model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 2) << result.output;
  EXPECT_NE(result.output.find("lacks incremental sessions"),
            std::string::npos)
      << result.output;
}

TEST(Cli, SweepRequiresIncrementalSessions) {
  const auto result = runCli(std::string(resilience::kCheckArgs) +
                             "--sweep 1:3 --backend smtlib " +
                             model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 2) << result.output;
  EXPECT_NE(result.output.find("lacks incremental sessions"),
            std::string::npos)
      << result.output;
}

TEST(Cli, SweepFlagValidation) {
  EXPECT_EQ(runCli(std::string(resilience::kCheckArgs) + "--shards 2 " +
                   model("round_robin.bfy"))
                .exitCode,
            2);
  EXPECT_EQ(runCli(std::string(resilience::kCheckArgs) +
                   "--race --sweep 1:3 " + model("round_robin.bfy"))
                .exitCode,
            2);
  EXPECT_EQ(runCli("simulate -T 3 -D N=2 --input ibs:4:2 --output ob "
                   "--sweep 1:3 " +
                   model("round_robin.bfy"))
                .exitCode,
            2);
}

TEST(Cli, SweepAnswersEveryHorizonForEveryQuery) {
  const auto result = runCli(
      "verify -T 4 -D N=2 --input ibs:6:2 --output ob:16 "
      "--workload rr.ibs.0:1:1 --query \"rr.cdeq.0[T-1] >= 1\" "
      "--query \"rr.cdeq.0[T-1] >= 0\" --sweep 1:3 --shards 2 "
      "--format json " +
      model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_NE(result.output.find("\"sweep\":{\"shards\":2"), std::string::npos)
      << result.output;
  // 3 horizons x 2 queries = 6 points, each VERIFIED.
  std::size_t points = 0;
  for (std::size_t at = result.output.find("\"horizon\":");
       at != std::string::npos;
       at = result.output.find("\"horizon\":", at + 1)) {
    ++points;
  }
  EXPECT_EQ(points, 6u) << result.output;
  EXPECT_EQ(result.output.find("\"verdict\":\"VIOLATED\""),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("\"incrementalQueries\":"), std::string::npos);
}

TEST(Cli, SweepExitCodeIsWorstPoint) {
  // An impossible guarantee: every point is VIOLATED, so the sweep exits
  // with the violation code.
  const auto result = runCli(
      "verify -T 4 -D N=2 --input ibs:6:2 --output ob:16 "
      "--query \"rr.cdeq.0[T-1] >= 9\" --sweep 1:2 " +
      model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 1) << result.output;
  EXPECT_NE(result.output.find("VIOLATED"), std::string::npos)
      << result.output;
}

TEST(Cli, SynthCommandReportsSolutionsAndPrescreen) {
  const std::string args =
      "synth -T 4 -D N=2 --input ibs:6:3 --output ob:32 "
      "--query \"fq.cdeq.0[T-1] >= 1\" --first-only ";
  const auto result = runCli(args + model("fq_fixed.bfy"));
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_NE(result.output.find("solution:"), std::string::npos)
      << result.output;
  // Prescreening decided candidates without the solver; --no-prescreen
  // must land on the same first solution.
  EXPECT_NE(result.output.find("prescreen:"), std::string::npos)
      << result.output;
  const auto noPrescreen =
      runCli(args + "--no-prescreen " + model("fq_fixed.bfy"));
  EXPECT_EQ(noPrescreen.exitCode, 0) << noPrescreen.output;
  const auto solutionAt = result.output.find("solution:");
  const auto solutionLine =
      result.output.substr(solutionAt, result.output.find('\n', solutionAt) -
                                           solutionAt);
  EXPECT_NE(noPrescreen.output.find(solutionLine), std::string::npos)
      << solutionLine << "\n"
      << noPrescreen.output;
}

TEST(Cli, SynthNoSolutionExitsOne) {
  const auto result = runCli(
      "synth -T 3 -D N=2 --input ibs:6:1 --output ob:16 "
      "--query \"rr.cdeq.0[T-1] >= 9\" " +
      model("round_robin.bfy"));
  EXPECT_EQ(result.exitCode, 1) << result.output;
  EXPECT_NE(result.output.find("0 solution(s)"), std::string::npos)
      << result.output;
}

}  // namespace
