#include "backends/dafny/dafny_emitter.hpp"

#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "lang/typecheck.hpp"
#include "models/library.hpp"
#include "support/error.hpp"
#include "transform/transforms.hpp"

namespace buffy::backends {
namespace {

lang::Ast compileFq(int n) {
  lang::Ast prog = lang::parse(models::kFairQueueBuggy);
  lang::CompileOptions opts;
  opts.constants["N"] = n;
  opts.defaultListCapacity = n;
  lang::checkOrThrow(prog, opts);
  transform::inlineFunctions(prog);
  transform::foldConstants(prog);
  return prog;
}

DafnyOptions fqOptions(int horizon) {
  DafnyOptions opts;
  opts.horizon = horizon;
  opts.maxArrivalsPerStep = 2;
  opts.inputParams = {"ibs"};
  return opts;
}

TEST(Dafny, EmitsMethodHeader) {
  const std::string text = emitDafny(compileFq(2), fqOptions(3));
  EXPECT_NE(text.find("method CheckFq()"), std::string::npos) << text;
}

TEST(Dafny, UnrollsTimeSteps) {
  const std::string text = emitDafny(compileFq(2), fqOptions(3));
  EXPECT_NE(text.find("// ---- time step 0 ----"), std::string::npos);
  EXPECT_NE(text.find("// ---- time step 2 ----"), std::string::npos);
  EXPECT_EQ(text.find("// ---- time step 3 ----"), std::string::npos);
}

TEST(Dafny, StructuredHavocArrivals) {
  // §6.1: sequences of fixed shape with integer havoc variables inside.
  const std::string text = emitDafny(compileFq(2), fqOptions(2));
  EXPECT_NE(text.find(":| 0 <= n_0_0 <= 2"), std::string::npos) << text;
  EXPECT_NE(text.find("var p_0_0_0: int :| true;"), std::string::npos);
}

TEST(Dafny, BuffersAreSequences) {
  const std::string text = emitDafny(compileFq(2), fqOptions(2));
  EXPECT_NE(text.find("var ibs: seq<seq<int>>"), std::string::npos) << text;
  EXPECT_NE(text.find("var ob: seq<int> := [];"), std::string::npos);
}

TEST(Dafny, MonitorsAreGhost) {
  const std::string text = emitDafny(compileFq(2), fqOptions(2));
  EXPECT_NE(text.find("ghost var cdeq"), std::string::npos) << text;
}

TEST(Dafny, ListsLowerToSeqOps) {
  const std::string text = emitDafny(compileFq(2), fqOptions(2));
  EXPECT_NE(text.find("nq := nq + ["), std::string::npos) << text;
  // pop-front binds the emptiness test once and selects through it.
  EXPECT_NE(text.find(": bool := |nq| > 0;"), std::string::npos) << text;
  EXPECT_NE(text.find(" then nq[0] else -1;"), std::string::npos) << text;
}

TEST(Dafny, MinMaxBindsOperandsOnce) {
  // Nested min calls: without let bindings the rendered expression doubles
  // at every level; with them each operand's text appears exactly once.
  lang::Ast prog = lang::parse(R"(
p(buffer a) {
  int x = 0;
  x = min(min(x + 1, x + 2), min(x + 3, x + 4));
})");
  lang::checkOrThrow(prog, {});
  DafnyOptions opts;
  opts.horizon = 1;
  opts.inputParams = {"a"};
  const std::string text = emitDafny(prog, opts);
  EXPECT_NE(text.find("var e"), std::string::npos) << text;
  // Each operand of the outer min is rendered once, not twice.
  std::size_t count = 0;
  for (std::size_t pos = text.find("(x + 1)"); pos != std::string::npos;
       pos = text.find("(x + 1)", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u) << text;
}

TEST(Dafny, MoveLowersToSliceAndConcat) {
  const std::string text = emitDafny(compileFq(2), fqOptions(2));
  EXPECT_NE(text.find("[.."), std::string::npos) << text;
}

TEST(Dafny, WorkloadAssumesAndQueryAssert) {
  DafnyOptions opts = fqOptions(2);
  opts.stepAssumes = {"n_%t_0 == 1"};
  opts.finalAssert = "cdeq[0] >= 1";
  const std::string text = emitDafny(compileFq(2), opts);
  EXPECT_NE(text.find("assume n_0_0 == 1;"), std::string::npos) << text;
  EXPECT_NE(text.find("assume n_1_0 == 1;"), std::string::npos);
  EXPECT_NE(text.find("assert cdeq[0] >= 1;"), std::string::npos);
}

TEST(Dafny, LoopsAreUnrolled) {
  const std::string text = emitDafny(compileFq(2), fqOptions(2));
  EXPECT_EQ(text.find("while"), std::string::npos);
  EXPECT_NE(text.find("// i = 0"), std::string::npos) << text;
  EXPECT_NE(text.find("// i = 1"), std::string::npos);
}

TEST(Dafny, HavocLocalsSupported) {
  lang::Ast prog = lang::parse(R"(
p(buffer a, buffer b) {
  havoc int w;
  assume(w >= 0);
  move-p(a, b, w);
})");
  lang::checkOrThrow(prog, {});
  DafnyOptions opts;
  opts.horizon = 1;
  opts.inputParams = {"a"};
  const std::string text = emitDafny(prog, opts);
  EXPECT_NE(text.find("var w: int :| true;"), std::string::npos) << text;
  EXPECT_NE(text.find("assume (w >= 0);"), std::string::npos);
}

TEST(Dafny, RejectsNonInlinedProgram) {
  lang::Ast prog = lang::parse(R"(
p(buffer a, buffer b) {
  def int f() { return 1; }
  move-p(a, b, f());
})");
  lang::checkOrThrow(prog, {});
  DafnyOptions opts;
  opts.horizon = 1;
  EXPECT_THROW(emitDafny(prog, opts), BackendError);
}

TEST(Dafny, RejectsUnknownInputParam) {
  DafnyOptions opts = fqOptions(1);
  opts.inputParams = {"nosuch"};
  EXPECT_THROW(emitDafny(compileFq(2), opts), BackendError);
}

TEST(Dafny, AllSchedulerModelsEmit) {
  lang::CompileOptions copts;
  copts.constants = {{"N", 2}, {"QUANTUM", 3}};
  copts.defaultListCapacity = 2;
  for (const char* source :
       {models::kFairQueueBuggy, models::kFairQueueFixed, models::kRoundRobin,
        models::kStrictPriority, models::kDeficitRoundRobin}) {
    lang::Ast prog = lang::parse(source);
    lang::checkOrThrow(prog, copts);
    transform::inlineFunctions(prog);
    transform::foldConstants(prog);
    DafnyOptions opts;
    opts.horizon = 2;
    opts.inputParams = {"ibs"};
    EXPECT_NO_THROW(emitDafny(prog, opts));
  }
}

}  // namespace
}  // namespace buffy::backends
