// Golden-diagnostics suite (ISSUE: compiler hardening, satellite b).
//
// Each tests/corpus/*.bfy file is a malformed program annotated with its
// expected diagnostics as comment lines:
//
//   //! LINE:COL: substring-of-message
//
// in the order the front half must report them. The harness runs the same
// batched sequence as the CLI (parseRecover -> elaborate -> typecheck into
// one DiagnosticEngine) and checks error count, source locations, and
// ordering. A corpus file with no //! lines asserts a clean front half.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lang/parser.hpp"
#include "lang/typecheck.hpp"
#include "support/budget.hpp"
#include "support/diagnostics.hpp"

namespace fs = std::filesystem;
using namespace buffy;

namespace {

struct Expectation {
  std::uint32_t line = 0;
  std::uint32_t col = 0;
  std::string substring;
};

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Parses `//! LINE:COL: substring` annotation lines, in file order.
std::vector<Expectation> expectationsOf(const std::string& source) {
  std::vector<Expectation> out;
  std::istringstream in(source);
  std::string line;
  while (std::getline(in, line)) {
    const auto at = line.find("//!");
    if (at == std::string::npos) continue;
    std::istringstream spec(line.substr(at + 3));
    Expectation e;
    char colon = 0;
    if (!(spec >> e.line >> colon >> e.col) || colon != ':') {
      ADD_FAILURE() << "malformed //! annotation: " << line;
      continue;
    }
    std::string rest;
    std::getline(spec, rest);
    // Trim "` : `" separator and surrounding spaces.
    auto begin = rest.find_first_not_of(" :");
    e.substring = begin == std::string::npos ? "" : rest.substr(begin);
    out.push_back(std::move(e));
  }
  return out;
}

/// The CLI's batched front half: recovery parse, then elaborate and
/// typecheck even when parsing reported errors.
DiagnosticEngine runFrontHalf(const std::string& source) {
  DiagnosticEngine diag;
  lang::Ast prog = lang::parseRecover(source, diag);
  lang::CompileOptions copts;
  copts.constants["N"] = 4;
  copts.constants["K"] = 3;
  (void)lang::elaborate(prog, copts, diag);
  (void)lang::typecheck(prog, copts, diag);
  return diag;
}

std::vector<Diagnostic> errorsOnly(const DiagnosticEngine& diag) {
  std::vector<Diagnostic> out;
  for (const auto& d : diag.all()) {
    if (d.severity == Severity::Error) out.push_back(d);
  }
  return out;
}

std::vector<fs::path> corpusFiles() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(BUFFY_CORPUS_DIR)) {
    if (entry.path().extension() == ".bfy") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

class GoldenDiagnostics : public testing::TestWithParam<fs::path> {};

}  // namespace

TEST_P(GoldenDiagnostics, MatchesAnnotations) {
  const std::string source = slurp(GetParam());
  ASSERT_FALSE(source.empty()) << "unreadable corpus file " << GetParam();
  const std::vector<Expectation> expected = expectationsOf(source);

  const DiagnosticEngine diag = runFrontHalf(source);
  const std::vector<Diagnostic> errors = errorsOnly(diag);

  ASSERT_EQ(errors.size(), expected.size())
      << "diagnostic count mismatch for " << GetParam().filename() << "\n"
      << diag.renderAll();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const auto& want = expected[i];
    const auto& got = errors[i];
    EXPECT_EQ(got.loc.line, want.line)
        << "diagnostic " << i << " of " << GetParam().filename() << ": "
        << got.render();
    EXPECT_EQ(got.loc.column, want.col)
        << "diagnostic " << i << " of " << GetParam().filename() << ": "
        << got.render();
    EXPECT_NE(got.message.find(want.substring), std::string::npos)
        << "diagnostic " << i << " of " << GetParam().filename()
        << " should mention '" << want.substring << "', got: " << got.render();
  }
}

// Two runs over the same input must report byte-identical diagnostics —
// the ordering contract golden files rely on.
TEST_P(GoldenDiagnostics, OrderingIsStable) {
  const std::string source = slurp(GetParam());
  EXPECT_EQ(runFrontHalf(source).renderAll(),
            runFrontHalf(source).renderAll());
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenDiagnostics,
                         testing::ValuesIn(corpusFiles()),
                         [](const testing::TestParamInfo<fs::path>& info) {
                           std::string name = info.param.stem().string();
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// The acceptance-criteria scenario: one run over a program with several
// distinct syntax *and* type errors yields >= 3 located diagnostics.
TEST(GoldenDiagnostics, BatchesSyntaxAndTypeErrorsInOneRun) {
  const std::string source =
      "prog() {\n"
      "  global int x = 0;\n"
      "  y = true + 3;\n"
      "  global bool b = ;\n"
      "  if (x { x = 1; }\n"
      "}\n";
  const DiagnosticEngine diag = runFrontHalf(source);
  EXPECT_GE(errorsOnly(diag).size(), 3u) << diag.renderAll();
  for (const auto& d : errorsOnly(diag)) {
    EXPECT_TRUE(d.loc.known()) << d.render();
  }
}
