// Exhaustive differential testing: for every concrete workload in a small
// space, the interpreter's trace and the Z3 backend must agree exactly.
// This closes the loop between the two consumers of the symbolic
// evaluator — constant folding (simulation) and solving — and between the
// Buffy pipeline and the hand-written FPerf baseline.
#include <gtest/gtest.h>

#include "fperf/fperf_common.hpp"
#include "helpers.hpp"

namespace buffy::core {
namespace {

using buffy::testing::schedulerNet;

/// Pins the arrival counts of both queues to an exact per-step pattern.
Workload exactWorkload(const std::string& inst,
                       const std::vector<int>& q0,
                       const std::vector<int>& q1) {
  Workload w;
  for (std::size_t t = 0; t < q0.size(); ++t) {
    w.add(Workload::countAtStep(inst + ".ibs.0", static_cast<int>(t), q0[t],
                                q0[t]));
    w.add(Workload::countAtStep(inst + ".ibs.1", static_cast<int>(t), q1[t],
                                q1[t]));
  }
  return w;
}

struct Scenario {
  const char* source;
  const char* inst;
  std::vector<int> q0;
  std::vector<int> q1;
};

class ExhaustiveDifferential : public ::testing::TestWithParam<Scenario> {};

TEST_P(ExhaustiveDifferential, SolverMatchesInterpreterExactly) {
  const Scenario& sc = GetParam();
  const int horizon = static_cast<int>(sc.q0.size());
  Network net = schedulerNet(sc.source, sc.inst, 2);

  // 1. Interpreter ground truth.
  ConcreteArrivals arrivals;
  for (int t = 0; t < horizon; ++t) {
    arrivals[std::string(sc.inst) + ".ibs.0"].push_back(
        std::vector<ConcretePacket>(static_cast<std::size_t>(sc.q0[t])));
    arrivals[std::string(sc.inst) + ".ibs.1"].push_back(
        std::vector<ConcretePacket>(static_cast<std::size_t>(sc.q1[t])));
  }
  AnalysisOptions opts;
  opts.horizon = horizon;
  Analysis sim(net, opts);
  const Trace truth = sim.simulate(arrivals);

  // 2. The solver, constrained to the same workload, must consider the
  //    exact monitor sequence reachable...
  std::string exactQuery;
  for (int t = 0; t < horizon; ++t) {
    for (int q = 0; q < 2; ++q) {
      const std::string series =
          std::string(sc.inst) + ".cdeq." + std::to_string(q);
      if (!exactQuery.empty()) exactQuery += " & ";
      exactQuery += series + "[" + std::to_string(t) +
                    "] == " + std::to_string(truth.at(series, t));
    }
  }
  Analysis positive(net, opts);
  positive.setWorkload(exactWorkload(sc.inst, sc.q0, sc.q1));
  EXPECT_EQ(positive.check(Query::expr(exactQuery)).verdict,
            Verdict::Satisfiable)
      << exactQuery;

  // 3. ...and any deviation in the final counters unreachable
  //    (the workload is deterministic).
  const std::string series0 = std::string(sc.inst) + ".cdeq.0";
  const std::string wrong =
      series0 + "[T-1] != " +
      std::to_string(truth.at(series0, horizon - 1));
  Analysis negative(net, opts);
  negative.setWorkload(exactWorkload(sc.inst, sc.q0, sc.q1));
  EXPECT_EQ(negative.check(Query::expr(wrong)).verdict,
            Verdict::Unsatisfiable)
      << wrong;

  // 4. The FPerf baseline agrees on the final cdeq0 (FQ scenarios only).
  if (std::string(sc.source) == models::kFairQueueBuggy) {
    fperf::Params params;
    params.N = 2;
    params.T = horizon;
    params.C = 6;
    params.maxEnq = 3;
    std::vector<fperf::ArrivalBound> bounds;
    for (int t = 0; t < horizon; ++t) {
      bounds.push_back({.q = 0, .t = t, .lo = sc.q0[t], .hi = sc.q0[t]});
      bounds.push_back({.q = 1, .t = t, .lo = sc.q1[t], .hi = sc.q1[t]});
    }
    const std::int64_t expected = truth.at(series0, horizon - 1);
    EXPECT_TRUE(fperf::checkFq(params, bounds, expected).sat);
    EXPECT_FALSE(fperf::checkFq(params, bounds, expected + 1).sat);
  }
}

std::vector<Scenario> allScenarios() {
  std::vector<Scenario> out;
  // Every q0 pattern in {0,1}^3 with a couple of q1 burst shapes, for the
  // buggy FQ (the interesting dynamics) and round-robin.
  for (int mask = 0; mask < 8; ++mask) {
    const std::vector<int> q0 = {(mask >> 0) & 1, (mask >> 1) & 1,
                                 (mask >> 2) & 1};
    out.push_back({models::kFairQueueBuggy, "fq", q0, {2, 0, 0}});
  }
  out.push_back({models::kRoundRobin, "rr", {1, 1, 1}, {2, 0, 1}});
  out.push_back({models::kRoundRobin, "rr", {0, 2, 0}, {1, 1, 1}});
  out.push_back({models::kStrictPriority, "sp", {1, 0, 1}, {1, 1, 1}});
  return out;
}

INSTANTIATE_TEST_SUITE_P(SmallSpace, ExhaustiveDifferential,
                         ::testing::ValuesIn(allScenarios()));

}  // namespace
}  // namespace buffy::core
