// CompilerDriver + backend-registry tests (DESIGN.md §11): the staged
// front half must record per-stage stats, produce shareable
// CompilationUnits that Analysis engines accept interchangeably with the
// legacy Network path, and the registry must expose the four built-in
// back-ends behind capability flags.
#include "pipeline/driver.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "backends/registry.hpp"
#include "helpers.hpp"
#include "support/diagnostics.hpp"
#include "support/error.hpp"

namespace buffy::pipeline {
namespace {

using buffy::testing::schedulerNet;
using buffy::testing::starvationWorkload;

PipelineOptions fastOpts(int horizon) {
  PipelineOptions opts;
  opts.horizon = horizon;
  return opts;
}

core::AnalysisOptions analysisOpts(int horizon) {
  core::AnalysisOptions opts;
  opts.horizon = horizon;
  return opts;
}

// ---------------------------------------------------------------------------
// Front-half stage recording
// ---------------------------------------------------------------------------

TEST(CompilerDriver, RecordsFrontStagesInPipelineOrder) {
  const CompilerDriver driver(fastOpts(4));
  const CompilationUnitPtr unit =
      driver.compile(schedulerNet(models::kRoundRobin, "rr", 2));
  ASSERT_NE(unit, nullptr);

  const PipelineStats& stats = unit->frontStats();
  const char* expected[] = {"parse",     "typecheck", "sem",
                            "inline",    "constfold", "recheck"};
  ASSERT_GE(stats.stages().size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(stats.stages()[i].stage, expected[i]);
    EXPECT_EQ(stats.stages()[i].runs, 1u);
  }
  // parse/inline/constfold record the AST size gauges.
  const StageStats* parse = stats.find("parse");
  ASSERT_NE(parse, nullptr);
  EXPECT_GT(parse->nodes, 0u);
  EXPECT_GT(parse->stmts, 0u);
  // No unroll stage unless requested.
  EXPECT_EQ(stats.find("unroll"), nullptr);
}

TEST(CompilerDriver, UnrollStageAppearsWhenRequested) {
  PipelineOptions opts = fastOpts(4);
  opts.unrollLoops = true;
  const CompilerDriver driver(opts);
  const CompilationUnitPtr unit =
      driver.compile(schedulerNet(models::kRoundRobin, "rr", 2));
  const StageStats* unroll = unit->frontStats().find("unroll");
  ASSERT_NE(unroll, nullptr);
  EXPECT_EQ(unroll->runs, 1u);
}

TEST(CompilerDriver, RecoveryModeBatchesDiagnostics) {
  core::ProgramSpec spec;
  spec.instance = "bad";
  spec.source =
      "bad(buffer ib, buffer ob) {\n"
      "  x = undeclared1;\n"
      "  y = undeclared2;\n"
      "}\n";
  spec.buffers = {
      {.param = "ib", .role = core::BufferSpec::Role::Input, .capacity = 4},
      {.param = "ob", .role = core::BufferSpec::Role::Output, .capacity = 4},
  };
  core::Network net;
  net.add(spec);

  DiagnosticEngine diag;
  const CompilerDriver driver(fastOpts(4));
  const CompilationUnitPtr unit = driver.compile(net, diag, FrontMode::Front);
  ASSERT_NE(unit, nullptr);
  EXPECT_TRUE(diag.hasErrors());
  EXPECT_GE(diag.errorCount(), 2u);
}

// ---------------------------------------------------------------------------
// Shared CompilationUnit across Analysis engines
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Parallel multi-model compilation (compileAll)
// ---------------------------------------------------------------------------

std::vector<core::Network> exampleNetworks() {
  std::vector<core::Network> nets;
  for (const auto& entry : models::allModels()) {
    core::ProgramSpec spec;
    spec.source = entry.source;
    spec.compile.constants = {
        {"N", 2}, {"RATE", 2}, {"BUCKET", 4}, {"RTO", 3}, {"QUANTUM", 2}};
    spec.compile.defaultListCapacity = 2;
    core::Network net;
    net.add(spec);
    nets.push_back(std::move(net));
  }
  return nets;
}

TEST(CompileAll, ResultsKeyedByInputIndexUnderAnyWorkerCount) {
  const CompilerDriver driver(fastOpts(4));
  const CompileAllResult serial =
      driver.compileAll(exampleNetworks(), FrontMode::Lint, 1);
  const CompileAllResult parallel =
      driver.compileAll(exampleNetworks(), FrontMode::Lint, 4);
  const auto& all = models::allModels();
  ASSERT_EQ(serial.units.size(), all.size());
  ASSERT_EQ(parallel.units.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    ASSERT_NE(serial.units[i], nullptr) << all[i].name;
    ASSERT_NE(parallel.units[i], nullptr) << all[i].name;
    // Units land at their input index whatever the completion order...
    EXPECT_EQ(serial.units[i]->instances().front().name,
              parallel.units[i]->instances().front().name);
    // ...and the rendered diagnostics are byte-identical.
    EXPECT_EQ(serial.diags[i].renderAll(), parallel.diags[i].renderAll())
        << all[i].name;
  }
}

TEST(CompileAll, DiagnosticsStayPerModel) {
  std::vector<core::Network> nets = exampleNetworks();
  core::ProgramSpec bad;
  bad.instance = "bad";
  bad.source = "bad(buffer ib, buffer ob) { x = nope; }\n";
  core::Network badNet;
  badNet.add(bad);
  nets.insert(nets.begin() + 3, std::move(badNet));

  const CompilerDriver driver(fastOpts(4));
  const CompileAllResult result =
      driver.compileAll(std::move(nets), FrontMode::Lint, 4);
  for (std::size_t i = 0; i < result.diags.size(); ++i) {
    EXPECT_EQ(result.diags[i].hasErrors(), i == 3) << i;
  }
}

TEST(CompileAll, EmptyInputAndZeroJobsAreSafe) {
  const CompilerDriver driver(fastOpts(4));
  const CompileAllResult empty = driver.compileAll({}, FrontMode::Lint, 4);
  EXPECT_TRUE(empty.units.empty());
  // jobs == 0 clamps to one worker instead of deadlocking.
  const CompileAllResult one =
      driver.compileAll(exampleNetworks(), FrontMode::Lint, 0);
  EXPECT_EQ(one.units.size(), models::allModels().size());
}

TEST(CompilationUnitSharing, UnitAndNetworkPathsAgree) {
  const core::AnalysisOptions opts = analysisOpts(5);
  const core::Workload workload = starvationWorkload("fq", 5);
  const core::Query query = core::Query::expr(
      "fq.cdeq.0[T-1] >= T-1 & fq.cdeq.1[T-1] <= 1 & "
      "fq.ibs.1.backlog[T-1] > 0");

  core::Analysis fromNet(schedulerNet(models::kFairQueueBuggy, "fq", 2),
                         opts);
  fromNet.setWorkload(workload);
  const auto netResult = fromNet.check(query);

  const CompilerDriver driver(core::pipelineOptionsFor(opts));
  const CompilationUnitPtr unit =
      driver.compile(schedulerNet(models::kFairQueueBuggy, "fq", 2));
  core::Analysis fromUnit(unit, opts);
  fromUnit.setWorkload(workload);
  const auto unitResult = fromUnit.check(query);

  EXPECT_EQ(netResult.verdict, unitResult.verdict);
  EXPECT_EQ(netResult.verdict, core::Verdict::Satisfiable);
}

TEST(CompilationUnitSharing, OneUnitServesManyEngines) {
  const core::AnalysisOptions opts = analysisOpts(5);
  const CompilerDriver driver(core::pipelineOptionsFor(opts));
  const CompilationUnitPtr unit =
      driver.compile(schedulerNet(models::kFairQueueFixed, "fq", 2));

  // Two engines over the same immutable unit, different queries.
  core::Analysis a(unit, opts);
  a.setWorkload(starvationWorkload("fq", 5));
  EXPECT_EQ(a.verify(core::Query::expr("fq.cdeq.1[T-1] >= 2")).verdict,
            core::Verdict::Verified);

  core::Analysis b(unit, opts);
  b.setWorkload(starvationWorkload("fq", 5));
  EXPECT_EQ(b.check(core::Query::expr("fq.cdeq.1[T-1] >= 2")).verdict,
            core::Verdict::Satisfiable);
}

TEST(CompilationUnitSharing, MismatchedOptionsRejected) {
  const CompilerDriver driver(fastOpts(4));
  const CompilationUnitPtr unit =
      driver.compile(schedulerNet(models::kRoundRobin, "rr", 2));
  EXPECT_THROW(core::Analysis(unit, analysisOpts(7)), AnalysisError);
  EXPECT_THROW(core::Analysis(CompilationUnitPtr(), analysisOpts(4)),
               AnalysisError);
}

// ---------------------------------------------------------------------------
// Per-stage observability on AnalysisResult
// ---------------------------------------------------------------------------

TEST(StageTimings, CheckPopulatesPipelineStats) {
  core::Analysis analysis(schedulerNet(models::kRoundRobin, "rr", 2),
                          analysisOpts(4));
  core::Workload w;
  w.add(core::Workload::perStepCount("rr.ibs.0", 1, 1));
  analysis.setWorkload(w);
  const auto result = analysis.check(core::Query::expr("rr.cdeq.0[T-1] >= 1"));
  ASSERT_EQ(result.verdict, core::Verdict::Satisfiable);

  const PipelineStats& stats = result.pipeline;
  ASSERT_FALSE(stats.empty());
  for (const char* name : {"parse", "typecheck", "encode", "solve"}) {
    const StageStats* row = stats.find(name);
    ASSERT_NE(row, nullptr) << name;
    EXPECT_GE(row->runs, 1u) << name;
  }
  const StageStats* encode = stats.find("encode");
  EXPECT_GT(encode->nodes, 0u);
  // The JSON rendering carries every row.
  const std::string json = stats.toJson();
  EXPECT_NE(json.find("\"stage\":\"solve\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Backend registry
// ---------------------------------------------------------------------------

TEST(BackendRegistry, BuiltinsRegisteredWithCapabilities) {
  auto& reg = backends::BackendRegistry::instance();
  const auto names = reg.names();
  ASSERT_GE(names.size(), 4u);
  EXPECT_EQ(names[0], "z3");
  EXPECT_EQ(names[1], "smtlib");
  EXPECT_EQ(names[2], "dafny");
  EXPECT_EQ(names[3], "interp");

  EXPECT_TRUE(reg.get("z3").capabilities().solve);
  EXPECT_TRUE(reg.get("z3").capabilities().incrementalSessions);
  EXPECT_TRUE(reg.get("smtlib").capabilities().solve);
  EXPECT_TRUE(reg.get("smtlib").capabilities().emitText);
  EXPECT_FALSE(reg.get("dafny").capabilities().solve);
  EXPECT_TRUE(reg.get("dafny").capabilities().emitText);
  EXPECT_TRUE(reg.get("interp").capabilities().concreteSim);
  EXPECT_FALSE(reg.get("interp").capabilities().solve);
}

TEST(BackendRegistry, UnknownNameHandled) {
  auto& reg = backends::BackendRegistry::instance();
  EXPECT_EQ(reg.find("bogus"), nullptr);
  EXPECT_THROW(reg.get("bogus"), BackendError);
}

TEST(BackendRegistry, MissingCapabilityThrows) {
  core::Analysis analysis(schedulerNet(models::kRoundRobin, "rr", 2),
                          analysisOpts(4));
  auto& reg = backends::BackendRegistry::instance();
  // dafny cannot solve; interp cannot emit.
  EXPECT_THROW(reg.get("dafny").solve(analysis,
                                      core::Query::expr("rr.cdeq.0[T-1] >= 0"),
                                      false),
               BackendError);
  EXPECT_THROW(reg.get("interp").emit(
                   analysis, core::Query::expr("rr.cdeq.0[T-1] >= 0"), false),
               BackendError);
}

TEST(BackendRegistry, SmtLibBackendAgreesWithZ3) {
  const core::AnalysisOptions opts = analysisOpts(5);
  const CompilerDriver driver(core::pipelineOptionsFor(opts));
  const CompilationUnitPtr unit =
      driver.compile(schedulerNet(models::kFairQueueFixed, "fq", 2));
  auto& reg = backends::BackendRegistry::instance();
  const core::Query query = core::Query::expr("fq.cdeq.1[T-1] >= 2");

  core::Analysis viaZ3(unit, opts);
  viaZ3.setWorkload(starvationWorkload("fq", 5));
  const auto z3Result = reg.get("z3").solve(viaZ3, query, /*forVerify=*/true);

  core::Analysis viaText(unit, opts);
  viaText.setWorkload(starvationWorkload("fq", 5));
  const auto textResult =
      reg.get("smtlib").solve(viaText, query, /*forVerify=*/true);

  EXPECT_EQ(z3Result.verdict, core::Verdict::Verified);
  EXPECT_EQ(textResult.verdict, z3Result.verdict);
  // The text path still reports pipeline stats including the solve row.
  EXPECT_NE(textResult.pipeline.find("solve"), nullptr);
}

TEST(BackendRegistry, DafnyBackendEmitsProgramText) {
  core::Analysis analysis(schedulerNet(models::kRoundRobin, "rr", 2),
                          analysisOpts(4));
  auto& reg = backends::BackendRegistry::instance();
  const std::string text = reg.get("dafny").emit(
      analysis, core::Query::expr("rr.cdeq.0[T-1] >= 0"), false);
  EXPECT_NE(text.find("method"), std::string::npos);
}

}  // namespace
}  // namespace buffy::pipeline
