#include "eval/evaluator.hpp"

#include <gtest/gtest.h>

#include "buffers/list_model.hpp"
#include "ir/term_eval.hpp"
#include "ir/term_printer.hpp"
#include "lang/parser.hpp"
#include "lang/typecheck.hpp"
#include "support/error.hpp"
#include "transform/transforms.hpp"

namespace buffy::eval {
namespace {

/// Compiles and symbolically executes `source` for `steps` time steps over
/// a fresh store (registering list-model buffers for all buffer params),
/// then exposes the final store and sinks for inspection.
class EvalHarness {
 public:
  explicit EvalHarness(const std::string& source, int steps = 1,
                       lang::CompileOptions opts = {})
      : store_(arena_) {
    prog_ = lang::parse(source);
    lang::checkOrThrow(prog_, opts);
    transform::inlineFunctions(prog_);
    transform::foldConstants(prog_);
    for (const auto& param : prog_.program.params) {
      if (param.type.kind == lang::TypeKind::Buffer) {
        addBuffer(param.name);
      } else if (param.type.kind == lang::TypeKind::BufferArray) {
        for (int i = 0; i < param.type.size; ++i) {
          addBuffer(param.name + "." + std::to_string(i));
        }
      }
    }
    EvalSinks sinks{&assumptions_, &obligations_, &soundness_};
    Evaluator evaluator(arena_, store_, sinks);
    for (int t = 0; t < steps; ++t) evaluator.execStep(prog_, t);
  }

  std::int64_t scalar(const std::string& name,
                      const ir::Assignment& env = {}) {
    const Value* v = store_.find(name);
    if (v == nullptr) throw Error("no var " + name);
    return ir::evalTerm(v->scalar, env);
  }

  buffers::SymBuffer* buffer(const std::string& name) {
    return store_.buffer(name);
  }

  ir::TermArena arena_;
  Store store_;
  lang::Ast prog_;
  std::vector<ir::TermRef> assumptions_;
  std::vector<Obligation> obligations_;
  std::vector<ir::TermRef> soundness_;

 private:
  void addBuffer(const std::string& name) {
    buffers::BufferConfig cfg;
    cfg.name = name;
    cfg.capacity = 4;
    cfg.schema.fields = {"val"};
    store_.addBuffer(name,
                     std::make_unique<buffers::ListBuffer>(cfg, arena_));
  }
};

TEST(Evaluator, GlobalsPersistAcrossSteps) {
  EvalHarness h(R"(
p(buffer a, buffer b) {
  global int g;
  g = g + 1;
})",
                3);
  EXPECT_EQ(h.scalar("g"), 3);
}

TEST(Evaluator, GlobalInitOnlyAtStepZero) {
  EvalHarness h(R"(
p(buffer a, buffer b) {
  global int g = 10;
  g = g + 1;
})",
                2);
  EXPECT_EQ(h.scalar("g"), 12);
}

TEST(Evaluator, LocalsResetEveryStep) {
  EvalHarness h(R"(
p(buffer a, buffer b) {
  local int x;
  global int g;
  x = x + 1;
  g = x;
})",
                3);
  EXPECT_EQ(h.scalar("g"), 1);  // x restarts at 0 each step
}

TEST(Evaluator, IfMergesBothBranches) {
  EvalHarness h(R"(
p(buffer a, buffer b) {
  havoc bool c;
  global int x;
  global int y;
  if (c) { x = 1; } else { y = 2; }
})");
  // Recover the havoc variable's name from the arena.
  ASSERT_FALSE(h.arena_.variables().empty());
  const std::string cname = h.arena_.variables()[0]->name;
  EXPECT_EQ(h.scalar("x", {{cname, 1}}), 1);
  EXPECT_EQ(h.scalar("y", {{cname, 1}}), 0);
  EXPECT_EQ(h.scalar("x", {{cname, 0}}), 0);
  EXPECT_EQ(h.scalar("y", {{cname, 0}}), 2);
}

TEST(Evaluator, ConstantConditionTakesOneBranch) {
  EvalHarness h(R"(
p(buffer a, buffer b) {
  global int x;
  if (1 < 2) { x = 5; } else { x = 7; }
})");
  EXPECT_EQ(h.scalar("x"), 5);
}

TEST(Evaluator, BoundedLoopIterates) {
  EvalHarness h(R"(
p(buffer a, buffer b) {
  global int sum;
  for (i in 0..5) do { sum = sum + i; }
})");
  EXPECT_EQ(h.scalar("sum"), 10);
}

TEST(Evaluator, LoopBoundsMustBeConstant) {
  EXPECT_THROW(EvalHarness(R"(
p(buffer a, buffer b) {
  havoc int n;
  for (i in 0..n) do { }
})"),
               AnalysisError);
}

TEST(Evaluator, ArraysWithSymbolicIndex) {
  EvalHarness h(R"(
p(buffer a, buffer b) {
  global int arr[3];
  havoc int i;
  assume(i >= 0);
  assume(i < 3);
  arr[i] = 7;
  global int got;
  got = arr[1];
})");
  const std::string iname = h.arena_.variables()[0]->name;
  EXPECT_EQ(h.scalar("got", {{iname, 1}}), 7);
  EXPECT_EQ(h.scalar("got", {{iname, 2}}), 0);
}

TEST(Evaluator, ArrayOutOfBoundsConstantThrows) {
  EXPECT_THROW(EvalHarness(R"(
p(buffer a, buffer b) {
  global int arr[3];
  arr[5] = 1;
})"),
               AnalysisError);
}

TEST(Evaluator, ListOpsAndPathConditions) {
  EvalHarness h(R"(
p(buffer a, buffer b) {
  global list l;
  global int got;
  havoc bool c;
  if (c) { l.push_back(42); }
  got = l.len();
})");
  const std::string cname = h.arena_.variables()[0]->name;
  EXPECT_EQ(h.scalar("got", {{cname, 1}}), 1);
  EXPECT_EQ(h.scalar("got", {{cname, 0}}), 0);
}

TEST(Evaluator, MoveUpdatesBuffers) {
  EvalHarness h(R"(
p(buffer a, buffer b) {
  move-p(a, b, 1);
})");
  // Buffers start empty; move of 1 from empty a is a no-op.
  EXPECT_EQ(ir::evalTerm(h.buffer("a")->backlogP(), {}), 0);
  EXPECT_EQ(ir::evalTerm(h.buffer("b")->backlogP(), {}), 0);
}

TEST(Evaluator, SymbolicBufferSelection) {
  EvalHarness h(R"(
p(buffer[3] ibs, buffer ob) {
  havoc int head;
  global int got;
  got = backlog-p(ibs[head]);
})");
  // All buffers empty: any head (even out of range) observes 0.
  const std::string hname = h.arena_.variables()[0]->name;
  EXPECT_EQ(h.scalar("got", {{hname, 0}}), 0);
  EXPECT_EQ(h.scalar("got", {{hname, -1}}), 0);
  EXPECT_EQ(h.scalar("got", {{hname, 99}}), 0);
}

TEST(Evaluator, AssumeRecordsPathCondition) {
  EvalHarness h(R"(
p(buffer a, buffer b) {
  havoc bool c;
  havoc int x;
  if (c) { assume(x > 3); }
})");
  ASSERT_EQ(h.assumptions_.size(), 1u);
  // The assumption is path-guarded: with c false it is vacuously true.
  std::string cname;
  std::string xname;
  for (const auto* v : h.arena_.variables()) {
    if (v->name.find(".c#") != std::string::npos) cname = v->name;
    if (v->name.find(".x#") != std::string::npos) xname = v->name;
  }
  // Fallback: identify by sort.
  for (const auto* v : h.arena_.variables()) {
    if (v->sort == ir::Sort::Bool) cname = v->name;
    if (v->sort == ir::Sort::Int) xname = v->name;
  }
  EXPECT_EQ(ir::evalTerm(h.assumptions_[0], {{cname, 0}, {xname, 0}}), 1);
  EXPECT_EQ(ir::evalTerm(h.assumptions_[0], {{cname, 1}, {xname, 0}}), 0);
  EXPECT_EQ(ir::evalTerm(h.assumptions_[0], {{cname, 1}, {xname, 4}}), 1);
}

TEST(Evaluator, AssertRecordsObligation) {
  EvalHarness h(R"(
p(buffer a, buffer b) {
  global int x;
  x = 5;
  assert(x == 5);
})");
  ASSERT_EQ(h.obligations_.size(), 1u);
  EXPECT_TRUE(h.obligations_[0].cond->isTrue());
}

TEST(Evaluator, ListOverflowEmitsSoundnessCondition) {
  EvalHarness h(R"(
p(buffer a, buffer b) {
  global list l[1];
  l.push_back(1);
  l.push_back(2);
})");
  ASSERT_EQ(h.soundness_.size(), 2u);
  // Second push overflows: its soundness condition is violated.
  EXPECT_EQ(ir::evalTerm(h.soundness_[1], {}), 0);
}

TEST(Evaluator, MinMaxBuiltins) {
  EvalHarness h(R"(
p(buffer a, buffer b) {
  global int x;
  global int y;
  x = min(3, 1, 2);
  y = max(x, 10);
})");
  EXPECT_EQ(h.scalar("x"), 1);
  EXPECT_EQ(h.scalar("y"), 10);
}

TEST(Evaluator, UserFunctionsViaInliner) {
  EvalHarness h(R"(
p(buffer a, buffer b) {
  def int clamp(int v, int hi) {
    local int r;
    r = v;
    if (v > hi) { r = hi; }
    return r;
  }
  global int x;
  x = clamp(12, 9);
})");
  EXPECT_EQ(h.scalar("x"), 9);
}

TEST(Evaluator, HavocFreshPerStep) {
  EvalHarness h(R"(
p(buffer a, buffer b) {
  havoc int w;
  global int sum;
  sum = sum + w;
})",
                2);
  // Two distinct havoc variables must exist.
  EXPECT_EQ(h.arena_.variables().size(), 2u);
  const std::string w0 = h.arena_.variables()[0]->name;
  const std::string w1 = h.arena_.variables()[1]->name;
  EXPECT_EQ(h.scalar("sum", {{w0, 3}, {w1, 4}}), 7);
}

TEST(Evaluator, PopFrontIntoVariable) {
  EvalHarness h(R"(
p(buffer a, buffer b) {
  global list l;
  global int x;
  l.push_back(9);
  x = l.pop_front();
})");
  EXPECT_EQ(h.scalar("x"), 9);
}

TEST(Evaluator, NestedFiltersRejected) {
  EXPECT_THROW(EvalHarness(R"(
p(buffer a, buffer b) {
  global int x;
  x = backlog-p((a |> val == 1) |> val == 2);
})"),
               AnalysisError);
}

}  // namespace
}  // namespace buffy::eval
