// The FPerf-style baseline: its low-level Z3 encodings must agree with the
// Buffy pipeline on the same scenarios (differential testing), and its LoC
// spans feed Table 1.
#include "fperf/fperf_common.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace buffy::fperf {
namespace {

using buffy::testing::schedulerNet;
using buffy::testing::starvationWorkload;

std::vector<ArrivalBound> starvationBounds(int /*horizon*/) {
  // Mirrors helpers::starvationWorkload: q0 free in [0,1] every step,
  // q1 bursts 3 at t0 then silent.
  std::vector<ArrivalBound> bounds;
  bounds.push_back({.q = 0, .t = -1, .lo = 0, .hi = 1});
  bounds.push_back({.q = 1, .t = 0, .lo = 3, .hi = 3});
  // silence after t0 is expressed per step below (t != 0 handled by caller)
  return bounds;
}

Params params(int horizon) {
  Params p;
  p.N = 2;
  p.T = horizon;
  p.C = 6;
  p.maxEnq = 3;
  return p;
}

std::vector<ArrivalBound> fullStarvationBounds(int horizon) {
  auto bounds = starvationBounds(horizon);
  for (int t = 1; t < horizon; ++t) {
    bounds.push_back({.q = 1, .t = t, .lo = 0, .hi = 0});
  }
  return bounds;
}

TEST(FperfBaseline, FqStarvationSat) {
  const auto result =
      checkFq(params(5), fullStarvationBounds(5), /*threshold=*/4);
  EXPECT_TRUE(result.sat);
  ASSERT_EQ(result.cdeq.size(), 2u);
  EXPECT_GE(result.cdeq[0], 4);
}

TEST(FperfBaseline, FqAgreesWithBuffy) {
  // Differential: same workload, same query, both engines.
  const int horizon = 5;
  for (const std::int64_t threshold : {3, 4, 5, 6}) {
    const auto baseline =
        checkFq(params(horizon), fullStarvationBounds(horizon), threshold);

    core::AnalysisOptions opts;
    opts.horizon = horizon;
    core::Analysis analysis(schedulerNet(models::kFairQueueBuggy, "fq", 2),
                            opts);
    analysis.setWorkload(starvationWorkload("fq", horizon));
    const auto buffyResult = analysis.check(core::Query::expr(
        "fq.cdeq.0[T-1] >= " + std::to_string(threshold)));
    EXPECT_EQ(baseline.sat,
              buffyResult.verdict == core::Verdict::Satisfiable)
        << "threshold " << threshold;
  }
}

TEST(FperfBaseline, RrAgreesWithBuffy) {
  const int horizon = 5;
  // Both queues backlogged every step.
  std::vector<ArrivalBound> bounds = {{.q = 0, .t = -1, .lo = 1, .hi = 2},
                                      {.q = 1, .t = -1, .lo = 1, .hi = 2}};
  for (const std::int64_t threshold : {2, 3, 4}) {
    const auto baseline = checkRr(params(horizon), bounds, threshold);

    core::AnalysisOptions opts;
    opts.horizon = horizon;
    core::Analysis analysis(schedulerNet(models::kRoundRobin, "rr", 2), opts);
    core::Workload w;
    w.add(core::Workload::perStepCount("rr.ibs.0", 1, 2));
    w.add(core::Workload::perStepCount("rr.ibs.1", 1, 2));
    analysis.setWorkload(w);
    const auto buffyResult = analysis.check(core::Query::expr(
        "rr.cdeq.0[T-1] >= " + std::to_string(threshold)));
    EXPECT_EQ(baseline.sat,
              buffyResult.verdict == core::Verdict::Satisfiable)
        << "threshold " << threshold;
  }
}

TEST(FperfBaseline, SpHighPriorityMonopoly) {
  std::vector<ArrivalBound> bounds = {{.q = 0, .t = -1, .lo = 1, .hi = 1},
                                      {.q = 1, .t = -1, .lo = 1, .hi = 1}};
  // Queue 0 takes every slot: threshold T is reachable...
  EXPECT_TRUE(checkSp(params(4), bounds, 4).sat);
  // ...and cannot be exceeded.
  EXPECT_FALSE(checkSp(params(4), bounds, 5).sat);
}

TEST(FperfBaseline, SpAgreesWithBuffy) {
  const int horizon = 4;
  std::vector<ArrivalBound> bounds = {{.q = 0, .t = -1, .lo = 0, .hi = 1},
                                      {.q = 1, .t = -1, .lo = 1, .hi = 1}};
  for (const std::int64_t threshold : {1, 3, 5}) {
    const auto baseline = checkSp(params(horizon), bounds, threshold);
    core::AnalysisOptions opts;
    opts.horizon = horizon;
    core::Analysis analysis(schedulerNet(models::kStrictPriority, "sp", 2),
                            opts);
    core::Workload w;
    w.add(core::Workload::perStepCount("sp.ibs.0", 0, 1));
    w.add(core::Workload::perStepCount("sp.ibs.1", 1, 1));
    analysis.setWorkload(w);
    const auto buffyResult = analysis.check(core::Query::expr(
        "sp.cdeq.0[T-1] >= " + std::to_string(threshold)));
    EXPECT_EQ(baseline.sat,
              buffyResult.verdict == core::Verdict::Satisfiable)
        << "threshold " << threshold;
  }
}

TEST(FperfBaseline, Table1LineCountsOrdered) {
  // The FPerf-style encodings must dwarf the Buffy models (Table 1's
  // point): FQ ~197 vs 18 in the paper; here the spans are counted from
  // the actual baseline sources.
  const std::size_t fq = fqLoc();
  const std::size_t rr = rrLoc();
  const std::size_t sp = spLoc();
  ASSERT_GT(fq, 0u) << "baseline sources not readable at test time";
  EXPECT_GT(fq, rr);
  EXPECT_GT(rr, sp);
  // Ratios against the Buffy models: at least ~3x for every scheduler.
  EXPECT_GE(fq, 3 * models::modelLoc(models::kFairQueueBuggy));
  EXPECT_GE(rr, 2 * models::modelLoc(models::kRoundRobin));
  EXPECT_GE(sp, 2 * models::modelLoc(models::kStrictPriority));
}

TEST(FperfBaseline, CountFileSpanMissingFile) {
  EXPECT_EQ(countFileSpan("/nonexistent/file.cpp", 1, 100), 0u);
}

}  // namespace
}  // namespace buffy::fperf
