// Golden snapshot tests for the text emitters (SMT-LIB2 and Dafny).
//
// Each example model is rendered through the real CLI (`buffy emit-smt2` /
// `buffy emit-dafny`) with a fixed configuration and compared byte-for-byte
// against the committed snapshot in tests/golden/. These lock the emitter
// output across refactors of the compilation pipeline: any driver change
// that perturbs parse order, transform order, or term interning shows up
// as a golden diff.
//
// Regenerate (after an *intentional* output change) with:
//   BUFFY_REGEN_GOLDEN=1 ./tests/golden_test
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace {

#ifndef BUFFY_CLI_PATH
#error "BUFFY_CLI_PATH must be defined by the build"
#endif
#ifndef BUFFY_MODELS_DIR
#error "BUFFY_MODELS_DIR must be defined by the build"
#endif
#ifndef BUFFY_GOLDEN_DIR
#error "BUFFY_GOLDEN_DIR must be defined by the build"
#endif

struct ModelConfig {
  const char* name;   // model file stem (examples/models/<name>.bfy)
  const char* args;   // horizon, constants, buffer roles
  const char* query;  // emit-smt2 query (emit-dafny ignores it)
};

// One deterministic configuration per example model. Horizons are kept
// small so the snapshots stay reviewable; constants match the values the
// examples and tests use.
constexpr ModelConfig kModels[] = {
    {"aimd",
     "-T 4 -D RTO=3 --input ind:8:2 --input inack:8:2 --output out:16 "
     "--output ackdrain:16",
     "aimd.mcwnd[T-1] >= 0"},
    {"delay_server", "-T 4 --input din:8:2 --output dout:16",
     "delay.mreleased[T-1] >= 0"},
    {"drr", "-T 4 -D N=2 -D QUANTUM=2 --input ibs:6:2 --output ob:16",
     "drr.bdeq.0[T-1] >= 0"},
    {"fq_buggy", "-T 5 -D N=2 --input ibs:6:3 --output ob:32",
     "fq.cdeq.0[T-1] >= T-1"},
    {"fq_fixed", "-T 5 -D N=2 --input ibs:6:3 --output ob:32",
     "fq.cdeq.0[T-1] >= T-1"},
    {"path_server",
     "-T 4 -D RATE=1 -D BUCKET=2 --input pin:8:2 --output pout:16",
     "path.mserved[T-1] >= 0"},
    {"round_robin", "-T 4 -D N=2 --input ibs:6:2 --output ob:16",
     "rr.cdeq.0[T-1] >= 0"},
    {"strict_priority", "-T 4 -D N=2 --input ibs:6:2 --output ob:16",
     "sp.cdeq.0[T-1] >= 0"},
};

struct CommandResult {
  int exitCode = -1;
  std::string output;
};

CommandResult runCli(const std::string& args) {
  const std::string command =
      std::string(BUFFY_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return {};
  CommandResult result;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = fread(buffer, 1, sizeof buffer, pipe)) > 0) {
    result.output.append(buffer, n);
  }
  const int status = pclose(pipe);
  result.exitCode = WEXITSTATUS(status);
  return result;
}

/// Drops `; ...` comment lines: the SMT-LIB banner embeds the model's file
/// path, which differs between checkouts. Everything else must match
/// byte-for-byte.
std::string stripSmtComments(const std::string& text) {
  std::string out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == ';') continue;
    out += line;
    out += '\n';
  }
  return out;
}

std::string goldenPath(const std::string& name, const char* ext) {
  return std::string(BUFFY_GOLDEN_DIR) + "/" + name + ext;
}

std::string readFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool regenerating() {
  const char* env = std::getenv("BUFFY_REGEN_GOLDEN");
  return env != nullptr && *env != '\0' && *env != '0';
}

void checkGolden(const std::string& actual, const std::string& name,
                 const char* ext) {
  const std::string path = goldenPath(name, ext);
  if (regenerating()) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  const std::string expected = readFileOrEmpty(path);
  ASSERT_FALSE(expected.empty())
      << "missing golden snapshot " << path
      << " (run with BUFFY_REGEN_GOLDEN=1 to create it)";
  EXPECT_EQ(expected, actual)
      << "emitter output for " << name << ext
      << " diverged from the committed snapshot; if the change is "
         "intentional, regenerate with BUFFY_REGEN_GOLDEN=1";
}

class GoldenEmit : public ::testing::TestWithParam<ModelConfig> {};

TEST_P(GoldenEmit, SmtLib2) {
  const ModelConfig& m = GetParam();
  const auto result = runCli(std::string("emit-smt2 ") + m.args +
                             " --query \"" + m.query + "\" " +
                             BUFFY_MODELS_DIR + "/" + m.name + ".bfy");
  ASSERT_EQ(result.exitCode, 0) << result.output;
  checkGolden(stripSmtComments(result.output), m.name, ".smt2");
}

TEST_P(GoldenEmit, Dafny) {
  const ModelConfig& m = GetParam();
  const auto result = runCli(std::string("emit-dafny ") + m.args + " " +
                             BUFFY_MODELS_DIR + "/" + m.name + ".bfy");
  ASSERT_EQ(result.exitCode, 0) << result.output;
  checkGolden(result.output, m.name, ".dfy");
}

INSTANTIATE_TEST_SUITE_P(Models, GoldenEmit, ::testing::ValuesIn(kModels),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
