// Shared helpers for the Buffy test suite.
#pragma once

#include <string>

#include "core/analysis.hpp"
#include "lang/parser.hpp"
#include "lang/typecheck.hpp"
#include "models/library.hpp"

namespace buffy::testing {

/// Parses + elaborates + typechecks a program, throwing on any failure.
/// The returned Ast carries its own arena; consumers walk it by handle.
inline lang::Ast compile(const std::string& source,
                         lang::CompileOptions opts = {}) {
  lang::Ast ast = lang::parse(source);
  lang::checkOrThrow(ast, opts);
  return ast;
}

/// A single-instance network around one of the scheduler models
/// (fq/rr/sp), with `n` input queues.
inline core::Network schedulerNet(const char* source, const char* instance,
                                  int n, int capacity = 6,
                                  int maxArrivals = 3) {
  core::ProgramSpec spec;
  spec.instance = instance;
  spec.source = source;
  spec.compile.constants["N"] = n;
  spec.compile.defaultListCapacity = n;
  spec.buffers = {
      {.param = "ibs",
       .role = core::BufferSpec::Role::Input,
       .capacity = capacity,
       .maxArrivalsPerStep = maxArrivals},
      {.param = "ob",
       .role = core::BufferSpec::Role::Output,
       .capacity = 32},
  };
  core::Network net;
  net.add(spec);
  return net;
}

/// The §6.1 starvation workload: queue 0 free to pace itself (0..1 per
/// step), queue 1 bursts `burst` packets at t0 then goes quiet.
inline core::Workload starvationWorkload(const std::string& inst, int horizon,
                                         int burst = 3) {
  core::Workload w;
  w.add(core::Workload::perStepCount(inst + ".ibs.0", 0, 1));
  w.add(core::Workload::countAtStep(inst + ".ibs.1", 0, burst, burst));
  for (int t = 1; t < horizon; ++t) {
    w.add(core::Workload::countAtStep(inst + ".ibs.1", t, 0, 0));
  }
  return w;
}

}  // namespace buffy::testing
