// Differential tests for the incremental query engine: a persistent
// solver session answering a sequence of mixed check/verify queries (with
// workloads re-bound as deltas in between) must be verdict- and
// trace-identical to a fresh Analysis per query.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "helpers.hpp"
#include "support/error.hpp"

namespace buffy::core {
namespace {

using buffy::testing::schedulerNet;
using buffy::testing::starvationWorkload;

/// Pins the arrival counts of both queues to an exact per-step pattern
/// (deterministic: every reachable trace is unique, so Sat models can be
/// compared exactly).
Workload exactWorkload(const std::string& inst, const std::vector<int>& q0,
                       const std::vector<int>& q1) {
  Workload w;
  for (std::size_t t = 0; t < q0.size(); ++t) {
    w.add(Workload::countAtStep(inst + ".ibs.0", static_cast<int>(t), q0[t],
                                q0[t]));
    w.add(Workload::countAtStep(inst + ".ibs.1", static_cast<int>(t), q1[t],
                                q1[t]));
  }
  return w;
}

struct Step {
  Workload workload;
  std::string query;
  bool forVerify = false;
};

/// Runs the step sequence once through a single incremental Analysis
/// (rebindWorkload between steps) and once through a fresh Analysis per
/// step; returns both result lists.
std::pair<std::vector<AnalysisResult>, std::vector<AnalysisResult>> runBoth(
    const Network& net, const AnalysisOptions& opts,
    const std::vector<Step>& steps) {
  std::vector<AnalysisResult> incremental;
  Analysis session(net, opts);
  for (const Step& step : steps) {
    session.rebindWorkload(step.workload);
    const Query q = Query::expr(step.query);
    incremental.push_back(step.forVerify ? session.verify(q)
                                         : session.check(q));
  }
  EXPECT_EQ(session.incrementalQueries(), steps.size());

  std::vector<AnalysisResult> fresh;
  for (const Step& step : steps) {
    Analysis analysis(net, opts);
    analysis.setWorkload(step.workload);
    const Query q = Query::expr(step.query);
    fresh.push_back(step.forVerify ? analysis.verify(q) : analysis.check(q));
  }
  return {std::move(incremental), std::move(fresh)};
}

TEST(IncrementalSession, MixedQuerySequenceMatchesFreshSolver) {
  const Network net = schedulerNet(models::kFairQueueBuggy, "fq", 2);
  AnalysisOptions opts;
  opts.horizon = 4;

  std::vector<Step> steps;
  // Deterministic workload A: steady queue 0, burst on queue 1.
  steps.push_back({exactWorkload("fq", {1, 1, 1, 1}, {2, 0, 0, 0}),
                   "fq.cdeq.0[T-1] >= 1", false});
  steps.push_back({exactWorkload("fq", {1, 1, 1, 1}, {2, 0, 0, 0}),
                   "fq.cdeq.0[T-1] + fq.cdeq.1[T-1] <= T", true});
  // Workload B re-bound onto the same encoding: silent queue 0.
  steps.push_back({exactWorkload("fq", {0, 0, 0, 0}, {2, 0, 0, 0}),
                   "fq.cdeq.0[T-1] > 0", false});  // unsat now
  steps.push_back({exactWorkload("fq", {0, 0, 0, 0}, {2, 0, 0, 0}),
                   "fq.cdeq.0[T-1] == 0", true});
  // Workload C: the starvation shape, loose pacing (non-deterministic).
  steps.push_back({starvationWorkload("fq", 4), "fq.cdeq.1[T-1] <= 1",
                   false});
  steps.push_back({starvationWorkload("fq", 4), "fq.cdeq.1[T-1] >= 2",
                   true});  // violated: pacing can starve queue 1
  // Back to workload A — the session must not have been poisoned by the
  // intermediate deltas.
  steps.push_back({exactWorkload("fq", {1, 1, 1, 1}, {2, 0, 0, 0}),
                   "fq.cdeq.0[T-1] >= 1", false});
  steps.push_back({exactWorkload("fq", {1, 1, 1, 1}, {2, 0, 0, 0}),
                   "fq.cdeq.1[T-1] >= T", false});

  const auto [incremental, fresh] = runBoth(net, opts, steps);
  ASSERT_EQ(incremental.size(), fresh.size());
  for (std::size_t i = 0; i < incremental.size(); ++i) {
    EXPECT_EQ(incremental[i].verdict, fresh[i].verdict)
        << "step " << i << ": " << steps[i].query;
  }
}

TEST(IncrementalSession, DeterministicWorkloadTracesMatchExactly) {
  // Under an exact (deterministic) workload the monitor series have a
  // unique reachable value per step, so the model-derived traces of the
  // incremental and fresh paths must agree entry-for-entry with the
  // concrete simulation.
  const Network net = schedulerNet(models::kFairQueueBuggy, "fq", 2);
  AnalysisOptions opts;
  opts.horizon = 3;
  const std::vector<int> q0 = {1, 0, 1};
  const std::vector<int> q1 = {2, 0, 0};

  ConcreteArrivals arrivals;
  for (int t = 0; t < 3; ++t) {
    arrivals["fq.ibs.0"].push_back(
        std::vector<ConcretePacket>(static_cast<std::size_t>(q0[t])));
    arrivals["fq.ibs.1"].push_back(
        std::vector<ConcretePacket>(static_cast<std::size_t>(q1[t])));
  }
  Analysis sim(net, opts);
  const Trace truth = sim.simulate(arrivals);

  Analysis session(net, opts);
  session.rebindWorkload(exactWorkload("fq", q0, q1));
  Analysis freshEngine(net, opts);
  freshEngine.setWorkload(exactWorkload("fq", q0, q1));

  const std::vector<std::string> series = {"fq.cdeq.0", "fq.cdeq.1"};
  for (int round = 0; round < 3; ++round) {
    const auto inc = session.check(Query::always());
    const auto fre = freshEngine.check(Query::always());
    ASSERT_EQ(inc.verdict, Verdict::Satisfiable);
    ASSERT_EQ(fre.verdict, Verdict::Satisfiable);
    for (const std::string& s : series) {
      for (int t = 0; t < 3; ++t) {
        EXPECT_EQ(inc.trace->at(s, t), truth.at(s, t))
            << s << "[" << t << "] round " << round;
        EXPECT_EQ(fre.trace->at(s, t), truth.at(s, t))
            << s << "[" << t << "] round " << round;
      }
    }
  }
  EXPECT_EQ(session.incrementalQueries(), 3u);
}

TEST(IncrementalSession, RebindBuildsEncodingOnDemand) {
  // rebindWorkload on a virgin Analysis builds the encoding, and the
  // arena/encoding survive re-binding (same object, new workload terms).
  Analysis analysis(schedulerNet(models::kRoundRobin, "rr", 2), {});
  analysis.rebindWorkload(exactWorkload("rr", {1, 1, 1, 1}, {0, 0, 0, 0}));
  const Encoding* enc = &analysis.encoding();
  const std::size_t termsBefore = enc->arena.size();
  EXPECT_FALSE(enc->workloadTerms.empty());

  analysis.rebindWorkload(Workload{});
  EXPECT_EQ(&analysis.encoding(), enc);
  EXPECT_TRUE(enc->workloadTerms.empty());
  // A re-bind to constraints the arena has already interned adds no terms.
  analysis.rebindWorkload(exactWorkload("rr", {1, 1, 1, 1}, {0, 0, 0, 0}));
  EXPECT_EQ(enc->arena.size(), termsBefore);
}

TEST(IncrementalSession, SetWorkloadStillLockedAfterEncoding) {
  // setWorkload keeps its build-time contract; rebindWorkload is the
  // post-encoding path.
  Analysis analysis(schedulerNet(models::kRoundRobin, "rr", 2), {});
  analysis.check(Query::always());
  EXPECT_THROW(analysis.setWorkload(Workload{}), AnalysisError);
  analysis.rebindWorkload(exactWorkload("rr", {1, 1, 1, 1}, {0, 0, 0, 0}));
  EXPECT_EQ(analysis.check(Query::expr("rr.cdeq.0[T-1] >= 1")).verdict,
            Verdict::Satisfiable);
}

}  // namespace
}  // namespace buffy::core
