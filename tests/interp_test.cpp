#include "backends/interp/interpreter.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "support/error.hpp"

namespace buffy::backends {
namespace {

using buffy::testing::schedulerNet;

TEST(Simulator, RoundRobinAlternates) {
  Simulator sim(schedulerNet(models::kRoundRobin, "rr", 2), 6);
  core::ConcreteArrivals arrivals;
  // Both queues continuously backlogged.
  for (int t = 0; t < 6; ++t) {
    arrivals["rr.ibs.0"].push_back({core::ConcretePacket{}});
    arrivals["rr.ibs.1"].push_back({core::ConcretePacket{}});
  }
  const core::Trace trace = sim.run(arrivals);
  // One dequeue per step, alternating.
  EXPECT_EQ(trace.at("rr.cdeq.0", 5), 3);
  EXPECT_EQ(trace.at("rr.cdeq.1", 5), 3);
  EXPECT_EQ(trace.at("rr.ob.out", 0), 1);
}

TEST(Simulator, StrictPriorityStarvesLowPriority) {
  Simulator sim(schedulerNet(models::kStrictPriority, "sp", 2), 5);
  core::ConcreteArrivals arrivals;
  for (int t = 0; t < 5; ++t) {
    arrivals["sp.ibs.0"].push_back({core::ConcretePacket{}});
    arrivals["sp.ibs.1"].push_back({core::ConcretePacket{}});
  }
  const core::Trace trace = sim.run(arrivals);
  EXPECT_EQ(trace.at("sp.cdeq.0", 4), 5);
  EXPECT_EQ(trace.at("sp.cdeq.1", 4), 0);
  EXPECT_EQ(trace.at("sp.ibs.1.backlog", 4), 5);
}

TEST(Simulator, BuggyFqStarvation) {
  // The §2.1 bug, concretely: queue 0 paced 1,0,1,1,... while queue 1 has
  // a burst of 3 at t0 — queue 1 is served exactly once.
  Simulator sim(schedulerNet(models::kFairQueueBuggy, "fq", 2), 6);
  core::ConcreteArrivals arrivals;
  arrivals["fq.ibs.0"] = {{core::ConcretePacket{}},
                          {},
                          {core::ConcretePacket{}},
                          {core::ConcretePacket{}},
                          {core::ConcretePacket{}},
                          {core::ConcretePacket{}}};
  arrivals["fq.ibs.1"].push_back(
      {core::ConcretePacket{}, core::ConcretePacket{}, core::ConcretePacket{}});
  const core::Trace trace = sim.run(arrivals);
  EXPECT_EQ(trace.at("fq.cdeq.0", 5), 5);
  EXPECT_EQ(trace.at("fq.cdeq.1", 5), 1);
  EXPECT_GT(trace.at("fq.ibs.1.backlog", 5), 0);
}

TEST(Simulator, FixedFqDoesNotStarve) {
  Simulator sim(schedulerNet(models::kFairQueueFixed, "fq", 2), 6);
  core::ConcreteArrivals arrivals;
  arrivals["fq.ibs.0"] = {{core::ConcretePacket{}},
                          {},
                          {core::ConcretePacket{}},
                          {core::ConcretePacket{}},
                          {core::ConcretePacket{}},
                          {core::ConcretePacket{}}};
  arrivals["fq.ibs.1"].push_back(
      {core::ConcretePacket{}, core::ConcretePacket{}, core::ConcretePacket{}});
  const core::Trace trace = sim.run(arrivals);
  // With the RFC fix, queue 1 keeps its round-robin share.
  EXPECT_GE(trace.at("fq.cdeq.1", 5), 2);
}

TEST(Simulator, DeficitRoundRobinByteFairness) {
  // DRR with QUANTUM=3: q0 sends 2-byte packets, q1 sends 3-byte packets.
  core::ProgramSpec spec;
  spec.instance = "drr";
  spec.source = models::kDeficitRoundRobin;
  spec.compile.constants["N"] = 2;
  spec.compile.constants["QUANTUM"] = 3;
  spec.buffers = {
      {.param = "ibs", .role = core::BufferSpec::Role::Input, .capacity = 8,
       .schema = {{"bytes"}}, .maxArrivalsPerStep = 4},
      {.param = "ob", .role = core::BufferSpec::Role::Output, .capacity = 32,
       .schema = {{"bytes"}}},
  };
  core::Network net;
  net.add(spec);
  Simulator sim(net, 6);
  core::ConcreteArrivals arrivals;
  // Fill both queues up front.
  arrivals["drr.ibs.0"].push_back(
      {{{"bytes", 2}}, {{"bytes", 2}}, {{"bytes", 2}}, {{"bytes", 2}}});
  arrivals["drr.ibs.1"].push_back(
      {{{"bytes", 3}}, {{"bytes", 3}}, {{"bytes", 3}}});
  const core::Trace trace = sim.run(arrivals);
  // Visit 1 (t0, q0): deficit 3 -> one 2-byte packet leaves, deficit 1.
  EXPECT_EQ(trace.at("drr.bdeq.0", 0), 2);
  // Visit 2 (t1, q1): deficit 3 -> one 3-byte packet, deficit reset logic.
  EXPECT_EQ(trace.at("drr.bdeq.1", 1), 3);
  // Visit 3 (t2, q0): deficit 1+3=4 -> two 2-byte packets.
  EXPECT_EQ(trace.at("drr.bdeq.0", 2), 6);
  // Long-run byte shares stay within one quantum of each other while both
  // queues are backlogged.
  EXPECT_LE(std::abs(trace.at("drr.bdeq.0", 3) - trace.at("drr.bdeq.1", 3)),
            3);
}

TEST(Simulator, CapacityDropsAccounted) {
  Simulator sim(schedulerNet(models::kRoundRobin, "rr", 2, /*capacity=*/2), 2);
  core::ConcreteArrivals arrivals;
  arrivals["rr.ibs.0"].push_back({core::ConcretePacket{}, core::ConcretePacket{},
                                  core::ConcretePacket{}});
  const core::Trace trace = sim.run(arrivals);
  EXPECT_EQ(trace.at("rr.ibs.0.dropped", 0), 1);
}

TEST(Simulator, UnknownBufferRejected) {
  Simulator sim(schedulerNet(models::kRoundRobin, "rr", 2), 3);
  core::ConcreteArrivals arrivals;
  arrivals["rr.nosuch"].push_back({});
  EXPECT_THROW(sim.run(arrivals), AnalysisError);
}

TEST(Simulator, TooManyStepsRejected) {
  Simulator sim(schedulerNet(models::kRoundRobin, "rr", 2), 2);
  core::ConcreteArrivals arrivals;
  arrivals["rr.ibs.0"] = {{}, {}, {}};
  EXPECT_THROW(sim.run(arrivals), AnalysisError);
}

TEST(Simulator, InputsListed) {
  Simulator sim(schedulerNet(models::kRoundRobin, "rr", 3), 2);
  const auto inputs = sim.inputs();
  ASSERT_EQ(inputs.size(), 3u);
  EXPECT_EQ(inputs[0], "rr.ibs.0");
}

TEST(Simulator, ReplayReproducesSolverTrace) {
  // Solve for a witness, replay its arrivals concretely, and require the
  // monitor series to match exactly — the interpreter as a differential
  // oracle for the Z3 backend.
  core::Network net = schedulerNet(models::kRoundRobin, "rr", 2);
  core::AnalysisOptions opts;
  opts.horizon = 5;
  core::Analysis analysis(net, opts);
  const auto result =
      analysis.check(core::Query::expr("rr.cdeq.0[T-1] >= 3"));
  ASSERT_TRUE(result.sat());
  ASSERT_TRUE(result.trace.has_value());

  Simulator sim(net, 5);
  const core::Trace replayed = sim.replay(*result.trace);
  for (const char* series :
       {"rr.cdeq.0", "rr.cdeq.1", "rr.ibs.0.backlog", "rr.ibs.1.backlog",
        "rr.ob.out"}) {
    for (int t = 0; t < 5; ++t) {
      EXPECT_EQ(replayed.at(series, t), result.trace->at(series, t))
          << series << " @t" << t;
    }
  }
}

TEST(Simulator, ValPacketHelper) {
  const auto pkt = valPacket(7);
  EXPECT_EQ(pkt.at("val"), 7);
}

TEST(Trace, RenderAndAccessors) {
  Simulator sim(schedulerNet(models::kRoundRobin, "rr", 2), 2);
  const core::Trace trace = sim.run({});
  EXPECT_THROW(trace.at("nosuch", 0), Error);
  EXPECT_THROW(trace.at("rr.cdeq.0", 9), Error);
  const std::string rendered = trace.render();
  EXPECT_NE(rendered.find("rr.cdeq.0"), std::string::npos);
  EXPECT_NE(rendered.find("t1"), std::string::npos);
  // Full render includes at least everything the headline render shows.
  EXPECT_GE(trace.render(true).size(), rendered.size());
}

TEST(Trace, CsvAndJsonExport) {
  Simulator sim(schedulerNet(models::kRoundRobin, "rr", 2), 2);
  core::ConcreteArrivals arrivals;
  arrivals["rr.ibs.0"].push_back({core::ConcretePacket{}});
  const core::Trace trace = sim.run(arrivals);

  const std::string csv = trace.toCsv();
  EXPECT_NE(csv.find("series,t0,t1\n"), std::string::npos) << csv;
  EXPECT_NE(csv.find("rr.cdeq.0,1,1\n"), std::string::npos) << csv;
  // One header + one row per series.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            trace.series.size() + 1);

  const std::string json = trace.toJson();
  EXPECT_NE(json.find("\"horizon\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rr.cdeq.0\": [1, 1]"), std::string::npos) << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace buffy::backends
