// Job-layer tests (DESIGN.md §12): JobPool claim/cutoff/cancel semantics
// and RaceGroup winner selection. These are pure threading tests — no
// solver — so they are cheap enough to hammer under TSan (the `jobs`
// ctest label feeds the thread-sanitizer CI job).
#include "jobs/job.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "jobs/race.hpp"

namespace buffy::jobs {
namespace {

TEST(JobPool, RunsEveryJobOnce) {
  std::vector<std::atomic<int>> hits(32);
  JobPool pool;
  JobPool::RunSpec spec;
  spec.jobs = hits.size();
  spec.workers = 4;
  spec.body = [&](JobContext&, std::size_t idx) { hits[idx].fetch_add(1); };
  pool.run(spec);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(pool.completed(), hits.size());
  EXPECT_EQ(pool.cutoff(), JobPool::kNone);
  EXPECT_FALSE(pool.canceled());
}

TEST(JobPool, SingleWorkerRunsInlineInClaimOrder) {
  std::vector<std::size_t> order;
  const auto caller = std::this_thread::get_id();
  JobPool pool;
  JobPool::RunSpec spec;
  spec.jobs = 8;
  spec.workers = 1;
  spec.body = [&](JobContext& ctx, std::size_t idx) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(ctx.worker(), 0u);
    order.push_back(idx);
  };
  pool.run(spec);
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(JobPool, CutoffSkipsHigherUnclaimedJobs) {
  // Single worker, claims arrive in index order: job 2 cuts, so 3..7 are
  // skipped and completed() counts only the jobs whose body ran.
  std::vector<std::size_t> ran;
  JobPool pool;
  JobPool::RunSpec spec;
  spec.jobs = 8;
  spec.workers = 1;
  spec.body = [&](JobContext&, std::size_t idx) {
    ran.push_back(idx);
    if (idx == 2) pool.cutAt(2);
  };
  pool.run(spec);
  EXPECT_EQ(ran, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(pool.completed(), 3u);
  EXPECT_EQ(pool.cutoff(), 2u);
  EXPECT_FALSE(pool.canceled());
}

TEST(JobPool, CutoffResolvesToLowestIndex) {
  // Every job tries to cut at its own index; CAS-min must resolve the
  // final cutoff to the lowest job index under any schedule.
  JobPool pool;
  JobPool::RunSpec spec;
  spec.jobs = 16;
  spec.workers = 4;
  spec.body = [&](JobContext&, std::size_t idx) { pool.cutAt(idx); };
  pool.run(spec);
  EXPECT_EQ(pool.cutoff(), 0u);
}

TEST(JobPool, JobsAtOrBelowCutoffAreNeverInterrupted) {
  // Worker A claims job 0 and blocks until released; worker B runs job 1
  // and cuts at 0. Job 0 is AT the cutoff: it must run to completion and
  // its interrupt hook must never fire.
  std::atomic<bool> release{false};
  std::atomic<int> hookFired{0};
  JobPool pool;
  JobPool::RunSpec spec;
  spec.jobs = 2;
  spec.workers = 2;
  spec.body = [&](JobContext& ctx, std::size_t idx) {
    if (idx == 0) {
      const ScopedInterrupt guard(ctx, [&] { hookFired.fetch_add(1); });
      while (!release.load()) std::this_thread::yield();
    } else {
      pool.cutAt(0);
      release.store(true);
    }
  };
  pool.run(spec);
  EXPECT_EQ(hookFired.load(), 0);
  EXPECT_EQ(pool.completed(), 2u);
}

TEST(JobPool, CutInterruptsInFlightJobAboveCutoff) {
  // Job 1 blocks until its own interrupt hook fires; job 0 cuts at 0,
  // which must interrupt the in-flight job 1 through the published hook.
  std::atomic<bool> interrupted{false};
  std::atomic<bool> job1Started{false};
  JobPool pool;
  JobPool::RunSpec spec;
  spec.jobs = 2;
  spec.workers = 2;
  spec.body = [&](JobContext& ctx, std::size_t idx) {
    if (idx == 1) {
      const ScopedInterrupt guard(ctx, [&] { interrupted.store(true); });
      job1Started.store(true);
      while (!interrupted.load()) std::this_thread::yield();
    } else {
      while (!job1Started.load()) std::this_thread::yield();
      pool.cutAt(0);
    }
  };
  pool.run(spec);
  EXPECT_TRUE(interrupted.load());
}

TEST(JobPool, CancelAllStopsNewClaimsAndInterruptsInFlight) {
  std::atomic<bool> interrupted{false};
  std::atomic<std::size_t> ran{0};
  JobPool pool;
  JobPool::RunSpec spec;
  spec.jobs = 64;
  spec.workers = 2;
  spec.body = [&](JobContext& ctx, std::size_t idx) {
    ran.fetch_add(1);
    if (idx == 0) {
      const ScopedInterrupt guard(ctx, [&] { interrupted.store(true); });
      while (!interrupted.load() && !ctx.canceled()) {
        std::this_thread::yield();
      }
    } else {
      pool.cancelAll();
    }
  };
  pool.run(spec);
  EXPECT_TRUE(pool.canceled());
  // Job 0 (in flight) was interrupted or saw the cancel flag; almost all
  // of the remaining 62 claims were skipped before their body ran.
  EXPECT_LT(ran.load(), 64u);
}

TEST(JobPool, SetupFailureRetiresWorkerAndDrainsQueue) {
  // Worker 1's setup fails; worker 0 must still run the whole index space.
  std::atomic<std::size_t> ran{0};
  std::mutex mu;
  std::set<std::size_t> workers;
  JobPool pool;
  JobPool::RunSpec spec;
  spec.jobs = 12;
  spec.workers = 2;
  spec.setup = [&](JobContext& ctx) { return ctx.worker() != 1; };
  spec.body = [&](JobContext& ctx, std::size_t) {
    ran.fetch_add(1);
    const std::lock_guard<std::mutex> lock(mu);
    workers.insert(ctx.worker());
  };
  pool.run(spec);
  EXPECT_EQ(ran.load(), 12u);
  EXPECT_EQ(workers.count(1), 0u);
}

TEST(JobPool, HookExchangeIsSafeAgainstConcurrentCancel) {
  // Publish/retract hooks in a tight loop on every job while an outside
  // thread spams cancelAll: no hook may fire after it was retracted (the
  // flag it writes is stack-local to the job body). TSan validates the
  // mutex ordering; the assert validates the exchange contract.
  JobPool pool;
  JobPool::RunSpec spec;
  spec.jobs = 200;
  spec.workers = 4;
  spec.body = [&](JobContext& ctx, std::size_t) {
    bool alive = true;
    {
      const ScopedInterrupt guard(ctx, [&alive] { EXPECT_TRUE(alive); });
      std::this_thread::yield();
    }
    alive = false;
  };
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    pool.cancelAll();
  });
  pool.run(spec);
  canceller.join();
  EXPECT_TRUE(pool.canceled());
}

using StringRace = RaceGroup<std::string>;

bool soundString(const std::string& s) { return s.rfind("sound", 0) == 0; }

TEST(RaceGroup, FirstSoundAnswerWins) {
  // Member 0 answers fast but unsound; member 1 is sound. The unsound
  // answer must never win, whatever the schedule.
  std::vector<StringRace::Member> members;
  members.push_back({"fast-unknown", [](JobContext&) {
                       return std::string("unknown");
                     }});
  members.push_back({"slow-sound", [](JobContext&) {
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(5));
                       return std::string("sound:B");
                     }});
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    const auto outcome = StringRace::run(members, threads, soundString);
    ASSERT_TRUE(outcome.result.has_value());
    EXPECT_EQ(*outcome.result, "sound:B");
    EXPECT_EQ(outcome.winner, 1u);
    EXPECT_TRUE(outcome.members[1].won);
    EXPECT_FALSE(outcome.members[0].won);
  }
}

TEST(RaceGroup, WinnerInterruptsLosers) {
  std::atomic<bool> loserInterrupted{false};
  std::atomic<bool> hookPublished{false};
  std::vector<StringRace::Member> members;
  members.push_back({"hang", [&](JobContext& ctx) {
                       const ScopedInterrupt guard(
                           ctx, [&] { loserInterrupted.store(true); });
                       hookPublished.store(true);
                       while (!loserInterrupted.load()) {
                         std::this_thread::yield();
                       }
                       return std::string("late");
                     }});
  members.push_back({"win", [&](JobContext&) {
                       // Only win once the loser is interruptible, so the
                       // cancel provably lands on the published hook.
                       while (!hookPublished.load()) {
                         std::this_thread::yield();
                       }
                       return std::string("sound:win");
                     }});
  const auto outcome = StringRace::run(members, 2, soundString);
  ASSERT_TRUE(outcome.result.has_value());
  EXPECT_EQ(*outcome.result, "sound:win");
  EXPECT_TRUE(loserInterrupted.load());
  // The loser still ran to completion after the interrupt; its (unsound)
  // result is logged but did not win.
  EXPECT_TRUE(outcome.members[0].finished);
  EXPECT_FALSE(outcome.members[0].won);
}

TEST(RaceGroup, AllUnsoundFallsBackToLowestIndexDeterministically) {
  std::vector<StringRace::Member> members;
  members.push_back({"a", [](JobContext&) {
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(3));
                       return std::string("unknown:a");
                     }});
  members.push_back({"b", [](JobContext&) { return std::string("unknown:b"); }});
  for (int repeat = 0; repeat < 5; ++repeat) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
      const auto outcome = StringRace::run(members, threads, soundString);
      ASSERT_TRUE(outcome.result.has_value());
      // Member b always finishes first chronologically, but the fallback
      // is by index, not by completion order.
      EXPECT_EQ(*outcome.result, "unknown:a");
      EXPECT_EQ(outcome.winner, JobPool::kNone);
    }
  }
}

TEST(RaceGroup, ThrowingMemberIsLoggedNotFatal) {
  std::vector<StringRace::Member> members;
  members.push_back({"boom", [](JobContext&) -> std::string {
                       throw std::runtime_error("solver crashed");
                     }});
  members.push_back({"ok", [](JobContext&) { return std::string("sound:ok"); }});
  const auto outcome = StringRace::run(members, 2, soundString);
  ASSERT_TRUE(outcome.result.has_value());
  EXPECT_EQ(*outcome.result, "sound:ok");
  EXPECT_EQ(outcome.members[0].error, "solver crashed");
  EXPECT_FALSE(outcome.members[0].finished);
}

TEST(RaceGroup, DeterministicAcrossThreadCountsAndSchedules) {
  // One sound member among unsound siblings with randomized-ish delays:
  // whatever the schedule or thread count, the selected result is the
  // sound one. This is the schedule-invariance contract the portfolio
  // relies on.
  for (int repeat = 0; repeat < 10; ++repeat) {
    std::vector<StringRace::Member> members;
    for (int m = 0; m < 4; ++m) {
      const bool sound = m == 2;
      members.push_back(
          {"m" + std::to_string(m), [m, sound, repeat](JobContext&) {
             std::this_thread::sleep_for(
                 std::chrono::microseconds(((m * 7 + repeat * 13) % 5) * 100));
             return sound ? std::string("sound:m2")
                          : std::string("unknown:m" + std::to_string(m));
           }});
    }
    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{0}}) {
      const auto outcome = StringRace::run(members, threads, soundString);
      ASSERT_TRUE(outcome.result.has_value());
      EXPECT_EQ(*outcome.result, "sound:m2")
          << "threads=" << threads << " repeat=" << repeat;
    }
  }
}

}  // namespace
}  // namespace buffy::jobs
