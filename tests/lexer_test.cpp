#include "lang/lexer.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace buffy::lang {
namespace {

std::vector<TokenKind> kinds(const std::string& source) {
  std::vector<TokenKind> out;
  for (const auto& tok : lex(source)) out.push_back(tok.kind);
  return out;
}

TEST(Lexer, EmptyInputYieldsEof) {
  const auto toks = lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::EndOfFile);
}

TEST(Lexer, HyphenatedBuiltins) {
  const auto toks = lex("backlog-p backlog-b move-p move-b");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, TokenKind::KwBacklogP);
  EXPECT_EQ(toks[1].kind, TokenKind::KwBacklogB);
  EXPECT_EQ(toks[2].kind, TokenKind::KwMoveP);
  EXPECT_EQ(toks[3].kind, TokenKind::KwMoveB);
}

TEST(Lexer, BacklogMinusVariableIsSubtraction) {
  // `backlog - x` and `backlog-px` must NOT lex as the builtin.
  const auto toks = lex("backlog - x");
  EXPECT_EQ(toks[0].kind, TokenKind::Identifier);
  EXPECT_EQ(toks[1].kind, TokenKind::Minus);

  const auto toks2 = lex("backlog-px");
  EXPECT_EQ(toks2[0].kind, TokenKind::Identifier);
  EXPECT_EQ(toks2[0].text, "backlog");
  EXPECT_EQ(toks2[1].kind, TokenKind::Minus);
  EXPECT_EQ(toks2[2].text, "px");
}

TEST(Lexer, PipeVariants) {
  const auto toks = lex("| |> ||");
  EXPECT_EQ(toks[0].kind, TokenKind::Pipe);
  EXPECT_EQ(toks[1].kind, TokenKind::PipeGt);
  EXPECT_EQ(toks[2].kind, TokenKind::Pipe);  // || is a synonym of |
}

TEST(Lexer, AmpVariants) {
  const auto toks = lex("& &&");
  EXPECT_EQ(toks[0].kind, TokenKind::Amp);
  EXPECT_EQ(toks[1].kind, TokenKind::Amp);
}

TEST(Lexer, DotsAndRanges) {
  const auto toks = lex("0..N l.has");
  EXPECT_EQ(toks[0].kind, TokenKind::IntLiteral);
  EXPECT_EQ(toks[1].kind, TokenKind::DotDot);
  EXPECT_EQ(toks[2].kind, TokenKind::Identifier);
  EXPECT_EQ(toks[3].kind, TokenKind::Identifier);
  EXPECT_EQ(toks[4].kind, TokenKind::Dot);
}

TEST(Lexer, ComparisonOperators) {
  EXPECT_EQ(kinds("== != < <= > >= = !"),
            (std::vector<TokenKind>{
                TokenKind::EqEq, TokenKind::NotEq, TokenKind::Lt,
                TokenKind::Le, TokenKind::Gt, TokenKind::Ge,
                TokenKind::Assign, TokenKind::Bang, TokenKind::EndOfFile}));
}

TEST(Lexer, Keywords) {
  const auto toks =
      lex("global local monitor havoc int bool list buffer if else for in do "
          "true false assert assume def return");
  const std::vector<TokenKind> expected = {
      TokenKind::KwGlobal, TokenKind::KwLocal,  TokenKind::KwMonitor,
      TokenKind::KwHavoc,  TokenKind::KwInt,    TokenKind::KwBool,
      TokenKind::KwList,   TokenKind::KwBuffer, TokenKind::KwIf,
      TokenKind::KwElse,   TokenKind::KwFor,    TokenKind::KwIn,
      TokenKind::KwDo,     TokenKind::KwTrue,   TokenKind::KwFalse,
      TokenKind::KwAssert, TokenKind::KwAssume, TokenKind::KwDef,
      TokenKind::KwReturn, TokenKind::EndOfFile};
  EXPECT_EQ(kinds("global local monitor havoc int bool list buffer if else "
                  "for in do true false assert assume def return"),
            expected);
  (void)toks;
}

TEST(Lexer, CommentsSkipped) {
  const auto toks = lex("x // comment to end of line\ny");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "x");
  EXPECT_EQ(toks[1].text, "y");
}

TEST(Lexer, LineAndColumnTracking) {
  const auto toks = lex("a\n  b");
  EXPECT_EQ(toks[0].loc.line, 1u);
  EXPECT_EQ(toks[0].loc.column, 1u);
  EXPECT_EQ(toks[1].loc.line, 2u);
  EXPECT_EQ(toks[1].loc.column, 3u);
}

TEST(Lexer, IntegerLiteralValue) {
  const auto toks = lex("12345");
  EXPECT_EQ(toks[0].value, 12345);
}

TEST(Lexer, RejectsUnknownCharacter) {
  EXPECT_THROW(lex("a $ b"), SyntaxError);
  EXPECT_THROW(lex("@"), SyntaxError);
}

TEST(Lexer, RejectsOutOfRangeLiteral) {
  EXPECT_THROW(lex("99999999999999999999999999"), SyntaxError);
}

TEST(Lexer, UnderscoreIdentifiers) {
  const auto toks = lex("_x x_y __z");
  EXPECT_EQ(toks[0].text, "_x");
  EXPECT_EQ(toks[1].text, "x_y");
  EXPECT_EQ(toks[2].text, "__z");
}

}  // namespace
}  // namespace buffy::lang
