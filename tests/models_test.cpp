#include "models/library.hpp"

#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "lang/typecheck.hpp"

namespace buffy::models {
namespace {

TEST(Models, RegistryComplete) {
  const auto& all = allModels();
  ASSERT_EQ(all.size(), 8u);
  std::set<std::string> names;
  for (const auto& entry : all) names.insert(entry.name);
  EXPECT_TRUE(names.count("fq_buggy"));
  EXPECT_TRUE(names.count("fq_fixed"));
  EXPECT_TRUE(names.count("round_robin"));
  EXPECT_TRUE(names.count("strict_priority"));
  EXPECT_TRUE(names.count("drr"));
  EXPECT_TRUE(names.count("aimd"));
  EXPECT_TRUE(names.count("path_server"));
  EXPECT_TRUE(names.count("delay_server"));
}

TEST(Models, Table1LineCounts) {
  // The Buffy column of Table 1: FQ ~18, RR ~10, SP ~7. Our sources carry
  // the ghost-monitor updates §6.1 adds, so allow a small margin — but the
  // ordering and rough magnitudes must match the paper.
  const std::size_t fq = modelLoc(kFairQueueBuggy);
  const std::size_t rr = modelLoc(kRoundRobin);
  const std::size_t sp = modelLoc(kStrictPriority);
  EXPECT_GE(fq, 18u);
  EXPECT_LE(fq, 40u);
  EXPECT_GE(rr, 10u);
  EXPECT_LE(rr, 20u);
  EXPECT_GE(sp, 7u);
  EXPECT_LE(sp, 15u);
  EXPECT_GT(fq, rr);
  EXPECT_GT(rr, sp);
}

TEST(Models, ProgramNamesMatch) {
  EXPECT_EQ(lang::parse(kFairQueueBuggy).program.name, "fq");
  EXPECT_EQ(lang::parse(kFairQueueFixed).program.name, "fq");
  EXPECT_EQ(lang::parse(kRoundRobin).program.name, "rr");
  EXPECT_EQ(lang::parse(kStrictPriority).program.name, "sp");
  EXPECT_EQ(lang::parse(kDeficitRoundRobin).program.name, "drr");
  EXPECT_EQ(lang::parse(kAimdCca).program.name, "aimd");
  EXPECT_EQ(lang::parse(kPathServer).program.name, "path");
  EXPECT_EQ(lang::parse(kDelayServer).program.name, "delay");
}

TEST(Models, SchedulersAreParametricInN) {
  for (const char* source :
       {kFairQueueBuggy, kFairQueueFixed, kRoundRobin, kStrictPriority}) {
    for (const int n : {2, 3, 5}) {
      lang::Ast prog = lang::parse(source);
      lang::CompileOptions opts;
      opts.constants["N"] = n;
      opts.defaultListCapacity = n;
      EXPECT_NO_THROW(lang::checkOrThrow(prog, opts)) << "N=" << n;
    }
  }
}

TEST(Models, FqUsesTheTwoListAbstraction) {
  lang::Ast prog = lang::parse(kFairQueueBuggy);
  lang::CompileOptions opts;
  opts.constants["N"] = 2;
  opts.defaultListCapacity = 2;
  const auto symbols = lang::checkOrThrow(prog, opts);
  EXPECT_TRUE(symbols.globals.count("nq"));
  EXPECT_TRUE(symbols.globals.count("oq"));
  EXPECT_EQ(symbols.globals.at("nq").kind, lang::TypeKind::List);
  EXPECT_TRUE(symbols.monitors.count("cdeq"));
}

TEST(Models, CcacProgramsDeclareMonitors) {
  lang::CompileOptions opts;
  opts.constants = {{"RATE", 1}, {"BUCKET", 2}, {"RTO", 3}};
  {
    lang::Ast prog = lang::parse(kAimdCca);
    const auto symbols = lang::checkOrThrow(prog, opts);
    EXPECT_TRUE(symbols.monitors.count("mcwnd"));
    EXPECT_TRUE(symbols.monitors.count("msent"));
  }
  {
    lang::Ast prog = lang::parse(kPathServer);
    const auto symbols = lang::checkOrThrow(prog, opts);
    EXPECT_TRUE(symbols.monitors.count("mserved"));
  }
}

}  // namespace
}  // namespace buffy::models
