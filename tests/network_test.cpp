#include "core/network.hpp"

#include <gtest/gtest.h>

#include "backends/interp/interpreter.hpp"
#include "core/analysis.hpp"
#include "helpers.hpp"
#include "support/error.hpp"

namespace buffy::core {
namespace {

// A trivial forwarder: everything in `in` moves to `out` each step.
constexpr const char* kForward = R"(
fwd(buffer src, buffer snk) {
  move-p(src, snk, backlog-p(src));
})";

ProgramSpec forwarder(const std::string& instance) {
  ProgramSpec spec;
  spec.instance = instance;
  spec.source = kForward;
  spec.buffers = {
      {.param = "src", .role = BufferSpec::Role::Input, .capacity = 8,
       .maxArrivalsPerStep = 2},
      {.param = "snk", .role = BufferSpec::Role::Output, .capacity = 8},
  };
  return spec;
}

TEST(Network, FlushAddsOneStepOfLatencyPerHop) {
  // a -> b: a packet arriving at a at t0 leaves b at t1.
  Network net;
  net.add(forwarder("a")).add(forwarder("b"));
  net.connect("a", "snk", "b", "src");

  backends::Simulator sim(net, 4);
  ConcreteArrivals arrivals;
  arrivals["a.src"].push_back({ConcretePacket{}});
  const Trace trace = sim.run(arrivals);
  EXPECT_EQ(trace.at("a.snk.out", 0), 1);  // leaves a at t0
  EXPECT_EQ(trace.at("b.snk.out", 0), 0);
  EXPECT_EQ(trace.at("b.snk.out", 1), 1);  // leaves b at t1
  EXPECT_EQ(trace.at("b.snk.out", 2), 0);
}

TEST(Network, ThreeHopChain) {
  Network net;
  net.add(forwarder("a")).add(forwarder("b")).add(forwarder("c"));
  net.connect("a", "snk", "b", "src");
  net.connect("b", "snk", "c", "src");

  backends::Simulator sim(net, 5);
  ConcreteArrivals arrivals;
  arrivals["a.src"].push_back({ConcretePacket{}, ConcretePacket{}});
  const Trace trace = sim.run(arrivals);
  EXPECT_EQ(trace.at("c.snk.out", 2), 2);
  // Only a's input is external.
  EXPECT_EQ(sim.inputs().size(), 1u);
  EXPECT_EQ(sim.inputs()[0], "a.src");
}

TEST(Network, ConnectionValidation) {
  {
    Network net;
    net.add(forwarder("a")).add(forwarder("b"));
    net.connect("a", "src", "b", "src");  // source is not an output
    AnalysisOptions opts;
    EXPECT_THROW(Analysis(net, opts), AnalysisError);
  }
  {
    Network net;
    net.add(forwarder("a")).add(forwarder("b"));
    net.connect("a", "snk", "b", "snk");  // target is not an input
    AnalysisOptions opts;
    EXPECT_THROW(Analysis(net, opts), AnalysisError);
  }
  {
    Network net;
    net.add(forwarder("a")).add(forwarder("b")).add(forwarder("c"));
    net.connect("a", "snk", "b", "src");
    net.connect("a", "snk", "c", "src");  // output connected twice
    AnalysisOptions opts;
    EXPECT_THROW(Analysis(net, opts), AnalysisError);
  }
  {
    Network net;
    net.add(forwarder("a"));
    net.connect("a", "snk", "zz", "src");  // unknown instance
    AnalysisOptions opts;
    EXPECT_THROW(Analysis(net, opts), AnalysisError);
  }
}

TEST(Network, DuplicateInstanceNamesRejected) {
  Network net;
  net.add(forwarder("a")).add(forwarder("a"));
  AnalysisOptions opts;
  EXPECT_THROW(Analysis(net, opts), AnalysisError);
}

TEST(Network, MissingBufferSpecRejected) {
  ProgramSpec spec = forwarder("a");
  spec.buffers.pop_back();  // drop the 'out' spec
  Network net;
  net.add(spec);
  AnalysisOptions opts;
  EXPECT_THROW(Analysis(net, opts), AnalysisError);
}

TEST(Network, ContractReplacesComponent) {
  // a -> lossy "middle" contract -> query over emissions.
  Network net;
  net.add(forwarder("a")).add(forwarder("mid"));
  net.connect("a", "snk", "mid", "src");
  Contract contract;
  contract.maxOutPerStep = 2;
  // Interface invariant: cumulative emissions never exceed cumulative
  // consumption (no packet creation).
  contract.invariants = [](const ContractView& view, ir::TermArena& arena,
                           std::vector<ir::TermRef>& out) {
    ir::TermRef consumed = arena.intConst(0);
    ir::TermRef emitted = arena.intConst(0);
    for (int t = 0; t < view.horizon(); ++t) {
      consumed = arena.add(consumed, view.consumed("src", -1, t));
      emitted = arena.add(emitted, view.emitted("snk", -1, t));
      out.push_back(arena.le(emitted, consumed));
    }
  };
  net.useContract("mid", contract);

  AnalysisOptions opts;
  opts.horizon = 4;
  Analysis analysis(net, opts);
  // With at most 2 external arrivals per step into a, the contract can
  // never emit more than the total that arrived.
  const auto impossible = analysis.check(Query::custom(
      "emitted beyond consumed", [](const SeriesView& view, ir::TermArena& a) {
        ir::TermRef emitted = a.intConst(0);
        ir::TermRef arrived = a.intConst(0);
        for (int t = 0; t < view.horizon(); ++t) {
          emitted = a.add(emitted, view.find("mid.snk.emitted")->at(
                                       static_cast<std::size_t>(t)));
          arrived = a.add(arrived, view.find("a.src.arrived")->at(
                                       static_cast<std::size_t>(t)));
        }
        return a.gt(emitted, arrived);
      }));
  EXPECT_EQ(impossible.verdict, Verdict::Unsatisfiable);

  // But emitting *some* packets is possible.
  const auto possible = analysis.check(Query::custom(
      "any emission", [](const SeriesView& view, ir::TermArena& a) {
        return a.gt(view.find("mid.snk.emitted")->back(), a.intConst(0));
      }));
  EXPECT_EQ(possible.verdict, Verdict::Satisfiable);
}

TEST(Network, ContractsCannotBeSimulated) {
  Network net;
  net.add(forwarder("a"));
  net.useContract("a", Contract{});
  AnalysisOptions opts;
  opts.horizon = 2;
  Analysis analysis(net, opts);
  EXPECT_THROW(analysis.simulate({}), AnalysisError);
}

TEST(Network, ContractViewValidation) {
  std::map<std::string, std::vector<ir::TermRef>> series;
  ir::TermArena arena;
  series["m.src.consumed"] = {arena.intConst(1)};
  const ContractView view(&series, "m", 1);
  EXPECT_EQ(view.consumed("src", -1, 0)->value, 1);
  EXPECT_THROW(view.consumed("src", -1, 5), AnalysisError);
  EXPECT_THROW(view.emitted("snk", -1, 0), AnalysisError);
}

}  // namespace
}  // namespace buffy::core
