// Randomized differential soundness tests for the encoding optimizer:
// on seeded random term DAGs, the optimized problem must (a) evaluate
// identically to the original under every seed-satisfying concrete
// assignment, and (b) get the same Z3 verdict, with witness-completed
// models satisfying the ORIGINAL constraints.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "backends/z3/z3_backend.hpp"
#include "ir/term_eval.hpp"
#include "opt/optimizer.hpp"

namespace buffy::opt {
namespace {

using ir::Sort;
using ir::TermRef;

struct RandomProblem {
  std::vector<TermRef> intVars;
  std::vector<TermRef> boolVars;
  std::vector<std::int64_t> hiBound;  // per int var: x in [0, hiBound]
  std::vector<TermRef> structural;
  std::vector<TermRef> delta;
};

class Builder {
 public:
  Builder(ir::TermArena& arena, unsigned seed) : arena_(arena), rng_(seed) {}

  RandomProblem build() {
    RandomProblem p;
    const int nInt = 3 + pick(3);   // 3..5 int vars
    const int nBool = 1 + pick(2);  // 1..2 bool vars
    for (int i = 0; i < nInt; ++i) {
      p.intVars.push_back(arena_.var("x" + std::to_string(i), Sort::Int));
      p.hiBound.push_back(2 + pick(9));  // [0, 2..10]
    }
    for (int i = 0; i < nBool; ++i) {
      p.boolVars.push_back(arena_.var("p" + std::to_string(i), Sort::Bool));
    }
    vars_ = &p;

    // Structural constraints: unit bounds (the optimizer's seeds) plus a
    // few random non-seed facts it must treat conservatively.
    for (std::size_t i = 0; i < p.intVars.size(); ++i) {
      p.structural.push_back(
          arena_.ge(p.intVars[i], arena_.intConst(0)));
      p.structural.push_back(
          arena_.le(p.intVars[i], arena_.intConst(p.hiBound[i])));
    }
    const int extra = pick(3);
    for (int i = 0; i < extra; ++i) {
      p.structural.push_back(randBool(2));
    }
    const int deltas = 1 + pick(3);
    for (int i = 0; i < deltas; ++i) {
      p.delta.push_back(randBool(4));
    }
    return p;
  }

  /// A random assignment satisfying every unit bound.
  ir::Assignment randomSeedAssignment(const RandomProblem& p) {
    ir::Assignment asg;
    for (std::size_t i = 0; i < p.intVars.size(); ++i) {
      asg[p.intVars[i]->name] = static_cast<std::int64_t>(
          pick(static_cast<int>(p.hiBound[i] + 1)));
    }
    for (const TermRef b : p.boolVars) asg[b->name] = pick(2);
    return asg;
  }

 private:
  int pick(int n) { return static_cast<int>(rng_() %static_cast<unsigned>(n)); }

  TermRef randInt(int depth) {
    if (depth <= 0 || pick(3) == 0) {
      if (pick(2) == 0) return arena_.intConst(pick(7) - 2);
      return vars_->intVars[static_cast<std::size_t>(
          pick(static_cast<int>(vars_->intVars.size())))];
    }
    switch (pick(7)) {
      case 0: return arena_.add(randInt(depth - 1), randInt(depth - 1));
      case 1: return arena_.sub(randInt(depth - 1), randInt(depth - 1));
      case 2:
        return arena_.mul(randInt(depth - 1), arena_.intConst(pick(4)));
      case 3:
        return arena_.mod(randInt(depth - 1), arena_.intConst(pick(5) + 1));
      case 4:
        return arena_.div(randInt(depth - 1), arena_.intConst(pick(5) + 1));
      case 5: return arena_.neg(randInt(depth - 1));
      default:
        return arena_.ite(randBool(depth - 1), randInt(depth - 1),
                          randInt(depth - 1));
    }
  }

  TermRef randBool(int depth) {
    if (depth <= 0 || pick(4) == 0) {
      if (!vars_->boolVars.empty() && pick(2) == 0) {
        return vars_->boolVars[static_cast<std::size_t>(
            pick(static_cast<int>(vars_->boolVars.size())))];
      }
      return arena_.le(randInt(0), randInt(0));
    }
    switch (pick(7)) {
      case 0: return arena_.mkAnd(randBool(depth - 1), randBool(depth - 1));
      case 1: return arena_.mkOr(randBool(depth - 1), randBool(depth - 1));
      case 2: return arena_.mkNot(randBool(depth - 1));
      case 3:
        return arena_.implies(randBool(depth - 1), randBool(depth - 1));
      case 4: return arena_.le(randInt(depth - 1), randInt(depth - 1));
      case 5: return arena_.lt(randInt(depth - 1), randInt(depth - 1));
      default: return arena_.eq(randInt(depth - 1), randInt(depth - 1));
    }
  }

  ir::TermArena& arena_;
  std::mt19937 rng_;
  const RandomProblem* vars_ = nullptr;
};

class OptDiff : public ::testing::TestWithParam<unsigned> {};

// (a) Pointwise: rewriting preserves evaluation under every assignment
// that satisfies the structural seeds.
TEST_P(OptDiff, RewriteAgreesWithConcreteEvaluator) {
  ir::TermArena arena;
  Builder builder(arena, GetParam());
  const RandomProblem p = builder.build();
  Optimizer opt(arena, p.structural, {});
  if (opt.structuralUnsat()) return;  // no satisfying assignments exist

  for (int round = 0; round < 48; ++round) {
    const ir::Assignment asg = builder.randomSeedAssignment(p);
    // Rewrites are equivalences under the structural facts; random extra
    // structural constraints can also be seed-shaped, so only assignments
    // satisfying the whole structural set are in scope.
    bool inScope = true;
    for (const TermRef s : p.structural) {
      inScope = inScope && ir::evalTerm(s, asg) == 1;
    }
    if (!inScope) continue;
    for (const TermRef t : p.delta) {
      EXPECT_EQ(ir::evalTerm(t, asg), ir::evalTerm(opt.rewritten(t), asg))
          << "seed=" << GetParam() << " round=" << round;
    }
  }
}

// (b) End-to-end: the planned problem is equisatisfiable with the
// original, and witness-completed models satisfy the original.
TEST_P(OptDiff, PlannedProblemMatchesZ3Verdict) {
  ir::TermArena arena;
  Builder builder(arena, GetParam() + 1000);
  const RandomProblem p = builder.build();
  Optimizer opt(arena, p.structural, {});
  const auto plan = opt.plan(p.delta);

  std::vector<TermRef> original = p.structural;
  original.insert(original.end(), p.delta.begin(), p.delta.end());
  std::vector<TermRef> planned = plan.structural;
  planned.insert(planned.end(), plan.delta.begin(), plan.delta.end());

  backends::Z3Backend backend;
  const auto nativeOrig = backend.check(original);
  const auto nativePlan = backend.check(planned);
  ASSERT_EQ(nativeOrig.status, nativePlan.status)
      << "seed=" << GetParam();

  if (nativePlan.status == backends::SolveStatus::Sat) {
    ir::Assignment model = nativePlan.model;
    for (const auto& [name, value] : plan.droppedWitness) {
      model.emplace(name, value);
    }
    for (const TermRef t : original) {
      EXPECT_EQ(ir::evalTerm(t, model), 1) << "seed=" << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptDiff,
                         ::testing::Range(0u, 24u));

}  // namespace
}  // namespace buffy::opt
