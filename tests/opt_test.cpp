// Unit tests for the encoding optimizer (DESIGN.md §9): interval seeding,
// interval-driven rewriting, cone-of-influence slicing, and plan
// invariants.
#include "opt/optimizer.hpp"

#include <gtest/gtest.h>

#include "ir/term_eval.hpp"

namespace buffy::opt {
namespace {

using ir::Sort;
using ir::TermRef;

class OptTest : public ::testing::Test {
 protected:
  Optimizer make(std::vector<TermRef> structural, OptOptions options = {}) {
    return Optimizer(arena, std::move(structural), options);
  }

  ir::TermArena arena;
};

TEST_F(OptTest, SeedsIntervalsFromUnitBounds) {
  const TermRef x = arena.var("x", Sort::Int);
  auto opt = make({arena.ge(x, arena.intConst(0)),
                   arena.le(x, arena.intConst(5))});
  const Interval iv = opt.intervalOf(x);
  ASSERT_TRUE(iv.lo && iv.hi);
  EXPECT_EQ(*iv.lo, 0);
  EXPECT_EQ(*iv.hi, 5);

  const Interval sum = opt.intervalOf(arena.add(x, x));
  ASSERT_TRUE(sum.lo && sum.hi);
  EXPECT_EQ(*sum.lo, 0);
  EXPECT_EQ(*sum.hi, 10);
}

TEST_F(OptTest, StrictBoundsSeedTightened) {
  const TermRef x = arena.var("x", Sort::Int);
  auto opt = make({arena.lt(x, arena.intConst(5)),
                   arena.lt(arena.intConst(0), x)});
  const Interval iv = opt.intervalOf(x);
  ASSERT_TRUE(iv.lo && iv.hi);
  EXPECT_EQ(*iv.lo, 1);
  EXPECT_EQ(*iv.hi, 4);
}

TEST_F(OptTest, DecidesComparisonsFromIntervals) {
  const TermRef x = arena.var("x", Sort::Int);
  auto opt = make({arena.ge(x, arena.intConst(0)),
                   arena.le(x, arena.intConst(5))});
  EXPECT_EQ(opt.rewritten(arena.le(x, arena.intConst(10))),
            arena.trueTerm());
  EXPECT_EQ(opt.rewritten(arena.lt(x, arena.intConst(0))),
            arena.falseTerm());
  EXPECT_EQ(opt.rewritten(arena.eq(x, arena.intConst(42))),
            arena.falseTerm());
  // Undecidable comparisons survive.
  const TermRef open = arena.le(x, arena.intConst(3));
  EXPECT_EQ(opt.rewritten(open), open);
}

TEST_F(OptTest, CollapsesItesWithDecidedGuards) {
  const TermRef x = arena.var("x", Sort::Int);
  const TermRef y = arena.var("y", Sort::Int);
  const TermRef z = arena.var("z", Sort::Int);
  auto opt = make({arena.ge(x, arena.intConst(0)),
                   arena.le(x, arena.intConst(5))});
  EXPECT_EQ(opt.rewritten(arena.ite(arena.le(x, arena.intConst(9)), y, z)),
            y);
  EXPECT_EQ(opt.rewritten(arena.ite(arena.lt(x, arena.intConst(0)), y, z)),
            z);
}

TEST_F(OptTest, StrengthReducesDivModByConstants) {
  const TermRef x = arena.var("x", Sort::Int);
  auto opt = make({arena.ge(x, arena.intConst(0)),
                   arena.le(x, arena.intConst(5))});
  // x in [0, 5] and 8 > 5: x mod 8 == x, x div 8 == 0.
  EXPECT_EQ(opt.rewritten(arena.mod(x, arena.intConst(8))), x);
  EXPECT_EQ(opt.rewritten(arena.div(x, arena.intConst(8))),
            arena.intConst(0));
  // 4 <= 5: both must survive.
  EXPECT_EQ(opt.rewritten(arena.mod(x, arena.intConst(4)))->kind,
            ir::TermKind::Mod);
}

TEST_F(OptTest, FlattensAndDeduplicatesBooleanTrees) {
  const TermRef p = arena.var("p", Sort::Bool);
  const TermRef q = arena.var("q", Sort::Bool);
  auto opt = make({});
  const TermRef a = arena.mkAnd(arena.mkAnd(p, q), arena.mkAnd(q, p));
  const TermRef b = arena.mkAnd(p, q);
  EXPECT_EQ(opt.rewritten(a), opt.rewritten(b));
  // Complementary literals collapse the connective.
  EXPECT_EQ(opt.rewritten(arena.mkAnd(arena.mkOr(p, q),
                                      arena.mkAnd(p, arena.mkNot(p)))),
            arena.falseTerm());
  EXPECT_EQ(opt.rewritten(arena.mkOr(arena.mkAnd(p, q),
                                     arena.mkOr(p, arena.mkNot(p)))),
            arena.trueTerm());
}

TEST_F(OptTest, LinearizesAdditionChains) {
  const TermRef x = arena.var("x", Sort::Int);
  const TermRef y = arena.var("y", Sort::Int);
  auto opt = make({});
  // (x + y) - x + 1 - 1 == y after coefficient cancellation.
  const TermRef t = arena.sub(
      arena.add(arena.sub(arena.add(x, y), x), arena.intConst(1)),
      arena.intConst(1));
  EXPECT_EQ(opt.rewritten(t), y);
}

TEST_F(OptTest, PinnedVariablesAreInlined) {
  const TermRef x = arena.var("x", Sort::Int);
  const TermRef y = arena.var("y", Sort::Int);
  const std::vector<TermRef> structural = {arena.eq(x, arena.intConst(3))};
  auto opt = make(structural);
  const std::vector<TermRef> delta = {arena.le(x, y)};
  const auto plan = opt.plan(delta);
  // The seed assertion is dropped (x is pinned) and the delta sees x = 3.
  EXPECT_TRUE(plan.structural.empty());
  ASSERT_EQ(plan.delta.size(), 1u);
  EXPECT_EQ(plan.delta[0], arena.le(arena.intConst(3), y));
  ASSERT_TRUE(plan.droppedWitness.count("x"));
  EXPECT_EQ(plan.droppedWitness.at("x"), 3);
}

TEST_F(OptTest, SlicesDisconnectedSatisfiableComponents) {
  const TermRef x = arena.var("x", Sort::Int);
  const TermRef y = arena.var("y", Sort::Int);
  const std::vector<TermRef> structural = {
      arena.ge(x, arena.intConst(0)), arena.le(x, arena.intConst(5)),
      arena.ge(y, arena.intConst(2)), arena.le(y, arena.intConst(7)),
      arena.le(arena.add(y, y), arena.intConst(14))};
  auto opt = make(structural);
  const std::vector<TermRef> delta = {arena.eq(x, arena.intConst(4))};
  const auto plan = opt.plan(delta);
  EXPECT_EQ(plan.stats.assertionsSliced, 3u);
  // Only x's component survives, in original order and verbatim (seeds are
  // kept as written).
  EXPECT_EQ(plan.structural,
            (std::vector<TermRef>{structural[0], structural[1]}));
  // The sliced component's variables get certified satisfying values.
  ASSERT_TRUE(plan.droppedWitness.count("y"));
  const std::int64_t yv = plan.droppedWitness.at("y");
  EXPECT_GE(yv, 2);
  EXPECT_LE(yv, 7);
  EXPECT_FALSE(plan.droppedWitness.count("x"));
}

TEST_F(OptTest, KeepsComponentsItCannotCertify) {
  const TermRef x = arena.var("x", Sort::Int);
  const TermRef y = arena.var("y", Sort::Int);
  // y + y <= -1 && 1 <= y + y is unsatisfiable but not seed-shaped, so the
  // slicer cannot certify it away — dropping it would flip an UNSAT.
  const std::vector<TermRef> structural = {
      arena.le(arena.add(y, y), arena.intConst(-1)),
      arena.le(arena.intConst(1), arena.add(y, y))};
  auto opt = make(structural);
  const std::vector<TermRef> delta = {arena.eq(x, arena.intConst(4))};
  const auto plan = opt.plan(delta);
  EXPECT_EQ(plan.stats.assertionsSliced, 0u);
  EXPECT_EQ(plan.structural.size(), 2u);
}

TEST_F(OptTest, ContradictorySeedsShortCircuitToFalse) {
  const TermRef x = arena.var("x", Sort::Int);
  auto opt = make({arena.le(x, arena.intConst(0)),
                   arena.ge(x, arena.intConst(1))});
  EXPECT_TRUE(opt.structuralUnsat());
  const std::vector<TermRef> delta = {arena.ge(x, arena.intConst(0))};
  const auto plan = opt.plan(delta);
  ASSERT_EQ(plan.structural.size(), 1u);
  EXPECT_EQ(plan.structural[0], arena.falseTerm());
  EXPECT_TRUE(plan.delta.empty());
}

TEST_F(OptTest, DisabledOptimizerPassesThrough) {
  const TermRef x = arena.var("x", Sort::Int);
  OptOptions off;
  off.enabled = false;
  const std::vector<TermRef> structural = {arena.ge(x, arena.intConst(0))};
  auto opt = make(structural, off);
  const std::vector<TermRef> delta = {arena.le(x, arena.intConst(9))};
  const auto plan = opt.plan(delta);
  EXPECT_EQ(plan.structural, structural);
  EXPECT_EQ(plan.delta, delta);
  EXPECT_TRUE(plan.droppedWitness.empty());
}

TEST_F(OptTest, PlanStatsAccounting) {
  const TermRef x = arena.var("x", Sort::Int);
  const TermRef y = arena.var("y", Sort::Int);
  const std::vector<TermRef> structural = {
      arena.ge(x, arena.intConst(0)), arena.le(x, arena.intConst(5)),
      arena.ge(y, arena.intConst(0)), arena.le(y, arena.intConst(5))};
  auto opt = make(structural);
  const std::vector<TermRef> delta = {
      arena.mkAnd(arena.le(x, arena.intConst(9)),
                  arena.eq(x, arena.intConst(2)))};
  const auto plan = opt.plan(delta);
  EXPECT_EQ(plan.stats.assertionsBefore, structural.size() + delta.size());
  EXPECT_LE(plan.stats.assertionsAfter, plan.stats.assertionsBefore);
  EXPECT_LE(plan.stats.nodesAfter, plan.stats.nodesBefore);
  EXPECT_GE(plan.stats.comparisonsDecided, 1u);
  EXPECT_EQ(plan.stats.passes.size(), 2u);
  EXPECT_EQ(plan.stats.passes[0].pass, "slice");
  EXPECT_EQ(plan.stats.passes[1].pass, "rewrite");
}

TEST_F(OptTest, RewritesPreserveEvaluationUnderSeeds) {
  const TermRef x = arena.var("x", Sort::Int);
  const TermRef y = arena.var("y", Sort::Int);
  auto opt = make({arena.ge(x, arena.intConst(0)),
                   arena.le(x, arena.intConst(5)),
                   arena.ge(y, arena.intConst(0)),
                   arena.le(y, arena.intConst(3))});
  const TermRef t = arena.ite(
      arena.le(x, arena.intConst(7)),
      arena.add(arena.mod(x, arena.intConst(8)), arena.mul(y, y)),
      arena.intConst(-1));
  const TermRef r = opt.rewritten(t);
  EXPECT_NE(t, r);  // something simplified
  for (std::int64_t xv = 0; xv <= 5; ++xv) {
    for (std::int64_t yv = 0; yv <= 3; ++yv) {
      const ir::Assignment asg = {{"x", xv}, {"y", yv}};
      EXPECT_EQ(ir::evalTerm(t, asg), ir::evalTerm(r, asg));
    }
  }
}

TEST_F(OptTest, DeltaBoundsSpecializeTheQuery) {
  const TermRef n = arena.var("n", Sort::Int);
  const TermRef a = arena.var("a", Sort::Int);
  const TermRef b = arena.var("b", Sort::Int);
  auto opt = make({arena.ge(n, arena.intConst(0)),
                   arena.le(n, arena.intConst(3))});
  // The workload pins n to 0 for this query only; the guard lt(0, n) is
  // then decidably false and the ite collapses to its else branch.
  const TermRef pin = arena.le(n, arena.intConst(0));
  const TermRef probe = arena.le(
      arena.ite(arena.lt(arena.intConst(0), n), a, b), arena.intConst(5));
  const std::vector<TermRef> delta{pin, probe};
  const auto plan = opt.plan(delta);
  ASSERT_EQ(plan.delta.size(), 2u);
  EXPECT_EQ(plan.delta[0], pin);  // seed assertion kept verbatim
  EXPECT_EQ(plan.delta[1], arena.le(b, arena.intConst(5)));
  EXPECT_GE(plan.stats.itesCollapsed, 1u);
}

TEST_F(OptTest, DeltaSeedsDoNotLeakAcrossPlans) {
  const TermRef n = arena.var("n", Sort::Int);
  auto opt = make({arena.ge(n, arena.intConst(0)),
                   arena.le(n, arena.intConst(3))});
  // Plan 1 pins n = 0 via its delta.
  const std::vector<TermRef> first{arena.le(n, arena.intConst(0))};
  (void)opt.plan(first);
  // Plan 2 must see only the structural bounds: under a leaked n = 0,
  // eq(n + n, 0) would fold to true and vanish.
  const TermRef probe = arena.eq(arena.add(n, n), arena.intConst(0));
  const std::vector<TermRef> second{probe};
  const auto plan = opt.plan(second);
  ASSERT_EQ(plan.delta.size(), 1u);
  EXPECT_FALSE(plan.delta[0]->isTrue());
  EXPECT_FALSE(plan.delta[0]->isFalse());
}

TEST_F(OptTest, ContradictoryDeltaBoundsCollapseTheDelta) {
  const TermRef n = arena.var("n", Sort::Int);
  const TermRef y = arena.var("y", Sort::Int);
  const std::vector<TermRef> structural{arena.ge(n, arena.intConst(0)),
                                        arena.le(n, arena.intConst(3))};
  auto opt = make(structural);
  // n <= -1 contradicts the structural 0 <= n: the query is UNSAT on its
  // own, and the delta collapses to `false` while the structural set stays
  // usable for session reuse.
  const std::vector<TermRef> delta{arena.le(n, arena.intConst(-1)),
                                   arena.le(y, arena.intConst(7))};
  const auto plan = opt.plan(delta);
  ASSERT_EQ(plan.delta.size(), 1u);
  EXPECT_TRUE(plan.delta[0]->isFalse());
  EXPECT_EQ(plan.structural, structural);  // seeds kept verbatim
}

}  // namespace
}  // namespace buffy::opt
