#include "lang/parser.hpp"

#include <gtest/gtest.h>

#include "lang/printer.hpp"
#include "models/library.hpp"
#include "support/error.hpp"

namespace buffy::lang {
namespace {

/// i-th statement of the program body block.
StmtId bodyStmt(const Ast& ast, std::uint32_t i) {
  const StmtSpan span = ast.arena.stmt(ast.program.body).block.stmts;
  return ast.arena.spanAt(span, i);
}

std::uint32_t bodySize(const Ast& ast) {
  return ast.arena.stmt(ast.program.body).block.stmts.count;
}

TEST(Parser, MinimalProgram) {
  const Ast ast = parse("p(buffer a, buffer b) { move-p(a, b, 1); }");
  EXPECT_EQ(ast.program.name, "p");
  ASSERT_EQ(ast.program.params.size(), 2u);
  EXPECT_EQ(ast.program.params[0].type.kind, TypeKind::Buffer);
  ASSERT_EQ(bodySize(ast), 1u);
  EXPECT_EQ(ast.arena.stmt(bodyStmt(ast, 0)).kind, StmtKind::Move);
}

TEST(Parser, BufferArrayParamWithNamedSize) {
  const Ast ast = parse("p(buffer[N] ibs, buffer ob) {}");
  EXPECT_EQ(ast.program.params[0].type.kind, TypeKind::BufferArray);
  EXPECT_EQ(ast.program.params[0].sizeParam, "N");
  EXPECT_EQ(ast.program.params[0].type.size, -1);
}

TEST(Parser, BufferArrayParamWithLiteralSize) {
  const Ast ast = parse("p(buffer[4] ibs, buffer ob) {}");
  EXPECT_EQ(ast.program.params[0].type.size, 4);
  EXPECT_TRUE(ast.program.params[0].sizeParam.empty());
}

TEST(Parser, Figure4ParsesCompletely) {
  const Ast ast = parse(models::kFairQueueBuggy);
  EXPECT_EQ(ast.program.name, "fq");
  EXPECT_GE(bodySize(ast), 5u);
}

TEST(Parser, AllLibraryModelsParse) {
  for (const auto& entry : models::allModels()) {
    EXPECT_NO_THROW(parse(entry.source)) << entry.name;
  }
}

TEST(Parser, PrintReparseRoundTrip) {
  for (const auto& entry : models::allModels()) {
    const Ast ast = parse(entry.source);
    const std::string printed = printProgram(ast);
    const Ast reparsed = parse(printed);
    EXPECT_EQ(printProgram(reparsed), printed) << entry.name;
  }
}

TEST(Parser, IfWithoutBracesTakesSingleStatement) {
  const Ast ast = parse(R"(
p(buffer a, buffer b) {
  global list nq;
  for (i in 0..3) do
    if (backlog-p(a) > 0 & !nq.has(i))
      nq.enq(i);
})");
  ASSERT_EQ(bodySize(ast), 2u);
  EXPECT_EQ(ast.arena.stmt(bodyStmt(ast, 1)).kind, StmtKind::For);
}

TEST(Parser, LocalAssignmentSugar) {
  // Figure 4 line 9: `local dequeued = false;` assigns an already-declared
  // variable.
  const Ast ast = parse(R"(
p(buffer a, buffer b) {
  local bool dequeued;
  local dequeued = false;
})");
  ASSERT_EQ(bodySize(ast), 2u);
  EXPECT_EQ(ast.arena.stmt(bodyStmt(ast, 0)).kind, StmtKind::Decl);
  EXPECT_EQ(ast.arena.stmt(bodyStmt(ast, 1)).kind, StmtKind::Assign);
}

TEST(Parser, PopFrontStatement) {
  const Ast ast = parse(R"(
p(buffer a, buffer b) {
  global list nq;
  local int head;
  head = nq.pop_front();
})");
  const StmtNode& pop = ast.arena.stmt(bodyStmt(ast, 2));
  ASSERT_EQ(pop.kind, StmtKind::PopFront);
  EXPECT_EQ(ast.arena.str(pop.popFront.target), "head");
  EXPECT_EQ(ast.arena.str(pop.popFront.list), "nq");
}

TEST(Parser, EnqAndPushBackAreSynonyms) {
  const Ast ast = parse(R"(
p(buffer a, buffer b) {
  global list nq;
  nq.enq(1);
  nq.push_back(2);
})");
  EXPECT_EQ(ast.arena.stmt(bodyStmt(ast, 1)).kind, StmtKind::ListPush);
  EXPECT_EQ(ast.arena.stmt(bodyStmt(ast, 2)).kind, StmtKind::ListPush);
}

TEST(Parser, FilterExpression) {
  const ExprParse p = parseExpr("backlog-p(b |> (val == 3))");
  const AstArena& arena = p.ast.arena;
  const ExprNode& e = arena.expr(p.expr);
  ASSERT_EQ(e.kind, ExprKind::Backlog);
  const ExprNode& filter = arena.expr(e.backlog.buffer);
  ASSERT_EQ(filter.kind, ExprKind::Filter);
  EXPECT_EQ(arena.str(filter.filter.field), "val");
}

TEST(Parser, FilterWithoutParens) {
  const ExprParse p = parseExpr("backlog-b(b |> val == 3)");
  const ExprNode& e = p.ast.arena.expr(p.expr);
  ASSERT_EQ(e.kind, ExprKind::Backlog);
  EXPECT_FALSE(e.backlog.packets);
}

TEST(Parser, OperatorPrecedence) {
  // a + b * c == d & e | f  =>  ((((a + (b*c)) == d) & e) | f)
  const ExprParse p = parseExpr("a + b * c == d & e | f");
  const AstArena& arena = p.ast.arena;
  const ExprNode& e = arena.expr(p.expr);
  ASSERT_EQ(e.kind, ExprKind::Binary);
  EXPECT_EQ(e.binary.op, BinaryOp::Or);
  const ExprNode& lhs = arena.expr(e.binary.lhs);
  ASSERT_EQ(lhs.kind, ExprKind::Binary);
  EXPECT_EQ(lhs.binary.op, BinaryOp::And);
}

TEST(Parser, UnaryChain) {
  const ExprParse p = parseExpr("!!a");
  const ExprNode& e = p.ast.arena.expr(p.expr);
  ASSERT_EQ(e.kind, ExprKind::Unary);
  EXPECT_EQ(e.unary.op, UnaryOp::Not);
}

TEST(Parser, FunctionDeclaration) {
  const Ast ast = parse(R"(
p(buffer a, buffer b) {
  def int min2(int x, int y) {
    local int r;
    r = x;
    if (y < x) { r = y; }
    return r;
  }
  local int m;
  m = min2(1, 2);
})");
  ASSERT_EQ(ast.program.functions.size(), 1u);
  EXPECT_EQ(ast.program.functions[0].name, "min2");
  EXPECT_EQ(ast.program.functions[0].returnType.kind, TypeKind::Int);
  ASSERT_EQ(ast.program.functions[0].params.size(), 2u);
}

TEST(Parser, ArrayDeclarationsWithNamedSize) {
  const Ast ast = parse(R"(
p(buffer a, buffer b) {
  global monitor int cdeq[N];
  local int tmp[3];
})");
  const StmtNode& decl = ast.arena.stmt(bodyStmt(ast, 0));
  ASSERT_EQ(decl.kind, StmtKind::Decl);
  EXPECT_EQ(ast.arena.str(decl.decl.sizeParam), "N");
  EXPECT_EQ(decl.decl.storage, Storage::Monitor);
}

TEST(Parser, HavocDeclaration) {
  const Ast ast = parse(R"(
p(buffer a, buffer b) {
  havoc int waste;
  assume(waste >= 0);
})");
  const StmtNode& decl = ast.arena.stmt(bodyStmt(ast, 0));
  ASSERT_EQ(decl.kind, StmtKind::Decl);
  EXPECT_EQ(decl.decl.storage, Storage::Havoc);
}

TEST(Parser, RejectsTrailingTokens) {
  EXPECT_THROW(parse("p(buffer a, buffer b) {} garbage"), SyntaxError);
}

TEST(Parser, RejectsMissingSemicolon) {
  EXPECT_THROW(parse("p(buffer a, buffer b) { x = 1 }"), SyntaxError);
}

TEST(Parser, RejectsBadMoveArity) {
  EXPECT_THROW(parse("p(buffer a, buffer b) { move-p(a, b); }"), SyntaxError);
}

TEST(Parser, RejectsUnknownMethod) {
  EXPECT_THROW(parse("p(buffer a, buffer b) { global list l; l.frob(1); }"),
               SyntaxError);
}

TEST(Parser, RejectsFilterWithNonEquality) {
  EXPECT_THROW(parseExpr("backlog-p(b |> val >= 3)"), SyntaxError);
}

TEST(Parser, ExpressionOnlyRejectsTrailing) {
  EXPECT_THROW(parseExpr("1 + 2 3"), SyntaxError);
}

}  // namespace
}  // namespace buffy::lang
