#include "lang/parser.hpp"

#include <gtest/gtest.h>

#include "lang/printer.hpp"
#include "models/library.hpp"
#include "support/error.hpp"

namespace buffy::lang {
namespace {

TEST(Parser, MinimalProgram) {
  const Program prog = parse("p(buffer a, buffer b) { move-p(a, b, 1); }");
  EXPECT_EQ(prog.name, "p");
  ASSERT_EQ(prog.params.size(), 2u);
  EXPECT_EQ(prog.params[0].type.kind, TypeKind::Buffer);
  ASSERT_EQ(prog.body->stmts.size(), 1u);
  EXPECT_EQ(prog.body->stmts[0]->stmtKind, StmtKind::Move);
}

TEST(Parser, BufferArrayParamWithNamedSize) {
  const Program prog = parse("p(buffer[N] ibs, buffer ob) {}");
  EXPECT_EQ(prog.params[0].type.kind, TypeKind::BufferArray);
  EXPECT_EQ(prog.params[0].sizeParam, "N");
  EXPECT_EQ(prog.params[0].type.size, -1);
}

TEST(Parser, BufferArrayParamWithLiteralSize) {
  const Program prog = parse("p(buffer[4] ibs, buffer ob) {}");
  EXPECT_EQ(prog.params[0].type.size, 4);
  EXPECT_TRUE(prog.params[0].sizeParam.empty());
}

TEST(Parser, Figure4ParsesCompletely) {
  const Program prog = parse(models::kFairQueueBuggy);
  EXPECT_EQ(prog.name, "fq");
  EXPECT_GE(prog.body->stmts.size(), 5u);
}

TEST(Parser, AllLibraryModelsParse) {
  for (const auto& entry : models::allModels()) {
    EXPECT_NO_THROW(parse(entry.source)) << entry.name;
  }
}

TEST(Parser, PrintReparseRoundTrip) {
  for (const auto& entry : models::allModels()) {
    const Program prog = parse(entry.source);
    const std::string printed = printProgram(prog);
    const Program reparsed = parse(printed);
    EXPECT_EQ(printProgram(reparsed), printed) << entry.name;
  }
}

TEST(Parser, IfWithoutBracesTakesSingleStatement) {
  const Program prog = parse(R"(
p(buffer a, buffer b) {
  global list nq;
  for (i in 0..3) do
    if (backlog-p(a) > 0 & !nq.has(i))
      nq.enq(i);
})");
  ASSERT_EQ(prog.body->stmts.size(), 2u);
  EXPECT_EQ(prog.body->stmts[1]->stmtKind, StmtKind::For);
}

TEST(Parser, LocalAssignmentSugar) {
  // Figure 4 line 9: `local dequeued = false;` assigns an already-declared
  // variable.
  const Program prog = parse(R"(
p(buffer a, buffer b) {
  local bool dequeued;
  local dequeued = false;
})");
  ASSERT_EQ(prog.body->stmts.size(), 2u);
  EXPECT_EQ(prog.body->stmts[0]->stmtKind, StmtKind::Decl);
  EXPECT_EQ(prog.body->stmts[1]->stmtKind, StmtKind::Assign);
}

TEST(Parser, PopFrontStatement) {
  const Program prog = parse(R"(
p(buffer a, buffer b) {
  global list nq;
  local int head;
  head = nq.pop_front();
})");
  EXPECT_EQ(prog.body->stmts[2]->stmtKind, StmtKind::PopFront);
  const auto& pop = static_cast<const PopFrontStmt&>(*prog.body->stmts[2]);
  EXPECT_EQ(pop.target, "head");
  EXPECT_EQ(pop.list, "nq");
}

TEST(Parser, EnqAndPushBackAreSynonyms) {
  const Program prog = parse(R"(
p(buffer a, buffer b) {
  global list nq;
  nq.enq(1);
  nq.push_back(2);
})");
  EXPECT_EQ(prog.body->stmts[1]->stmtKind, StmtKind::ListPush);
  EXPECT_EQ(prog.body->stmts[2]->stmtKind, StmtKind::ListPush);
}

TEST(Parser, FilterExpression) {
  const ExprPtr e = parseExpr("backlog-p(b |> (val == 3))");
  ASSERT_EQ(e->exprKind, ExprKind::Backlog);
  const auto& backlog = static_cast<const BacklogExpr&>(*e);
  ASSERT_EQ(backlog.buffer->exprKind, ExprKind::Filter);
  const auto& filter = static_cast<const FilterExpr&>(*backlog.buffer);
  EXPECT_EQ(filter.field, "val");
}

TEST(Parser, FilterWithoutParens) {
  const ExprPtr e = parseExpr("backlog-b(b |> val == 3)");
  ASSERT_EQ(e->exprKind, ExprKind::Backlog);
  EXPECT_FALSE(static_cast<const BacklogExpr&>(*e).packets);
}

TEST(Parser, OperatorPrecedence) {
  // a + b * c == d & e | f  =>  ((((a + (b*c)) == d) & e) | f)
  const ExprPtr e = parseExpr("a + b * c == d & e | f");
  ASSERT_EQ(e->exprKind, ExprKind::Binary);
  EXPECT_EQ(static_cast<const BinaryExpr&>(*e).op, BinaryOp::Or);
  const auto& lhs =
      static_cast<const BinaryExpr&>(*static_cast<const BinaryExpr&>(*e).lhs);
  EXPECT_EQ(lhs.op, BinaryOp::And);
}

TEST(Parser, UnaryChain) {
  const ExprPtr e = parseExpr("!!a");
  ASSERT_EQ(e->exprKind, ExprKind::Unary);
  EXPECT_EQ(static_cast<const UnaryExpr&>(*e).op, UnaryOp::Not);
}

TEST(Parser, FunctionDeclaration) {
  const Program prog = parse(R"(
p(buffer a, buffer b) {
  def int min2(int x, int y) {
    local int r;
    r = x;
    if (y < x) { r = y; }
    return r;
  }
  local int m;
  m = min2(1, 2);
})");
  ASSERT_EQ(prog.functions.size(), 1u);
  EXPECT_EQ(prog.functions[0].name, "min2");
  EXPECT_EQ(prog.functions[0].returnType.kind, TypeKind::Int);
  ASSERT_EQ(prog.functions[0].params.size(), 2u);
}

TEST(Parser, ArrayDeclarationsWithNamedSize) {
  const Program prog = parse(R"(
p(buffer a, buffer b) {
  global monitor int cdeq[N];
  local int tmp[3];
})");
  const auto& decl = static_cast<const DeclStmt&>(*prog.body->stmts[0]);
  EXPECT_EQ(decl.sizeParam, "N");
  EXPECT_EQ(decl.storage, Storage::Monitor);
}

TEST(Parser, HavocDeclaration) {
  const Program prog = parse(R"(
p(buffer a, buffer b) {
  havoc int waste;
  assume(waste >= 0);
})");
  const auto& decl = static_cast<const DeclStmt&>(*prog.body->stmts[0]);
  EXPECT_EQ(decl.storage, Storage::Havoc);
}

TEST(Parser, RejectsTrailingTokens) {
  EXPECT_THROW(parse("p(buffer a, buffer b) {} garbage"), SyntaxError);
}

TEST(Parser, RejectsMissingSemicolon) {
  EXPECT_THROW(parse("p(buffer a, buffer b) { x = 1 }"), SyntaxError);
}

TEST(Parser, RejectsBadMoveArity) {
  EXPECT_THROW(parse("p(buffer a, buffer b) { move-p(a, b); }"), SyntaxError);
}

TEST(Parser, RejectsUnknownMethod) {
  EXPECT_THROW(parse("p(buffer a, buffer b) { global list l; l.frob(1); }"),
               SyntaxError);
}

TEST(Parser, RejectsFilterWithNonEquality) {
  EXPECT_THROW(parseExpr("backlog-p(b |> val >= 3)"), SyntaxError);
}

TEST(Parser, ExpressionOnlyRejectsTrailing) {
  EXPECT_THROW(parseExpr("1 + 2 3"), SyntaxError);
}

}  // namespace
}  // namespace buffy::lang
