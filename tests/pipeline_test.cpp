// Pipeline-equivalence tests: the explicit loop unroller (paper §4) must
// be observationally identical to the evaluator's direct iteration of
// constant-bounded loops — on concrete simulations and on solver verdicts.
#include <gtest/gtest.h>

#include "helpers.hpp"

namespace buffy::core {
namespace {

using buffy::testing::schedulerNet;
using buffy::testing::starvationWorkload;

class UnrollEquivalence
    : public ::testing::TestWithParam<const char*> {};

TEST_P(UnrollEquivalence, SimulationTracesIdentical) {
  const char* source = GetParam();
  constexpr int kHorizon = 5;
  ConcreteArrivals arrivals;
  arrivals["s.ibs.0"] = {{ConcretePacket{}},
                         {},
                         {ConcretePacket{}, ConcretePacket{}},
                         {ConcretePacket{}},
                         {}};
  arrivals["s.ibs.1"] = {{ConcretePacket{}, ConcretePacket{}},
                         {ConcretePacket{}}};

  Trace traces[2];
  int idx = 0;
  for (const bool unroll : {false, true}) {
    AnalysisOptions opts;
    opts.horizon = kHorizon;
    opts.unrollLoops = unroll;
    Network net = schedulerNet(source, "s", 2);
    Analysis analysis(net, opts);
    traces[idx++] = analysis.simulate(arrivals);
  }
  ASSERT_EQ(traces[0].series.size(), traces[1].series.size());
  for (const auto& [name, values] : traces[0].series) {
    ASSERT_TRUE(traces[1].series.count(name)) << name;
    EXPECT_EQ(values, traces[1].series.at(name)) << name;
  }
}

TEST_P(UnrollEquivalence, VerdictsIdentical) {
  const char* source = GetParam();
  constexpr int kHorizon = 4;
  Verdict verdicts[2];
  int idx = 0;
  for (const bool unroll : {false, true}) {
    AnalysisOptions opts;
    opts.horizon = kHorizon;
    opts.unrollLoops = unroll;
    Analysis analysis(schedulerNet(source, "s", 2), opts);
    analysis.setWorkload(starvationWorkload("s", kHorizon));
    verdicts[idx++] =
        analysis.check(Query::expr("s.cdeq.0[T-1] >= T-1")).verdict;
  }
  EXPECT_EQ(verdicts[0], verdicts[1]);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, UnrollEquivalence,
                         ::testing::Values(models::kFairQueueBuggy,
                                           models::kFairQueueFixed,
                                           models::kRoundRobin,
                                           models::kStrictPriority));

}  // namespace
}  // namespace buffy::core
