// Portfolio racing + horizon sharding (DESIGN.md §12).
//
// The load-bearing property is SCHEDULE INVARIANCE: whatever the thread
// count and however FaultPlan delays skew the member schedule, the
// portfolio's verdict equals the serial engine's verdict, and a sweep's
// report is identical under any shard count. These tests run under the
// TSan CI job (labels jobs/resilience), so they double as the data-race
// stress for the job layer with real solver engines behind the hooks.
#include "core/portfolio.hpp"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "backends/fault_plan.hpp"
#include "core/sweep.hpp"
#include "helpers.hpp"
#include "pipeline/driver.hpp"
#include "support/error.hpp"

namespace buffy::core {
namespace {

using buffy::testing::schedulerNet;
using buffy::testing::starvationWorkload;

AnalysisOptions fastOpts(int horizon) {
  AnalysisOptions opts;
  opts.horizon = horizon;
  return opts;
}

pipeline::CompilationUnitPtr unitFor(const Network& net,
                                     const AnalysisOptions& opts) {
  const pipeline::CompilerDriver driver(pipelineOptionsFor(opts));
  return driver.compile(net);
}

/// rr queue 0 gets a packet every step, queue 1 is free — queue 0 is
/// guaranteed service under round robin.
Workload rrWorkload() {
  Workload w;
  w.add(Workload::perStepCount("rr.ibs.0", 1, 1));
  w.add(Workload::perStepCount("rr.ibs.1", 0, 1));
  return w;
}

TEST(Portfolio, RaceVerdictMatchesSerialVerify) {
  const Network net = schedulerNet(models::kRoundRobin, "rr", 2, 4, 2);
  const AnalysisOptions opts = fastOpts(4);
  const Query query = Query::expr("rr.cdeq.0[T-1] >= 1");

  Analysis serial(unitFor(net, opts), opts);
  serial.setWorkload(rrWorkload());
  const AnalysisResult baseline = serial.verify(query);
  ASSERT_EQ(baseline.verdict, Verdict::Verified);

  Portfolio portfolio(unitFor(net, opts), opts);
  const PortfolioResult raced =
      portfolio.verify(query, rrWorkload(), PortfolioOptions{});
  EXPECT_EQ(raced.result.verdict, baseline.verdict);
  EXPECT_FALSE(raced.winner.empty());
  // Every configured member is logged: ladder, two seed variants, smtlib
  // (and chc only if the query qualifies — this one mentions T, so no).
  ASSERT_EQ(raced.members.size(), 4u);
  EXPECT_EQ(raced.members[0].name, "ladder");
  bool someWon = false;
  for (const auto& m : raced.members) someWon = someWon || m.won;
  EXPECT_TRUE(someWon);
}

TEST(Portfolio, ChcMemberJoinsForHorizonFreeVerify) {
  // A textual query without the horizon constant is eligible for the
  // CHC/Spacer member; Proved-everywhere must agree with bounded verify.
  const Network net = schedulerNet(models::kRoundRobin, "rr", 2, 4, 2);
  const AnalysisOptions opts = fastOpts(3);
  const Query query = Query::expr("rr.cdeq.0[0] >= 0");

  Portfolio portfolio(unitFor(net, opts), opts);
  const PortfolioResult raced =
      portfolio.verify(query, Workload{}, PortfolioOptions{});
  EXPECT_EQ(raced.result.verdict, Verdict::Verified);
  ASSERT_EQ(raced.members.size(), 5u);
  EXPECT_EQ(raced.members.back().name, "chc");
}

TEST(Portfolio, VerdictInvariantUnderThreadsAndInjectedDelays) {
  // The TSan stress: delays injected into individual members skew the
  // schedule arbitrarily; the verdict may come from a different member
  // each time but must always be the serial verdict.
  const Network net = schedulerNet(models::kFairQueueBuggy, "fq", 2);
  AnalysisOptions opts = fastOpts(5);
  const Query query = Query::expr("fq.cdeq.1[T-1] >= 2");

  Analysis serial(unitFor(net, opts), opts);
  serial.setWorkload(starvationWorkload("fq", 5));
  const AnalysisResult baseline = serial.verify(query);
  ASSERT_EQ(baseline.verdict, Verdict::Violated);

  const std::vector<std::string> delayScopes = {"race:ladder",
                                                "race:z3-seed-5"};
  for (const auto& scope : delayScopes) {
    auto plan = std::make_shared<backends::FaultPlan>();
    plan->at(scope, 0,
             {backends::FaultAction::Kind::Delay, "slow member", 25});
    AnalysisOptions faulted = opts;
    faulted.faultPlan = plan;
    Portfolio portfolio(unitFor(net, faulted), faulted);
    PortfolioOptions popts;
    popts.chc = false;  // spacer timing is noise here
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{0}}) {
      popts.threads = threads;
      const PortfolioResult raced =
          portfolio.verify(query, starvationWorkload("fq", 5), popts);
      EXPECT_EQ(raced.result.verdict, baseline.verdict)
          << "scope=" << scope << " threads=" << threads;
    }
  }
}

TEST(Portfolio, UnknownNeverWinsWhileASiblingCanAnswer) {
  // The ladder is forced Unknown on every rung (initial, reseed, smtlib
  // fallback) and finishes first; the delayed seed member must still win
  // with the sound verdict. Unknown never beats a running sibling.
  const Network net = schedulerNet(models::kRoundRobin, "rr", 2, 4, 2);
  AnalysisOptions opts = fastOpts(4);
  auto plan = std::make_shared<backends::FaultPlan>();
  for (std::size_t nth = 0; nth < 8; ++nth) {
    plan->forceUnknown("race:ladder", nth);
  }
  plan->at("race:z3-seed-5", 0,
           {backends::FaultAction::Kind::Delay, "slow seed", 25});
  opts.faultPlan = plan;

  Portfolio portfolio(unitFor(net, opts), opts);
  PortfolioOptions popts;
  popts.seeds = {5};
  popts.smtlib = false;
  popts.chc = false;
  const Query query = Query::expr("rr.cdeq.0[T-1] >= 1");
  const PortfolioResult raced =
      portfolio.verify(query, rrWorkload(), popts);
  EXPECT_EQ(raced.result.verdict, Verdict::Verified);
  EXPECT_EQ(raced.winner, "z3-seed-5");
  ASSERT_EQ(raced.members.size(), 2u);
  EXPECT_TRUE(raced.members[0].finished);
  EXPECT_FALSE(raced.members[0].sound);
  EXPECT_FALSE(raced.members[0].won);
}

TEST(Portfolio, AllUnknownFallsBackToTheLadderDeterministically) {
  const Network net = schedulerNet(models::kRoundRobin, "rr", 2, 4, 2);
  AnalysisOptions opts = fastOpts(4);
  auto plan = std::make_shared<backends::FaultPlan>();
  for (std::size_t nth = 0; nth < 8; ++nth) {
    plan->forceUnknown("race:ladder", nth);
    plan->forceUnknown("race:z3-seed-5", nth);
  }
  opts.faultPlan = plan;

  Portfolio portfolio(unitFor(net, opts), opts);
  PortfolioOptions popts;
  popts.seeds = {5};
  popts.smtlib = false;
  popts.chc = false;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    popts.threads = threads;
    const PortfolioResult raced = portfolio.verify(
        Query::expr("rr.cdeq.0[T-1] >= 1"), rrWorkload(), popts);
    EXPECT_EQ(raced.result.verdict, Verdict::Unknown) << threads;
    // No sound answer: the fallback is the lowest-index member, the
    // ladder — identical under any schedule.
    EXPECT_TRUE(raced.winner.empty()) << threads;
  }
}

TEST(Portfolio, DifferentialVerdictsAcrossModels) {
  // Race verdict == serial verdict on all four sound verdicts across the
  // scheduler models (the in-library half of the examples/models
  // differential; the CLI half lives in cli_test).
  struct Case {
    const char* source;
    const char* instance;
    const char* query;
    bool verify;
    Verdict expected;
  };
  const std::vector<Case> cases = {
      {models::kFairQueueBuggy, "fq",
       "fq.cdeq.0[T-1] >= T-1 & fq.cdeq.1[T-1] <= 1 & "
       "fq.ibs.1.backlog[T-1] > 0",
       false, Verdict::Satisfiable},
      {models::kFairQueueFixed, "fq",
       "fq.cdeq.0[T-1] >= T-1 & fq.cdeq.1[T-1] <= 1 & "
       "fq.ibs.1.backlog[T-1] > 0",
       false, Verdict::Unsatisfiable},
      {models::kFairQueueBuggy, "fq", "fq.cdeq.1[T-1] >= 2", true,
       Verdict::Violated},
      {models::kFairQueueFixed, "fq", "fq.cdeq.1[T-1] >= 2", true,
       Verdict::Verified},
  };
  for (const auto& c : cases) {
    const Network net = schedulerNet(c.source, c.instance, 2);
    const AnalysisOptions opts = fastOpts(5);
    const Query query = Query::expr(c.query);
    const Workload workload = starvationWorkload(c.instance, 5);

    Analysis serial(unitFor(net, opts), opts);
    serial.setWorkload(workload);
    const AnalysisResult baseline =
        c.verify ? serial.verify(query) : serial.check(query);
    ASSERT_EQ(baseline.verdict, c.expected) << c.query;

    Portfolio portfolio(unitFor(net, opts), opts);
    PortfolioOptions popts;
    popts.chc = false;
    const PortfolioResult raced =
        c.verify ? portfolio.verify(query, workload, popts)
                 : portfolio.check(query, workload, popts);
    EXPECT_EQ(raced.result.verdict, baseline.verdict) << c.query;
  }
}

TEST(HorizonSweep, ReportIsShardCountInvariant) {
  const Network net = schedulerNet(models::kRoundRobin, "rr", 2, 4, 2);
  const std::vector<Query> queries = {Query::expr("rr.cdeq.0[T-1] >= 0"),
                                      Query::expr("rr.cdeq.0[T-1] >= 1")};
  HorizonSweep sweep(net, fastOpts(1));
  const HorizonSweep::WorkloadFn workloadAt = [](int) { return rrWorkload(); };

  SweepOptions one;
  one.fromHorizon = 1;
  one.toHorizon = 4;
  one.shards = 1;
  one.verify = true;
  SweepOptions three = one;
  three.shards = 3;

  const SweepResult serial = sweep.run(queries, workloadAt, one);
  const SweepResult sharded = sweep.run(queries, workloadAt, three);

  ASSERT_EQ(serial.points.size(), 8u);
  ASSERT_EQ(sharded.points.size(), serial.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_EQ(sharded.points[i].horizon, serial.points[i].horizon) << i;
    EXPECT_EQ(sharded.points[i].query, serial.points[i].query) << i;
    EXPECT_EQ(sharded.points[i].verdict, serial.points[i].verdict) << i;
    EXPECT_EQ(sharded.points[i].verdict, "VERIFIED") << i;
  }
  // Each horizon's queries went through one reused incremental session.
  EXPECT_EQ(sharded.incrementalQueries, 8u);
  EXPECT_EQ(sharded.shards, 3u);
}

TEST(HorizonSweep, RejectsEmptyAndBackwardRanges) {
  const Network net = schedulerNet(models::kRoundRobin, "rr", 2, 4, 2);
  HorizonSweep sweep(net, fastOpts(1));
  SweepOptions bad;
  bad.fromHorizon = 3;
  bad.toHorizon = 2;
  EXPECT_THROW(sweep.run({Query::expr("rr.cdeq.0[0] >= 0")}, nullptr, bad),
               AnalysisError);
  SweepOptions ok;
  EXPECT_THROW(sweep.run({}, nullptr, ok), AnalysisError);
}

}  // namespace
}  // namespace buffy::core
