// Pretty-printer tests: exact rendering of each construct, stability under
// repeated printing, and semantic preservation (reparse + simulate).
#include "lang/printer.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "lang/parser.hpp"

namespace buffy::lang {
namespace {

std::string printOf(const std::string& source) {
  return printProgram(parse(source));
}

std::string printExprOf(const char* source) {
  const ExprParse p = parseExpr(source);
  return printExpr(p.ast.arena, p.expr);
}

TEST(Printer, Expressions) {
  EXPECT_EQ(printExprOf("a + b * c"), "(a + (b * c))");
  EXPECT_EQ(printExprOf("!x & y"), "(!x & y)");
  EXPECT_EQ(printExprOf("backlog-p(ibs[i])"), "backlog-p(ibs[i])");
  EXPECT_EQ(printExprOf("backlog-b(b |> val == 3)"),
            "backlog-b(b |> (val == 3))");
  EXPECT_EQ(printExprOf("l.has(x)"), "l.has(x)");
  EXPECT_EQ(printExprOf("l.empty()"), "l.empty()");
  EXPECT_EQ(printExprOf("min(1, 2)"), "min(1, 2)");
  EXPECT_EQ(printExprOf("0 - 5"), "(0 - 5)");
}

TEST(Printer, DeclarationForms) {
  const std::string printed = printOf(R"(
p(buffer a, buffer b) {
  global int g = 5;
  global monitor int m[3];
  local bool flag;
  havoc int w;
  global list q[4];
})");
  EXPECT_NE(printed.find("global int g = 5;"), std::string::npos) << printed;
  EXPECT_NE(printed.find("monitor int m[3];"), std::string::npos);
  EXPECT_NE(printed.find("local bool flag;"), std::string::npos);
  EXPECT_NE(printed.find("havoc int w;"), std::string::npos);
  EXPECT_NE(printed.find("list q[4];"), std::string::npos);
}

TEST(Printer, StatementForms) {
  const std::string printed = printOf(R"(
p(buffer a, buffer b) {
  global list l;
  local int x;
  move-p(a, b, 1);
  move-b(a, b, 8);
  l.enq(3);
  x = l.pop_front();
  assume(x >= -1);
  assert(x < 10);
})");
  EXPECT_NE(printed.find("move-p(a, b, 1);"), std::string::npos) << printed;
  EXPECT_NE(printed.find("move-b(a, b, 8);"), std::string::npos);
  EXPECT_NE(printed.find("l.push_back(3);"), std::string::npos);
  EXPECT_NE(printed.find("x = l.pop_front();"), std::string::npos);
  EXPECT_NE(printed.find("assume((x >= -1));"), std::string::npos);
  EXPECT_NE(printed.find("assert((x < 10));"), std::string::npos);
}

TEST(Printer, ControlFlowIndentation) {
  const std::string printed = printOf(R"(
p(buffer a, buffer b) {
  for (i in 0..2) do {
    if (backlog-p(a) > 0) {
      move-p(a, b, 1);
    } else {
      move-p(a, b, 0);
    }
  }
})");
  EXPECT_NE(printed.find("  for (i in 0..2) do {\n"), std::string::npos)
      << printed;
  EXPECT_NE(printed.find("    if ((backlog-p(a) > 0)) {\n"),
            std::string::npos);
  EXPECT_NE(printed.find("      move-p(a, b, 1);\n"), std::string::npos);
  EXPECT_NE(printed.find("    } else {\n"), std::string::npos);
}

TEST(Printer, FunctionsAndParams) {
  const std::string printed = printOf(R"(
p(buffer[N] ibs, buffer ob) {
  def int f(int x, buffer q) {
    return x + backlog-p(q);
  }
  local int y;
  y = f(1, ob);
})");
  EXPECT_NE(printed.find("p(buffer[N] ibs, buffer ob) {"), std::string::npos)
      << printed;
  EXPECT_NE(printed.find("def int f(int x, buffer q) {"), std::string::npos);
  EXPECT_NE(printed.find("return (x + backlog-p(q));"), std::string::npos);
}

TEST(Printer, Idempotent) {
  for (const auto& entry : models::allModels()) {
    const std::string once = printOf(entry.source);
    EXPECT_EQ(printProgram(parse(once)), once) << entry.name;
  }
}

TEST(Printer, SemanticPreservationUnderRoundTrip) {
  // Print the buggy FQ model, reparse it, and run the same concrete
  // workload through both — identical traces.
  const std::string printed = printOf(models::kFairQueueBuggy);

  auto run = [](const std::string& source) {
    core::Network net = buffy::testing::schedulerNet(source.c_str(), "fq", 2);
    core::AnalysisOptions opts;
    opts.horizon = 4;
    core::Analysis analysis(net, opts);
    core::ConcreteArrivals arrivals;
    arrivals["fq.ibs.0"] = {{core::ConcretePacket{}},
                            {},
                            {core::ConcretePacket{}},
                            {core::ConcretePacket{}}};
    arrivals["fq.ibs.1"].push_back(
        {core::ConcretePacket{}, core::ConcretePacket{}});
    return analysis.simulate(arrivals);
  };

  const core::Trace original = run(models::kFairQueueBuggy);
  const core::Trace roundTripped = run(printed);
  ASSERT_EQ(original.series.size(), roundTripped.series.size());
  for (const auto& [name, values] : original.series) {
    EXPECT_EQ(values, roundTripped.series.at(name)) << name;
  }
}

}  // namespace
}  // namespace buffy::lang
