// Crash-isolated worker layer (DESIGN.md §13): protocol framing, job
// codecs, supervision (restart/retry/kill/degrade), and the end-to-end
// guarantee the layer exists for — verdicts under --isolate are identical
// to the serial in-process path on every example model, even while
// injected worker faults (crash, hang, garbled frame, torn write) storm
// every job's first attempt, and no worker process is ever orphaned.
#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "procs/net.hpp"
#include "procs/protocol.hpp"
#include "procs/remote.hpp"
#include "procs/supervisor.hpp"
#include "procs/wire.hpp"
#include "procs/worker.hpp"

namespace {

using namespace buffy;

#ifndef BUFFY_CLI_PATH
#error "BUFFY_CLI_PATH must be defined by the build"
#endif
#ifndef BUFFY_MODELS_DIR
#error "BUFFY_MODELS_DIR must be defined by the build"
#endif

// ---- protocol framing ---------------------------------------------------

struct PipePair {
  int fds[2] = {-1, -1};
  PipePair() { EXPECT_EQ(pipe(fds), 0); }
  ~PipePair() {
    if (fds[0] >= 0) close(fds[0]);
    if (fds[1] >= 0) close(fds[1]);
  }
  void closeWrite() {
    close(fds[1]);
    fds[1] = -1;
  }
};

TEST(Protocol, FrameRoundTrips) {
  PipePair p;
  const std::string payload = "hello\0world\x7f frame";
  ASSERT_TRUE(procs::writeFrame(p.fds[1], payload));
  std::string got;
  ASSERT_EQ(procs::readFrame(p.fds[0], got, 1000), procs::ReadStatus::Ok);
  EXPECT_EQ(got, payload);
}

TEST(Protocol, CleanEofAtFrameBoundary) {
  PipePair p;
  p.closeWrite();
  std::string got;
  EXPECT_EQ(procs::readFrame(p.fds[0], got, 1000), procs::ReadStatus::Eof);
}

TEST(Protocol, ChecksumMismatchIsGarbled) {
  PipePair p;
  ASSERT_TRUE(procs::writeGarbledFrame(p.fds[1], "payload"));
  std::string got;
  EXPECT_EQ(procs::readFrame(p.fds[0], got, 1000),
            procs::ReadStatus::Garbled);
}

TEST(Protocol, TornWriteIsGarbledNotEof) {
  PipePair p;
  ASSERT_TRUE(procs::writePartialFrame(p.fds[1], "a longer payload body"));
  p.closeWrite();  // the "crash": EOF lands inside the frame
  std::string got;
  EXPECT_EQ(procs::readFrame(p.fds[0], got, 1000),
            procs::ReadStatus::Garbled);
}

TEST(Protocol, DeadlineExpiryIsTimeout) {
  PipePair p;
  std::string got;
  EXPECT_EQ(procs::readFrame(p.fds[0], got, 50),
            procs::ReadStatus::Timeout);
}

TEST(Protocol, BadMagicIsGarbled) {
  PipePair p;
  const char junk[] = "not a frame header at all";
  ASSERT_GT(write(p.fds[1], junk, sizeof junk), 0);
  p.closeWrite();
  std::string got;
  EXPECT_EQ(procs::readFrame(p.fds[0], got, 1000),
            procs::ReadStatus::Garbled);
}

// ---- WireMap ------------------------------------------------------------

TEST(WireMap, TypedRoundTrip) {
  procs::WireMap m;
  m.set("s", "text with\nnewline\tand tab");
  m.setInt("i", -42);
  m.setUint("u", 18446744073709551615ull);
  m.setBool("b", true);
  m.setDouble("d", 0.125);
  const procs::WireMap back = procs::WireMap::decode(m.encode());
  EXPECT_EQ(back.get("s"), "text with\nnewline\tand tab");
  EXPECT_EQ(back.getInt("i"), -42);
  EXPECT_EQ(back.getUint("u"), 18446744073709551615ull);
  EXPECT_TRUE(back.getBool("b"));
  EXPECT_EQ(back.getDouble("d"), 0.125);
  EXPECT_FALSE(back.has("missing"));
  EXPECT_THROW((void)back.get("missing"), procs::ProtocolError);
  EXPECT_THROW((void)back.getInt("s"), procs::ProtocolError);
}

TEST(WireMap, DecodeRejectsGarbage) {
  EXPECT_THROW(procs::WireMap::decode("\xff\xfe not a wiremap"),
               procs::ProtocolError);
}

namespace {
void putU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}
}  // namespace

// Remote peers are untrusted (DESIGN.md §15): a forged entry count must be
// rejected before the decode loop allocates anything, not ride a 4-byte
// header into a four-billion-iteration loop.
TEST(WireMap, DecodeRejectsForgedEntryCount) {
  std::string bytes;
  putU32(bytes, 0xffffffffu);
  EXPECT_THROW(procs::WireMap::decode(bytes), procs::ProtocolError);
}

// Same-binary peers never emit duplicate keys (encode walks a std::map);
// a duplicate means forged input with ambiguous last-wins semantics.
TEST(WireMap, DecodeRejectsDuplicateKey) {
  std::string bytes;
  putU32(bytes, 2);
  for (int i = 0; i < 2; ++i) {
    putU32(bytes, 3);
    bytes += "key";
    putU32(bytes, 1);
    bytes += i == 0 ? "a" : "b";
  }
  EXPECT_THROW(procs::WireMap::decode(bytes), procs::ProtocolError);
}

TEST(WireMap, DecodeRejectsTrailingBytes) {
  procs::WireMap m;
  m.set("k", "v");
  std::string bytes = m.encode();
  bytes += "extra";
  EXPECT_THROW(procs::WireMap::decode(bytes), procs::ProtocolError);
}

// The pre-handshake hello read caps the payload at kMaxHelloPayload; a
// header promising more must be Garbled without the allocation happening.
TEST(Protocol, ReadFrameHonorsMaxPayloadCap) {
  PipePair p;
  const std::string big(8192, 'x');
  ASSERT_TRUE(procs::writeFrame(p.fds[1], big));
  std::string got;
  EXPECT_EQ(procs::readFrame(p.fds[0], got, 1000, /*maxPayload=*/4096),
            procs::ReadStatus::Garbled);
}

// ---- job/result codecs --------------------------------------------------

std::string modelPath(const char* name) {
  return std::string(BUFFY_MODELS_DIR) + "/" + name;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A round_robin job in wire form: the supervisor integration tests ship
/// this to a real `buffy --worker` subprocess.
procs::WireJob roundRobinJob() {
  core::ProgramSpec spec;
  spec.instance = "rr";
  spec.source = readFile(modelPath("round_robin.bfy"));
  spec.compile.constants["N"] = 2;
  core::BufferSpec in;
  in.param = "ibs";
  in.role = core::BufferSpec::Role::Input;
  in.capacity = 6;
  in.maxArrivalsPerStep = 2;
  core::BufferSpec out;
  out.param = "ob";
  out.role = core::BufferSpec::Role::Output;
  out.capacity = 16;
  spec.buffers = {in, out};

  procs::WireJob job;
  job.programs.push_back(spec);
  job.horizon = 4;
  job.queries.push_back("rr.cdeq.0[T-1] >= 0");
  return job;
}

TEST(Wire, JobRoundTrips) {
  procs::WireJob job = roundRobinJob();
  job.workloadSpecs = {"rr.ibs.0:0:1", "rr.ibs.1@2:1:1"};
  job.timeoutMs = 777;
  job.rlimit.reset();
  job.randomSeed = 23;
  job.verify = true;
  job.retryEnabled = false;
  job.budget.maxAstNodes = 12345;
  job.faultScope = "race:ladder";
  job.attempt = 3;
  procs::WireFault fault;
  fault.scope = "race:ladder";
  fault.nth = 1;
  fault.kind = static_cast<int>(backends::FaultAction::Kind::CrashBeforeReply);
  job.faults.push_back(fault);

  const procs::WireJob back =
      procs::decodeJob(procs::WireMap::decode(procs::encodeJob(job)));
  ASSERT_EQ(back.programs.size(), 1u);
  EXPECT_EQ(back.programs[0].instance, "rr");
  EXPECT_EQ(back.programs[0].source, job.programs[0].source);
  EXPECT_EQ(back.programs[0].compile.constants.at("N"), 2);
  ASSERT_EQ(back.programs[0].buffers.size(), 2u);
  EXPECT_EQ(back.programs[0].buffers[0].param, "ibs");
  EXPECT_EQ(back.programs[0].buffers[0].capacity, 6);
  EXPECT_EQ(back.programs[0].buffers[1].role,
            core::BufferSpec::Role::Output);
  EXPECT_EQ(back.horizon, 4);
  EXPECT_EQ(back.queries, job.queries);
  EXPECT_EQ(back.workloadSpecs, job.workloadSpecs);
  EXPECT_EQ(back.timeoutMs, std::optional<unsigned>(777));
  EXPECT_FALSE(back.rlimit.has_value());
  EXPECT_EQ(back.randomSeed, std::optional<unsigned>(23));
  EXPECT_TRUE(back.verify);
  EXPECT_FALSE(back.retryEnabled);
  EXPECT_EQ(back.budget.maxAstNodes, 12345u);
  EXPECT_EQ(back.faultScope, "race:ladder");
  EXPECT_EQ(back.attempt, 3u);
  ASSERT_EQ(back.faults.size(), 1u);
  EXPECT_EQ(back.faults[0].nth, 1u);
  EXPECT_EQ(back.faults[0].kind, fault.kind);
}

TEST(Wire, ResultRejectsUnknownVerdictName) {
  // A checksum-valid frame whose payload claims an unknown verdict must
  // be a ProtocolError (kill + retry), never an answer.
  procs::WireResult result;
  procs::WireVerdict v;
  v.verdict = "TOTALLY-BOGUS";
  result.verdicts.push_back(v);
  EXPECT_THROW(
      procs::decodeResult(procs::WireMap::decode(procs::encodeResult(result))),
      procs::ProtocolError);
}

TEST(Wire, ServeJobAnswersInProcess) {
  // The worker's serve path doubles as the supervisor's degradation
  // fallback; it must answer without any subprocess.
  const procs::WireResult result = procs::serveJob(roundRobinJob());
  EXPECT_TRUE(result.error.empty()) << result.error;
  ASSERT_EQ(result.verdicts.size(), 1u);
  EXPECT_EQ(result.verdicts[0].verdict, "SATISFIABLE");
  EXPECT_TRUE(result.verdicts[0].witnessChecked);
}

TEST(Wire, ServeJobReportsCompileErrorCleanly) {
  procs::WireJob job = roundRobinJob();
  job.programs[0].source = "this is not a buffy program (";
  const procs::WireResult result = procs::serveJob(job);
  EXPECT_FALSE(result.error.empty());
  EXPECT_TRUE(result.verdicts.empty());
}

// ---- supervision --------------------------------------------------------

procs::SupervisorOptions workerOptions() {
  procs::SupervisorOptions opts;
  opts.workerBinary = BUFFY_CLI_PATH;
  return opts;
}

procs::WireResult runNoFallback(procs::Supervisor& sup, procs::WireJob job) {
  const auto handle = sup.createJob();
  return handle->run(std::move(job), nullptr);
}

TEST(Supervisor, AnswersJobThroughWorker) {
  procs::Supervisor sup(workerOptions());
  ASSERT_TRUE(sup.available());
  const procs::WireResult result = runNoFallback(sup, roundRobinJob());
  EXPECT_TRUE(result.error.empty()) << result.error;
  ASSERT_EQ(result.verdicts.size(), 1u);
  EXPECT_EQ(result.verdicts[0].verdict, "SATISFIABLE");
  sup.shutdownWorkers();
  const procs::ProcsStats stats = sup.stats();
  EXPECT_EQ(stats.jobs, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.workersSpawned, stats.workersReaped);  // zero orphans
}

/// Schedules a worker fault on attempt `nth` of scope "t" and returns the
/// job pinned to that scope.
procs::WireJob faultedJob(backends::FaultAction::Kind kind,
                          std::uint64_t nth = 0) {
  procs::WireJob job = roundRobinJob();
  job.faultScope = "t";
  procs::WireFault fault;
  fault.scope = "t";
  fault.nth = nth;
  fault.kind = static_cast<int>(kind);
  job.faults.push_back(fault);
  return job;
}

TEST(Supervisor, CrashBeforeReplyRestartsAndRetries) {
  procs::Supervisor sup(workerOptions());
  const procs::WireResult result = runNoFallback(
      sup, faultedJob(backends::FaultAction::Kind::CrashBeforeReply));
  ASSERT_EQ(result.verdicts.size(), 1u);
  EXPECT_EQ(result.verdicts[0].verdict, "SATISFIABLE");
  sup.shutdownWorkers();
  const procs::ProcsStats stats = sup.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_GE(stats.restarts, 1u);
  EXPECT_EQ(stats.degradedJobs, 0u);
  EXPECT_EQ(stats.workersSpawned, stats.workersReaped);
}

TEST(Supervisor, HangIsKilledAtDeadlineAndRetried) {
  procs::Supervisor sup(workerOptions());
  procs::WireJob job = faultedJob(backends::FaultAction::Kind::Hang);
  job.timeoutMs = 200;  // keeps the derived deadline small
  const procs::WireResult result = runNoFallback(sup, std::move(job));
  ASSERT_EQ(result.verdicts.size(), 1u);
  EXPECT_EQ(result.verdicts[0].verdict, "SATISFIABLE");
  sup.shutdownWorkers();
  const procs::ProcsStats stats = sup.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_GE(stats.timeouts, 1u);
  EXPECT_GE(stats.kills, 1u);
  EXPECT_EQ(stats.workersSpawned, stats.workersReaped);
}

TEST(Supervisor, GarbledFrameIsKilledAndRetried) {
  procs::Supervisor sup(workerOptions());
  const procs::WireResult result = runNoFallback(
      sup, faultedJob(backends::FaultAction::Kind::GarbledFrame));
  ASSERT_EQ(result.verdicts.size(), 1u);
  EXPECT_EQ(result.verdicts[0].verdict, "SATISFIABLE");
  sup.shutdownWorkers();
  const procs::ProcsStats stats = sup.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_GE(stats.protocolErrors, 1u);
  EXPECT_EQ(stats.workersSpawned, stats.workersReaped);
}

TEST(Supervisor, PartialWriteIsGarbledAndRetried) {
  procs::Supervisor sup(workerOptions());
  const procs::WireResult result = runNoFallback(
      sup, faultedJob(backends::FaultAction::Kind::PartialWrite));
  ASSERT_EQ(result.verdicts.size(), 1u);
  EXPECT_EQ(result.verdicts[0].verdict, "SATISFIABLE");
  sup.shutdownWorkers();
  const procs::ProcsStats stats = sup.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_GE(stats.protocolErrors, 1u);
  EXPECT_EQ(stats.workersSpawned, stats.workersReaped);
}

TEST(Supervisor, ExhaustedRetriesDegradeToFallback) {
  procs::SupervisorOptions opts = workerOptions();
  opts.maxRetries = 1;
  procs::Supervisor sup(opts);
  // Crash attempts 0 AND 1: both tries die, the job must still be
  // answered — by the in-process fallback.
  procs::WireJob job = faultedJob(backends::FaultAction::Kind::CrashBeforeReply, 0);
  procs::WireFault again = job.faults[0];
  again.nth = 1;
  job.faults.push_back(again);
  const auto handle = sup.createJob();
  const procs::WireResult result = handle->run(
      std::move(job), [](const procs::WireJob& j) { return procs::serveJob(j); });
  ASSERT_EQ(result.verdicts.size(), 1u);
  EXPECT_EQ(result.verdicts[0].verdict, "SATISFIABLE");
  EXPECT_TRUE(handle->stats().degraded);
  sup.shutdownWorkers();
  const procs::ProcsStats stats = sup.stats();
  EXPECT_EQ(stats.degradedJobs, 1u);
  EXPECT_EQ(stats.workersSpawned, stats.workersReaped);
}

TEST(Supervisor, CleanWorkerErrorIsNotRetried) {
  procs::Supervisor sup(workerOptions());
  procs::WireJob job = roundRobinJob();
  job.programs[0].source = "not a program (";
  const procs::WireResult result = runNoFallback(sup, std::move(job));
  EXPECT_FALSE(result.error.empty());
  sup.shutdownWorkers();
  // The job itself was broken, not the worker: answering "error" must not
  // burn retries or kill the (healthy) worker.
  EXPECT_EQ(sup.stats().retries, 0u);
  EXPECT_EQ(sup.stats().kills, 0u);
}

TEST(Supervisor, MissingBinaryDegradesToFallback) {
  procs::SupervisorOptions opts;
  opts.workerBinary = "/nonexistent/no-such-worker-binary";
  procs::Supervisor sup(opts);
  EXPECT_FALSE(sup.available());
  const auto handle = sup.createJob();
  const procs::WireResult result = handle->run(
      roundRobinJob(),
      [](const procs::WireJob& j) { return procs::serveJob(j); });
  ASSERT_EQ(result.verdicts.size(), 1u);
  EXPECT_EQ(result.verdicts[0].verdict, "SATISFIABLE");
  EXPECT_EQ(sup.stats().degradedJobs, 1u);
  EXPECT_EQ(sup.stats().workersSpawned, 0u);
}

TEST(Supervisor, CancelBeforeRunYieldsCanceledVerdicts) {
  procs::Supervisor sup(workerOptions());
  const auto handle = sup.createJob();
  handle->cancel();
  const procs::WireResult result = handle->run(roundRobinJob(), nullptr);
  ASSERT_EQ(result.verdicts.size(), 1u);
  EXPECT_EQ(result.verdicts[0].verdict, "UNKNOWN");
  EXPECT_TRUE(result.verdicts[0].canceled);
  EXPECT_EQ(sup.stats().workersSpawned, 0u);  // never even started
}

TEST(Supervisor, IdleWorkersAreReusedAcrossJobs) {
  procs::Supervisor sup(workerOptions());
  for (int i = 0; i < 3; ++i) {
    const procs::WireResult result = runNoFallback(sup, roundRobinJob());
    ASSERT_EQ(result.verdicts.size(), 1u);
    EXPECT_EQ(result.verdicts[0].verdict, "SATISFIABLE");
  }
  sup.shutdownWorkers();
  const procs::ProcsStats stats = sup.stats();
  EXPECT_EQ(stats.jobs, 3u);
  EXPECT_EQ(stats.workersSpawned, 1u);  // one warm worker served all three
  EXPECT_EQ(stats.workersReaped, 1u);
}

// Regression: PR_SET_PDEATHSIG binds a worker's lifetime to the thread
// that forked it. When jobs ran (and forked) on short-lived pool threads,
// every warm worker died with its spawning thread, so cross-thread reuse
// handed out corpses that burned all retries (EPIPE on send -> Eof ->
// restart) until the job degraded to the fallback. The supervisor now
// forks on a dedicated long-lived spawner thread; a worker checked in by
// one thread must stay alive for the next.
TEST(Supervisor, WorkersSurviveSpawningThreadExit) {
  procs::Supervisor sup(workerOptions());
  std::thread shard([&sup] {
    const procs::WireResult result = runNoFallback(sup, roundRobinJob());
    ASSERT_EQ(result.verdicts.size(), 1u);
    EXPECT_EQ(result.verdicts[0].verdict, "SATISFIABLE");
  });
  shard.join();
  // Give a (buggy) thread-bound death signal time to land before reuse.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const procs::WireResult result = runNoFallback(sup, roundRobinJob());
  ASSERT_EQ(result.verdicts.size(), 1u);
  EXPECT_EQ(result.verdicts[0].verdict, "SATISFIABLE");
  const procs::ProcsStats stats = sup.stats();
  EXPECT_EQ(stats.workersSpawned, 1u);  // the warm worker was truly reused
  EXPECT_EQ(stats.restarts, 0u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.degradedJobs, 0u);
}

// ---- CLI: validation, fault storms, interruption ------------------------

struct CommandResult {
  int exitCode = -1;
  std::string output;
};

CommandResult runRaw(const std::string& command) {
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return {};
  CommandResult result;
  std::array<char, 4096> buffer{};
  std::size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), n);
  }
  const int status = pclose(pipe);
  result.exitCode = WEXITSTATUS(status);
  return result;
}

CommandResult runCli(const std::string& args) {
  return runRaw(std::string(BUFFY_CLI_PATH) + " " + args + " 2>&1");
}

TEST(CliProcs, CountFlagsAreValidatedAtParseTime) {
  const std::string tail =
      " --query \"rr.cdeq.0[T-1] >= 0\" " + modelPath("round_robin.bfy");
  struct Case {
    const char* args;
    const char* expect;
  };
  const Case cases[] = {
      {"check --sweep 2:3 --shards 0", "--shards expects an integer"},
      {"check --sweep 2:3 --shards -1", "--shards expects an integer"},
      {"check --sweep 2:3 --shards 2000", "--shards expects an integer"},
      {"check --sweep 2:3 --shards junk", "--shards expects an integer"},
      {"check --threads -4", "--threads expects an integer"},
      {"check --threads 1025", "--threads expects an integer"},
      {"check --race --isolate --retries 99999999999999999999",
       "--retries expects an integer"},
      {"check --race --isolate --retries 1025", "--retries expects an integer"},
      {"check --retries 2", "--retries needs --isolate"},
      {"check --isolate", "--isolate needs --race or --sweep"},
  };
  for (const auto& c : cases) {
    const auto result = runCli(std::string(c.args) + tail);
    EXPECT_EQ(result.exitCode, 2) << c.args << "\n" << result.output;
    EXPECT_NE(result.output.find(c.expect), std::string::npos)
        << c.args << "\n" << result.output;
  }
}

/// The example-model matrix (same configurations as cli_test's race
/// differential): serial verdict == isolated verdict, under fault storms.
struct ModelConfig {
  const char* name;
  const char* flags;
  const char* query;
};

constexpr ModelConfig kModels[] = {
    {"aimd",
     "-T 4 -D RTO=3 --input ind:8:2 --input inack:8:2 --output out:16 "
     "--output ackdrain:16",
     "aimd.mcwnd[T-1] >= 0"},
    {"delay_server", "-T 4 --input din:8:2 --output dout:16",
     "delay.mreleased[T-1] >= 0"},
    {"drr", "-T 4 -D N=2 -D QUANTUM=2 --input ibs:6:2 --output ob:16",
     "drr.bdeq.0[T-1] >= 0"},
    {"fq_buggy", "-T 5 -D N=2 --input ibs:6:3 --output ob:32",
     "fq.cdeq.0[T-1] >= T-1"},
    {"fq_fixed", "-T 5 -D N=2 --input ibs:6:3 --output ob:32",
     "fq.cdeq.0[T-1] >= T-1"},
    {"path_server",
     "-T 4 -D RATE=1 -D BUCKET=2 --input pin:8:2 --output pout:16",
     "path.mserved[T-1] >= 0"},
    {"round_robin", "-T 4 -D N=2 --input ibs:6:2 --output ob:16",
     "rr.cdeq.0[T-1] >= 0"},
    {"strict_priority", "-T 4 -D N=2 --input ibs:6:2 --output ob:16",
     "sp.cdeq.0[T-1] >= 0"},
};

/// First word of the table report — the verdict name.
std::string verdict(const std::string& output) {
  return output.substr(0, output.find_first_of(" \n"));
}

/// Pulls `"key":<integer>` out of a JSON report (the hand-written JSON
/// never nests the keys these tests read).
long jsonInt(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = json.find(needle);
  if (pos == std::string::npos) return -1;
  return std::strtol(json.c_str() + pos + needle.size(), nullptr, 10);
}

TEST(CliProcs, RaceIsolateUnderCrashStormMatchesSerialOnEveryModel) {
  for (const auto& m : kModels) {
    const std::string base = std::string("check ") + m.flags + " --query \"" +
                             m.query + "\" " + modelPath(m.name) + ".bfy";
    const auto serial = runCli(base);
    ASSERT_TRUE(serial.exitCode == 0 || serial.exitCode == 1)
        << m.name << "\n" << serial.output;
    // Kill storm: crash the first attempt of every remoteable member.
    const auto isolated = runCli(
        base +
        " --race --isolate --json"
        " --inject-fault race:ladder@0:crash"
        " --inject-fault race:z3-seed-5@0:crash"
        " --inject-fault race:z3-seed-23@0:crash"
        " --inject-fault race:smtlib@0:crash");
    EXPECT_EQ(isolated.exitCode, serial.exitCode)
        << m.name << "\n" << isolated.output;
    const std::string expect =
        "\"verdict\":\"" + verdict(serial.output) + "\"";
    EXPECT_NE(isolated.output.find(expect), std::string::npos)
        << m.name << ": serial said " << verdict(serial.output) << "\n"
        << isolated.output;
    // Zero orphans, and the storm actually happened.
    EXPECT_EQ(jsonInt(isolated.output, "workersSpawned"),
              jsonInt(isolated.output, "workersReaped"))
        << m.name << "\n" << isolated.output;
    EXPECT_GE(jsonInt(isolated.output, "restarts"), 1) << m.name;
  }
}

TEST(CliProcs, SweepIsolateUnderCrashStormMatchesSerialOnEveryModel) {
  for (const auto& m : kModels) {
    const std::string base = std::string("check ") + m.flags + " --query \"" +
                             m.query + "\" --sweep 2:4 " + modelPath(m.name) +
                             ".bfy";
    const auto serial = runCli(base + " --format csv");
    // Kill storm: crash the first attempt of every horizon's job.
    const auto isolated = runCli(base +
                                 " --format csv --shards 3 --isolate"
                                 " --inject-fault sweep:h2@0:crash"
                                 " --inject-fault sweep:h3@0:crash"
                                 " --inject-fault sweep:h4@0:crash");
    EXPECT_EQ(isolated.exitCode, serial.exitCode)
        << m.name << "\n" << isolated.output;
    // Point-for-point verdict equality: csv rows are
    // horizon,query,verdict,solveSeconds,canceled,shard — compare the
    // verdict-bearing columns, which must be byte-identical.
    std::istringstream a(serial.output);
    std::istringstream b(isolated.output);
    std::string la;
    std::string lb;
    for (;;) {
      const bool moreA = static_cast<bool>(std::getline(a, la));
      const bool moreB = static_cast<bool>(std::getline(b, lb));
      ASSERT_EQ(moreA, moreB) << m.name << ": row count differs";
      if (!moreA) break;
      auto key = [](const std::string& line) {
        // horizon,query,verdict (the first three fields)
        std::size_t comma = 0;
        std::size_t pos = 0;
        for (int i = 0; i < 3 && pos != std::string::npos; ++i) {
          pos = line.find(',', pos);
          if (pos != std::string::npos) comma = pos++;
        }
        return line.substr(0, comma);
      };
      EXPECT_EQ(key(la), key(lb)) << m.name;
    }
  }
}

// ---- remote transport (DESIGN.md §15) -----------------------------------

/// One `buffy --serve` subprocess on a loopback port. start() scans a
/// port range (port 0 is rejected by design, so no ephemeral binds),
/// waits for the "serving on" announcement, and stop() asserts the server
/// exits 0 on SIGTERM — a leaked or crashed server fails the test.
struct ServeProcess {
  pid_t pid = -1;
  int port = 0;
  int out = -1;

  bool start() {
    // Deterministic base with a pid-derived offset so parallel test
    // binaries on one machine do not fight over the same ports.
    const int base = 49400 + (static_cast<int>(::getpid()) % 97);
    for (int candidate = base; candidate < base + 40; ++candidate) {
      int fds[2] = {-1, -1};
      if (::pipe(fds) != 0) return false;
      const std::string addr = "127.0.0.1:" + std::to_string(candidate);
      const pid_t child = ::fork();
      if (child == 0) {
        ::dup2(fds[1], 1);
        ::dup2(fds[1], 2);
        ::close(fds[0]);
        ::close(fds[1]);
        ::execl(BUFFY_CLI_PATH, BUFFY_CLI_PATH, "--serve", "--listen",
                addr.c_str(), static_cast<char*>(nullptr));
        _exit(127);
      }
      ::close(fds[1]);
      std::string line;
      char c = 0;
      while (::read(fds[0], &c, 1) == 1 && c != '\n') line.push_back(c);
      if (line.find("serving on") != std::string::npos) {
        pid = child;
        port = candidate;
        out = fds[0];
        return true;
      }
      // Bind conflict (or startup failure): reap and try the next port.
      ::close(fds[0]);
      ::kill(child, SIGKILL);
      ::waitpid(child, nullptr, 0);
    }
    return false;
  }

  [[nodiscard]] std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(port);
  }

  /// SIGTERM, reap, and return the exit code (0 = clean shutdown).
  int stop() {
    if (pid < 0) return -1;
    ::kill(pid, SIGTERM);
    int status = 0;
    ::waitpid(pid, &status, 0);
    ::close(out);
    pid = -1;
    out = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -2;
  }

  ~ServeProcess() {
    if (pid >= 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
    if (out >= 0) ::close(out);
  }
};

TEST(CliRemote, RemoteFlagsAreValidatedAtParseTime) {
  const std::string tail =
      " --query \"rr.cdeq.0[T-1] >= 0\" " + modelPath("round_robin.bfy");
  struct Case {
    const char* args;
    const char* expect;
  };
  const Case cases[] = {
      {"check --sweep 2:3 --connect 127.0.0.1", "is not host:port"},
      {"check --sweep 2:3 --connect 127.0.0.1:0", "port must be in"},
      {"check --sweep 2:3 --connect 127.0.0.1:65536", "port must be in"},
      {"check --sweep 2:3 --connect 127.0.0.1:x", "non-numeric port"},
      {"check --sweep 2:3 --connect :443", "is not host:port"},
      {"check --sweep 2:3 --connect ", "--connect:"},
      {"check --sweep 2:3 --connect 127.0.0.1:80,badhost",
       "is not host:port"},
      {"check --connect 127.0.0.1:80", "--connect needs --race or --sweep"},
      {"check --race --heartbeat-ms 100", "--heartbeat-ms needs --connect"},
      {"check --sweep 2:3 --connect 127.0.0.1:80 --heartbeat-ms 0",
       "--heartbeat-ms expects an integer"},
      {"check --sweep 2:3 --connect 127.0.0.1:80 --heartbeat-ms junk",
       "--heartbeat-ms expects an integer"},
      {"check --listen 127.0.0.1:80", "server mode"},
      {"check --retries 2", "--retries needs --isolate or --connect"},
  };
  for (const auto& c : cases) {
    const auto result = runCli(std::string(c.args) + tail);
    EXPECT_EQ(result.exitCode, 2) << c.args << "\n" << result.output;
    EXPECT_NE(result.output.find(c.expect), std::string::npos)
        << c.args << "\n" << result.output;
  }
  // Server-mode and worker-mode argument validation (also exit 2).
  const Case modes[] = {
      {"--serve", "--serve needs --listen"},
      {"--serve --listen", "missing value after --listen"},
      {"--serve --listen notanaddr", "is not host:port"},
      {"--serve --listen 127.0.0.1:0", "port must be in"},
      {"--serve --listen 127.0.0.1:80 --bogus", "does not understand"},
      {"--worker extra-arg", "--worker takes no further arguments"},
  };
  for (const auto& c : modes) {
    const auto result = runRaw(std::string(BUFFY_CLI_PATH) + " " + c.args +
                               " 2>&1");
    EXPECT_EQ(result.exitCode, 2) << c.args << "\n" << result.output;
    EXPECT_NE(result.output.find(c.expect), std::string::npos)
        << c.args << "\n" << result.output;
  }
}

/// All (horizon, query, verdict) triples from a sweep's JSON points, in
/// report order — the verdict-bearing columns of the differential.
std::vector<std::string> sweepTriples(const std::string& json) {
  std::vector<std::string> triples;
  std::size_t pos = 0;
  while ((pos = json.find("{\"horizon\":", pos)) != std::string::npos) {
    const std::size_t end = json.find('}', pos);
    const std::string point = json.substr(pos, end - pos);
    auto field = [&point](const char* key) {
      const std::string needle = std::string("\"") + key + "\":";
      const std::size_t at = point.find(needle);
      if (at == std::string::npos) return std::string();
      std::size_t from = at + needle.size();
      std::size_t to = point.find_first_of(",}", from);
      return point.substr(from, to - from);
    };
    triples.push_back(field("horizon") + "|" + field("query") + "|" +
                      field("verdict"));
    pos = end;
  }
  return triples;
}

TEST(CliRemote, RemoteSweepUnderNetworkStormMatchesSerialOnEveryModel) {
  ServeProcess server;
  ASSERT_TRUE(server.start());
  for (const auto& m : kModels) {
    const std::string base = std::string("check ") + m.flags + " --query \"" +
                             m.query + "\" --sweep 2:4 --json " +
                             modelPath(m.name) + ".bfy";
    const auto serial = runCli(base);
    // Network storm across the sweep: connection refused on h2's first
    // attempt, a stale duplicate on its redispatch, a mid-frame disconnect
    // on h3, a stalled socket on h4 — every single horizon's first path to
    // an answer is broken.
    const auto remote = runCli(base + " --shards 2 --connect " +
                               server.endpoint() +
                               " --heartbeat-ms 100"
                               " --inject-fault sweep:h2@0:refuse"
                               " --inject-fault sweep:h2@1:dup"
                               " --inject-fault sweep:h3@0:disconnect"
                               " --inject-fault sweep:h4@0:stall");
    EXPECT_EQ(remote.exitCode, serial.exitCode)
        << m.name << "\n" << remote.output;
    // Point-for-point verdict equality with the serial in-process run.
    EXPECT_EQ(sweepTriples(serial.output), sweepTriples(remote.output))
        << m.name << "\n" << remote.output;
    // Every horizon was answered via redispatch (no degradation to the
    // local tier needed, no job silently dropped), and the faults really
    // fired.
    EXPECT_GE(jsonInt(remote.output, "redispatches"), 3) << remote.output;
    EXPECT_GE(jsonInt(remote.output, "refusals"), 1) << remote.output;
    EXPECT_GE(jsonInt(remote.output, "stalls"), 1) << remote.output;
    EXPECT_GE(jsonInt(remote.output, "reconnects"), 1) << remote.output;
    EXPECT_EQ(jsonInt(remote.output, "degradedToLocal"), 0)
        << remote.output;
    EXPECT_EQ(jsonInt(remote.output, "hostsDead"), 0) << remote.output;
    // The remote tier answered everything: the local tier never spawned.
    EXPECT_EQ(jsonInt(remote.output, "workersSpawned"), 0) << remote.output;
  }
  EXPECT_EQ(server.stop(), 0);  // clean SIGTERM shutdown, no orphan
}

TEST(CliRemote, RemoteRaceUnderNetworkStormMatchesSerialOnEveryModel) {
  ServeProcess server;
  ASSERT_TRUE(server.start());
  for (const auto& m : kModels) {
    const std::string base = std::string("check ") + m.flags + " --query \"" +
                             m.query + "\" " + modelPath(m.name) + ".bfy";
    const auto serial = runCli(base);
    ASSERT_TRUE(serial.exitCode == 0 || serial.exitCode == 1)
        << m.name << "\n" << serial.output;
    // Network storm across the portfolio: every remoteable member's first
    // attempt hits a different network fault.
    const auto remote = runCli(
        base + " --race --json --connect " + server.endpoint() +
        " --heartbeat-ms 100"
        " --inject-fault race:ladder@0:refuse"
        " --inject-fault race:z3-seed-5@0:disconnect"
        " --inject-fault race:z3-seed-23@0:dup"
        " --inject-fault race:smtlib@0:stall");
    EXPECT_EQ(remote.exitCode, serial.exitCode)
        << m.name << "\n" << remote.output;
    const std::string expect =
        "\"verdict\":\"" + verdict(serial.output) + "\"";
    EXPECT_NE(remote.output.find(expect), std::string::npos)
        << m.name << ": serial said " << verdict(serial.output) << "\n"
        << remote.output;
    // Zero local workers orphaned; the remote tier carried the race.
    EXPECT_EQ(jsonInt(remote.output, "workersSpawned"),
              jsonInt(remote.output, "workersReaped"))
        << m.name << "\n" << remote.output;
  }
  EXPECT_EQ(server.stop(), 0);
}

TEST(CliRemote, AllHostsDeadDegradesToLocalSubprocessTier) {
  // Nothing listens on the target port: every connect fails fast, the
  // host is marked dead after maxConnectFailures, and the degradation
  // ladder answers every job through the local subprocess tier instead —
  // same verdicts, nothing dropped.
  const std::string base =
      "check -T 4 -D N=2 --input ibs:6:2 --output ob:16"
      " --query \"rr.cdeq.0[T-1] >= 0\" --sweep 2:4 --json " +
      modelPath("round_robin.bfy");
  const auto serial = runCli(base);
  const auto remote = runCli(base + " --connect 127.0.0.1:49399");
  EXPECT_EQ(remote.exitCode, serial.exitCode) << remote.output;
  EXPECT_EQ(sweepTriples(serial.output), sweepTriples(remote.output))
      << remote.output;
  EXPECT_EQ(jsonInt(remote.output, "hostsDead"), 1) << remote.output;
  EXPECT_GE(jsonInt(remote.output, "degradedToLocal"), 1) << remote.output;
  // The local tier answered: workers really spawned, and were reaped.
  EXPECT_GE(jsonInt(remote.output, "workersSpawned"), 1) << remote.output;
  EXPECT_EQ(jsonInt(remote.output, "workersSpawned"),
            jsonInt(remote.output, "workersReaped"))
      << remote.output;
}

TEST(CliRemote, ServerRejectsProtocolVersionMismatchAtConnect) {
  ServeProcess server;
  ASSERT_TRUE(server.start());
  const auto addr = procs::parseHostPort(server.endpoint());
  ASSERT_TRUE(addr.has_value());
  const int fd = procs::connectSocket(*addr, 2000);
  ASSERT_GE(fd, 0);
  procs::WireMap hello;
  hello.set("type", "hello");
  hello.setInt("version", 999);  // a binary from the future
  hello.set("caps", "z3");
  hello.setInt("pid", ::getpid());
  ASSERT_TRUE(procs::writeFrame(fd, hello.encode()));
  std::string payload;
  ASSERT_EQ(procs::readFrame(fd, payload, 5000), procs::ReadStatus::Ok);
  const procs::WireMap reply = procs::WireMap::decode(payload);
  EXPECT_EQ(reply.get("type"), "hello-reject");
  EXPECT_NE(reply.get("reason").find("version"), std::string::npos)
      << reply.get("reason");
  // The server closes after rejecting: next read is clean EOF.
  EXPECT_EQ(procs::readFrame(fd, payload, 5000), procs::ReadStatus::Eof);
  ::close(fd);
  EXPECT_EQ(server.stop(), 0);
}

TEST(CliRemote, HostPoolAnswersJobDirectly) {
  // The pool without the CLI on top: one lease, one job, one answer.
  ServeProcess server;
  ASSERT_TRUE(server.start());
  const auto addr = procs::parseHostPort(server.endpoint());
  ASSERT_TRUE(addr.has_value());
  procs::RemoteOptions ropts;
  procs::RemoteHostPool pool({*addr}, ropts);
  ASSERT_TRUE(pool.available());
  {
    const auto lease = pool.checkout();
    ASSERT_NE(lease, nullptr);
    procs::WireResult result;
    EXPECT_EQ(lease->call(roundRobinJob(), result, 60000),
              procs::RemoteCallStatus::Answered);
    ASSERT_EQ(result.verdicts.size(), 1u);
    EXPECT_EQ(result.verdicts[0].verdict, "SATISFIABLE");
  }
  const procs::RemoteStats stats = pool.stats();
  EXPECT_EQ(stats.jobsAnswered, 1u);
  EXPECT_EQ(stats.connects, 1u);
  pool.shutdown();
  EXPECT_EQ(server.stop(), 0);
}

TEST(CliProcs, SigintEmitsPartialInterruptedReportAndExits130) {
  // Drive a real SIGINT through the CLI's signal watcher mid-sweep. The
  // run must emit a partial JSON report flagged "interrupted" and exit
  // 130; the hang fault keeps horizon 2 busy long enough to hit reliably.
  const std::string command =
      std::string("sh -c '") + BUFFY_CLI_PATH +
      " check -T 4 -D N=2 --input ibs:6:2 --output ob:16"
      " --query \"rr.cdeq.0[T-1] >= 0\" --sweep 2:6 --isolate --json"
      " --timeout 30000 --inject-fault sweep:h2@0:hang"
      " --inject-fault sweep:h2@1:hang --inject-fault sweep:h2@2:hang " +
      modelPath("round_robin.bfy") +
      " 2>&1 & pid=$!; sleep 1; kill -INT $pid; wait $pid; exit $?'";
  const auto result = runRaw(command);
  EXPECT_EQ(result.exitCode, 130) << result.output;
  EXPECT_NE(result.output.find("\"status\":\"interrupted\""),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("\"points\":["), std::string::npos)
      << result.output;
}

}  // namespace
