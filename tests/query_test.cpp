#include "core/query.hpp"

#include <gtest/gtest.h>

#include "ir/term_eval.hpp"
#include "support/error.hpp"

namespace buffy::core {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  QueryTest() {
    // Two series over a 4-step horizon: cdeq = [1,2,3,4], fq.drop = [0,0,1,1].
    for (int t = 0; t < 4; ++t) {
      cdeq_.push_back(arena_.intConst(t + 1));
      drop_.push_back(arena_.intConst(t >= 2 ? 1 : 0));
    }
    series_["cdeq"] = cdeq_;
    series_["fq.ob.dropped"] = drop_;
    series_["fq.cdeq.0"] = cdeq_;
  }

  std::int64_t eval(const std::string& text) {
    const SeriesView view(&series_, 4);
    return ir::evalTerm(Query::expr(text).build(view, arena_), {});
  }

  ir::TermArena arena_;
  std::map<std::string, std::vector<ir::TermRef>> series_;
  std::vector<ir::TermRef> cdeq_;
  std::vector<ir::TermRef> drop_;
};

TEST_F(QueryTest, SimpleComparison) {
  EXPECT_EQ(eval("cdeq[0] == 1"), 1);
  EXPECT_EQ(eval("cdeq[3] == 4"), 1);
  EXPECT_EQ(eval("cdeq[3] < 4"), 0);
}

TEST_F(QueryTest, HorizonConstant) {
  EXPECT_EQ(eval("cdeq[T-1] >= T/2"), 1);  // 4 >= 2
  EXPECT_EQ(eval("T == 4"), 1);
}

TEST_F(QueryTest, DottedSeriesNames) {
  EXPECT_EQ(eval("fq.ob.dropped[2] == 1"), 1);
  EXPECT_EQ(eval("fq.cdeq.0[1] == 2"), 1);
}

TEST_F(QueryTest, BooleanConnectives) {
  EXPECT_EQ(eval("cdeq[0] == 1 & cdeq[1] == 2"), 1);
  EXPECT_EQ(eval("cdeq[0] == 9 | cdeq[1] == 2"), 1);
  EXPECT_EQ(eval("!(cdeq[0] == 9)"), 1);
}

TEST_F(QueryTest, Arithmetic) {
  EXPECT_EQ(eval("cdeq[3] - cdeq[0] == 3"), 1);
  EXPECT_EQ(eval("cdeq[1] * 2 == 4"), 1);
  EXPECT_EQ(eval("cdeq[3] % 3 == 1"), 1);
}

TEST_F(QueryTest, SumBuiltin) {
  EXPECT_EQ(eval("sum(cdeq, 0, T) == 10"), 1);
  EXPECT_EQ(eval("sum(cdeq, 1, 3) == 5"), 1);
  EXPECT_EQ(eval("sum(fq.ob.dropped, 0, T) == 2"), 1);
}

TEST_F(QueryTest, WindowAggregates) {
  // cdeq = [1,2,3,4]; drop = [0,0,1,1].
  EXPECT_EQ(eval("max_over(cdeq, 0, T) == 4"), 1);
  EXPECT_EQ(eval("min_over(cdeq, 0, T) == 1"), 1);
  EXPECT_EQ(eval("max_over(cdeq, 1, 3) == 3"), 1);
  EXPECT_EQ(eval("min_over(fq.ob.dropped, 2, T) == 1"), 1);
  EXPECT_EQ(eval("max_over(cdeq, 0, T) <= 3"), 0);
}

TEST_F(QueryTest, WindowAggregateErrors) {
  const SeriesView view(&series_, 4);
  EXPECT_THROW(Query::expr("max_over(cdeq, 2, 2) > 0").build(view, arena_),
               AnalysisError);
  EXPECT_THROW(Query::expr("min_over(cdeq, 0, 9) > 0").build(view, arena_),
               AnalysisError);
  EXPECT_THROW(Query::expr("max_over(nosuch, 0, T) > 0").build(view, arena_),
               AnalysisError);
}

TEST_F(QueryTest, MinMaxBuiltins) {
  EXPECT_EQ(eval("min(cdeq[0], cdeq[3]) == 1"), 1);
  EXPECT_EQ(eval("max(cdeq[0], cdeq[3], 9) == 9"), 1);
}

TEST_F(QueryTest, UnknownSeriesListsKnown) {
  const SeriesView view(&series_, 4);
  try {
    Query::expr("nosuch[0] > 0").build(view, arena_);
    FAIL() << "expected AnalysisError";
  } catch (const AnalysisError& e) {
    EXPECT_NE(std::string(e.what()).find("unknown series"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("cdeq"), std::string::npos);
  }
}

TEST_F(QueryTest, StepOutOfRangeRejected) {
  const SeriesView view(&series_, 4);
  EXPECT_THROW(Query::expr("cdeq[4] > 0").build(view, arena_), AnalysisError);
  EXPECT_THROW(Query::expr("cdeq[0-1] > 0").build(view, arena_),
               AnalysisError);
}

TEST_F(QueryTest, NonBooleanQueryRejected) {
  const SeriesView view(&series_, 4);
  EXPECT_THROW(Query::expr("cdeq[0] + 1").build(view, arena_), AnalysisError);
}

TEST_F(QueryTest, TrailingTokensRejected) {
  const SeriesView view(&series_, 4);
  EXPECT_THROW(Query::expr("cdeq[0] > 0 cdeq").build(view, arena_),
               AnalysisError);
}

TEST_F(QueryTest, SymbolicStepIndexRejected) {
  // A series whose values are symbolic cannot serve as a step index.
  series_["sym"] = {arena_.var("s0", ir::Sort::Int), arena_.intConst(0),
                    arena_.intConst(0), arena_.intConst(0)};
  const SeriesView view(&series_, 4);
  EXPECT_THROW(Query::expr("cdeq[sym[0]] > 0").build(view, arena_),
               AnalysisError);
}

TEST_F(QueryTest, CustomQuery) {
  const SeriesView view(&series_, 4);
  const Query q = Query::custom("last step drop", [](const SeriesView& v,
                                                     ir::TermArena& a) {
    return a.gt(v.find("fq.ob.dropped")->back(), a.intConst(0));
  });
  EXPECT_EQ(ir::evalTerm(q.build(view, arena_), {}), 1);
  EXPECT_EQ(q.description(), "last step drop");
}

TEST_F(QueryTest, AlwaysQuery) {
  const SeriesView view(&series_, 4);
  EXPECT_TRUE(Query::always().build(view, arena_)->isTrue());
}

TEST_F(QueryTest, ParenthesesAndPrecedence) {
  EXPECT_EQ(eval("(cdeq[0] + cdeq[1]) * 2 == 6"), 1);
  EXPECT_EQ(eval("cdeq[0] == 1 | cdeq[0] == 2 & cdeq[1] == 99"), 1);
}

}  // namespace
}  // namespace buffy::core
