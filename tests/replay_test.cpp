// Witness-replay cross-check on the example models (DESIGN.md §8): every
// SAT/Violated trace the solver produces must replay identically through
// the concrete interpreter. These mirror the quickstart, fq_starvation and
// drr_shaping example setups. Runs under ctest label `resilience`.
#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "helpers.hpp"

namespace buffy {
namespace {

using buffy::testing::schedulerNet;
using buffy::testing::starvationWorkload;

core::Network drrNet() {
  core::ProgramSpec spec;
  spec.instance = "drr";
  spec.source = models::kDeficitRoundRobin;
  spec.compile.constants["N"] = 2;
  spec.compile.constants["QUANTUM"] = 3;
  spec.buffers = {
      {.param = "ibs",
       .role = core::BufferSpec::Role::Input,
       .capacity = 8,
       .schema = {{"bytes"}},
       .maxArrivalsPerStep = 4,
       .maxPacketBytes = 4},
      {.param = "ob",
       .role = core::BufferSpec::Role::Output,
       .capacity = 32,
       .schema = {{"bytes"}}},
  };
  core::Network net;
  net.add(spec);
  return net;
}

TEST(WitnessReplayExamples, QuickstartRoundRobinHog) {
  // The quickstart's check: can queue 0 win more than its share?
  core::AnalysisOptions opts;
  opts.horizon = 6;
  core::Analysis analysis(schedulerNet(models::kRoundRobin, "rr", 2, 4, 2),
                          opts);
  const auto hog = analysis.check(core::Query::expr("rr.cdeq.0[T-1] >= T-1"));
  ASSERT_EQ(hog.verdict, core::Verdict::Satisfiable);
  ASSERT_TRUE(hog.trace.has_value());
  EXPECT_TRUE(hog.witnessChecked) << "SAT witness was not replayed";
}

TEST(WitnessReplayExamples, QuickstartRoundRobinFairnessCounterexample) {
  // The verify direction: weaken the quickstart's fairness bound until it
  // breaks, so verify() produces a counterexample trace — which must
  // replay too.
  core::AnalysisOptions opts;
  opts.horizon = 6;
  core::Analysis analysis(schedulerNet(models::kRoundRobin, "rr", 2, 4, 2),
                          opts);
  core::Workload both;
  both.add(core::Workload::perStepCount("rr.ibs.0", 1, 2))
      .add(core::Workload::perStepCount("rr.ibs.1", 1, 2));
  analysis.setWorkload(both);
  const auto broken =
      analysis.verify(core::Query::expr("rr.cdeq.0[T-1] <= 1"));
  ASSERT_EQ(broken.verdict, core::Verdict::Violated);
  ASSERT_TRUE(broken.trace.has_value());
  EXPECT_TRUE(broken.witnessChecked) << "counterexample was not replayed";
}

TEST(WitnessReplayExamples, FqStarvation) {
  // The §2.1/§6.1 flagship: the buggy FQ scheduler starves queue 1 under
  // the RFC 8290 pacing workload.
  const int horizon = 6;
  core::AnalysisOptions opts;
  opts.horizon = horizon;
  core::Analysis analysis(schedulerNet(models::kFairQueueBuggy, "fq", 2),
                          opts);
  analysis.setWorkload(starvationWorkload("fq", horizon));
  const auto starved = analysis.check(
      core::Query::expr("fq.cdeq.0[T-1] >= T-1 & fq.cdeq.1[T-1] <= 1"));
  ASSERT_EQ(starved.verdict, core::Verdict::Satisfiable);
  ASSERT_TRUE(starved.trace.has_value());
  EXPECT_TRUE(starved.witnessChecked) << "starvation witness was not replayed";
}

TEST(WitnessReplayExamples, DrrByteShares) {
  // The drr_shaping setup: packet schemas in play, so the replay must
  // reconstruct per-packet field values (bytes) from the trace.
  core::AnalysisOptions opts;
  opts.horizon = 5;
  core::Analysis analysis(drrNet(), opts);
  core::Workload loaded;
  loaded.add(core::Workload::perStepCount("drr.ibs.0", 2, 2));
  loaded.add(core::Workload::perStepCount("drr.ibs.1", 2, 2));
  analysis.setWorkload(loaded);
  const auto served =
      analysis.check(core::Query::expr("drr.bdeq.0[T-1] >= 1"));
  ASSERT_EQ(served.verdict, core::Verdict::Satisfiable);
  ASSERT_TRUE(served.trace.has_value());
  EXPECT_TRUE(served.witnessChecked) << "DRR witness was not replayed";
}

TEST(WitnessReplayExamples, UnsatisfiableResultsAreNotReplayed) {
  core::AnalysisOptions opts;
  opts.horizon = 4;
  core::Analysis analysis(schedulerNet(models::kRoundRobin, "rr", 2, 4, 2),
                          opts);
  core::Workload none;
  none.add(core::Workload::perStepCount("rr.ibs.0", 0, 0));
  none.add(core::Workload::perStepCount("rr.ibs.1", 0, 0));
  analysis.setWorkload(none);
  const auto result =
      analysis.check(core::Query::expr("rr.cdeq.0[T-1] >= 1"));
  EXPECT_EQ(result.verdict, core::Verdict::Unsatisfiable);
  EXPECT_FALSE(result.witnessChecked);
}

TEST(WitnessReplayExamples, HavocedInitialStateSkipsReplay) {
  // Havoced initial queue contents are not concretely replayable — the
  // cross-check must bail silently, not reject the witness.
  core::AnalysisOptions opts;
  opts.horizon = 4;
  opts.symbolicInitialState = true;
  core::Analysis analysis(schedulerNet(models::kRoundRobin, "rr", 2, 4, 2),
                          opts);
  const auto result =
      analysis.check(core::Query::expr("rr.cdeq.0[T-1] >= 1"));
  ASSERT_EQ(result.verdict, core::Verdict::Satisfiable);
  EXPECT_FALSE(result.witnessChecked);
}

}  // namespace
}  // namespace buffy
