// The solver-resilience layer (DESIGN.md §8): Unknown retry/escalation
// ladder, cooperative cancellation, per-candidate fault isolation in the
// synthesizer, and the deterministic fault-injection seam that drives all
// of it. Everything here runs under ctest label `resilience`.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "backends/fault_plan.hpp"
#include "core/analysis.hpp"
#include "helpers.hpp"
#include "support/error.hpp"
#include "synth/synthesizer.hpp"

namespace buffy {
namespace {

using buffy::testing::schedulerNet;

core::Query satQuery() { return core::Query::expr("rr.cdeq.0[T-1] >= 1"); }

core::AnalysisOptions baseOptions() {
  core::AnalysisOptions opts;
  opts.horizon = 4;
  return opts;
}

core::Workload steadyWorkload() {
  core::Workload w;
  w.add(core::Workload::perStepCount("rr.ibs.0", 1, 1));
  w.add(core::Workload::perStepCount("rr.ibs.1", 0, 1));
  return w;
}

std::unique_ptr<core::Analysis> makeEngine(core::AnalysisOptions opts) {
  auto engine = std::make_unique<core::Analysis>(
      schedulerNet(models::kRoundRobin, "rr", 2, 4, 2), opts);
  engine->setWorkload(steadyWorkload());
  return engine;
}

// ---------------------------------------------------------------------
// Retry / escalation ladder
// ---------------------------------------------------------------------

TEST(RetryLadder, SingleAttemptWhenSolverAnswers) {
  const auto result = makeEngine(baseOptions())->check(satQuery());
  EXPECT_EQ(result.verdict, core::Verdict::Satisfiable);
  ASSERT_EQ(result.attempts.size(), 1u);
  EXPECT_EQ(result.attempts[0].stage, "initial");
  EXPECT_EQ(result.attempts[0].outcome, "sat");
  EXPECT_FALSE(result.canceled);
}

TEST(RetryLadder, ReseedRungRecoversFromTransientUnknown) {
  auto plan = std::make_shared<backends::FaultPlan>();
  plan->forceUnknown("", 0, "transient");
  core::AnalysisOptions opts = baseOptions();
  opts.faultPlan = plan;
  const auto result = makeEngine(opts)->check(satQuery());
  EXPECT_EQ(result.verdict, core::Verdict::Satisfiable);
  ASSERT_EQ(result.attempts.size(), 2u);
  EXPECT_EQ(result.attempts[0].stage, "initial");
  EXPECT_EQ(result.attempts[0].outcome, "unknown");
  EXPECT_EQ(result.attempts[0].reason, "transient");
  EXPECT_EQ(result.attempts[1].stage, "reseed");
  EXPECT_EQ(result.attempts[1].outcome, "sat");
  ASSERT_TRUE(result.attempts[1].seed.has_value());
  EXPECT_EQ(*result.attempts[1].seed, 17u);
}

TEST(RetryLadder, SmtlibRungIsTheLastResort) {
  // Kill initial, reseed, and escalate; the emit+reparse rung answers.
  auto plan = std::make_shared<backends::FaultPlan>();
  plan->forceUnknown("", 0).forceUnknown("", 1).forceUnknown("", 2);
  core::AnalysisOptions opts = baseOptions();
  opts.faultPlan = plan;
  opts.rlimit = 100000000;  // enables the escalate rung
  const auto result = makeEngine(opts)->check(satQuery());
  EXPECT_EQ(result.verdict, core::Verdict::Satisfiable);
  ASSERT_EQ(result.attempts.size(), 4u);
  EXPECT_EQ(result.attempts[0].stage, "initial");
  EXPECT_EQ(result.attempts[1].stage, "reseed");
  EXPECT_EQ(result.attempts[2].stage, "escalate");
  EXPECT_EQ(result.attempts[3].stage, "smtlib");
  EXPECT_EQ(result.attempts[3].outcome, "sat");
  // The escalate rung scaled the budget (default factor 4).
  ASSERT_TRUE(result.attempts[2].timeoutMs.has_value());
  EXPECT_EQ(*result.attempts[2].timeoutMs, *result.attempts[0].timeoutMs * 4);
}

TEST(RetryLadder, ExhaustionYieldsUnknown) {
  auto plan = std::make_shared<backends::FaultPlan>();
  for (std::size_t i = 0; i < 4; ++i) plan->forceUnknown("", i, "hopeless");
  core::AnalysisOptions opts = baseOptions();
  opts.faultPlan = plan;
  opts.rlimit = 100000000;
  const auto result = makeEngine(opts)->check(satQuery());
  EXPECT_EQ(result.verdict, core::Verdict::Unknown);
  EXPECT_TRUE(result.inconclusive());
  EXPECT_EQ(result.attempts.size(), 4u);
  EXPECT_EQ(result.detail, "hopeless");
}

TEST(RetryLadder, EscalateRungSkippedWithoutBudget) {
  // No timeout and no rlimit: there is nothing to escalate, so the ladder
  // is initial -> reseed -> smtlib.
  auto plan = std::make_shared<backends::FaultPlan>();
  plan->forceUnknown("", 0).forceUnknown("", 1);
  core::AnalysisOptions opts = baseOptions();
  opts.faultPlan = plan;
  opts.timeoutMs = std::nullopt;
  const auto result = makeEngine(opts)->check(satQuery());
  EXPECT_EQ(result.verdict, core::Verdict::Satisfiable);
  ASSERT_EQ(result.attempts.size(), 3u);
  EXPECT_EQ(result.attempts[2].stage, "smtlib");
}

TEST(RetryLadder, DisabledPolicyStopsAtFirstUnknown) {
  auto plan = std::make_shared<backends::FaultPlan>();
  plan->forceUnknown("", 0, "gave up");
  core::AnalysisOptions opts = baseOptions();
  opts.faultPlan = plan;
  opts.retry.enabled = false;
  const auto result = makeEngine(opts)->check(satQuery());
  EXPECT_EQ(result.verdict, core::Verdict::Unknown);
  EXPECT_EQ(result.attempts.size(), 1u);
}

TEST(RetryLadder, VerifyRunsTheSameLadder) {
  auto plan = std::make_shared<backends::FaultPlan>();
  plan->forceUnknown("", 0);
  core::AnalysisOptions opts = baseOptions();
  opts.faultPlan = plan;
  // A property that holds: counters never go negative.
  const auto result =
      makeEngine(opts)->verify(core::Query::expr("rr.cdeq.0[T-1] >= 0"));
  EXPECT_EQ(result.verdict, core::Verdict::Verified);
  ASSERT_EQ(result.attempts.size(), 2u);
  EXPECT_EQ(result.attempts[1].stage, "reseed");
}

// ---------------------------------------------------------------------
// Fault injection: crashes and cancellation
// ---------------------------------------------------------------------

TEST(FaultInjection, ThrowSurfacesAsBackendError) {
  auto plan = std::make_shared<backends::FaultPlan>();
  plan->at("", 0,
           {backends::FaultAction::Kind::Throw, "simulated crash", 0});
  core::AnalysisOptions opts = baseOptions();
  opts.faultPlan = plan;
  EXPECT_THROW(makeEngine(opts)->check(satQuery()), BackendError);
}

TEST(FaultInjection, FaultsAreScoped) {
  // A fault planned for scope "other" never fires in the default scope.
  auto plan = std::make_shared<backends::FaultPlan>();
  plan->forceUnknown("other", 0);
  core::AnalysisOptions opts = baseOptions();
  opts.faultPlan = plan;
  auto engine = makeEngine(opts);
  EXPECT_EQ(engine->check(satQuery()).verdict, core::Verdict::Satisfiable);
  EXPECT_EQ(engine->check(satQuery()).attempts.size(), 1u);
  // Entering the scope makes it fire.
  engine->setFaultScope("other");
  const auto faulted = engine->check(satQuery());
  EXPECT_EQ(faulted.attempts[0].outcome, "unknown");
}

TEST(Cancellation, InterruptBeforeQueryShortCircuits) {
  auto engine = makeEngine(baseOptions());
  engine->interrupt();
  EXPECT_TRUE(engine->interrupted());
  const auto result = engine->check(satQuery());
  EXPECT_EQ(result.verdict, core::Verdict::Unknown);
  EXPECT_TRUE(result.canceled);
  // Cancelled queries are never retried.
  EXPECT_EQ(result.attempts.size(), 1u);
}

TEST(Cancellation, InterruptedEngineStaysCancelled) {
  auto engine = makeEngine(baseOptions());
  EXPECT_EQ(engine->check(satQuery()).verdict, core::Verdict::Satisfiable);
  engine->interrupt();
  EXPECT_TRUE(engine->check(satQuery()).canceled);
  EXPECT_TRUE(engine->check(satQuery()).canceled);
}

// ---------------------------------------------------------------------
// Witness replay
// ---------------------------------------------------------------------

TEST(WitnessReplay, HonestWitnessPassesTheCrossCheck) {
  const auto result = makeEngine(baseOptions())->check(satQuery());
  EXPECT_EQ(result.verdict, core::Verdict::Satisfiable);
  EXPECT_TRUE(result.witnessChecked);
}

TEST(WitnessReplay, CorruptedWitnessIsCaught) {
  auto plan = std::make_shared<backends::FaultPlan>();
  plan->at("", 0,
           {backends::FaultAction::Kind::CorruptWitness, "", 0});
  core::AnalysisOptions opts = baseOptions();
  opts.faultPlan = plan;
  const auto result = makeEngine(opts)->check(satQuery());
  EXPECT_EQ(result.verdict, core::Verdict::WitnessMismatch);
  EXPECT_NE(result.detail.find("diverged"), std::string::npos)
      << result.detail;
}

TEST(WitnessReplay, DisabledReplayTrustsTheSolver) {
  auto plan = std::make_shared<backends::FaultPlan>();
  plan->at("", 0,
           {backends::FaultAction::Kind::CorruptWitness, "", 0});
  core::AnalysisOptions opts = baseOptions();
  opts.faultPlan = plan;
  opts.replayWitness = false;
  const auto result = makeEngine(opts)->check(satQuery());
  EXPECT_EQ(result.verdict, core::Verdict::Satisfiable);
  EXPECT_FALSE(result.witnessChecked);
}

// ---------------------------------------------------------------------
// Synthesizer fault isolation (the acceptance-criterion scenario)
// ---------------------------------------------------------------------

synth::SynthesisResult runFaultySynthesis(int threads) {
  // Candidate 1 hits a per-candidate solver timeout on every rung of the
  // retry ladder (a single injected Unknown would be *recovered* by the
  // reseed rung) and candidate 2 hits a worker exception (Throw). Faults
  // are scoped by enumeration index, so the same candidates fail under any
  // thread count.
  auto plan = std::make_shared<backends::FaultPlan>();
  for (std::size_t rung = 0; rung < 4; ++rung) {
    plan->forceUnknown("cand1", rung, "injected timeout");
  }
  plan->at("cand2", 0,
           {backends::FaultAction::Kind::Throw, "injected crash", 0});
  core::AnalysisOptions opts;
  opts.horizon = 4;
  opts.faultPlan = plan;
  synth::Synthesizer synthesizer(
      schedulerNet(models::kStrictPriority, "sp", 2), opts);
  synth::SynthesisOptions sopts;
  sopts.grammar = {synth::Pattern::None, synth::Pattern::ExactlyOnePerStep};
  sopts.threads = threads;
  // These tests exercise the SMT fault path; the interpreter prescreen
  // would decide candidates before any injected solver fault can fire.
  sopts.prescreen = false;
  return synthesizer.run(core::Query::expr("sp.cdeq.0[T-1] == T"), sopts);
}

TEST(SynthFaultIsolation, RunCompletesAndReportsFailures) {
  const auto result = runFaultySynthesis(1);
  // 4 candidates: #0 conclusive, #1 unknown, #2 crashed, #3 conclusive.
  EXPECT_EQ(result.candidatesChecked, 4);
  EXPECT_EQ(result.solvedCount, 2);
  EXPECT_EQ(result.unknownCount, 1);
  EXPECT_EQ(result.failedCount, 1);
  ASSERT_EQ(result.failures.size(), 2u);
  EXPECT_EQ(result.failures[0].index, 1u);
  EXPECT_EQ(result.failures[0].kind, synth::FailureKind::Unknown);
  EXPECT_EQ(result.failures[0].stage, "exists");
  EXPECT_EQ(result.failures[1].index, 2u);
  EXPECT_EQ(result.failures[1].kind, synth::FailureKind::Exception);
  EXPECT_NE(result.failures[1].detail.find("injected crash"),
            std::string::npos);
  // The surviving solution is still found.
  ASSERT_EQ(result.solutions.size(), 1u);
  EXPECT_EQ(result.solutions[0].assignment.at("sp.ibs.0"),
            synth::Pattern::ExactlyOnePerStep);
  // And the one-line report reflects the split.
  EXPECT_NE(result.summary().find("1 solution(s)"), std::string::npos)
      << result.summary();
}

TEST(SynthFaultIsolation, FailureReportIsThreadCountInvariant) {
  const auto sequential = runFaultySynthesis(1);
  const auto parallel = runFaultySynthesis(4);
  ASSERT_EQ(parallel.solutions.size(), sequential.solutions.size());
  for (std::size_t i = 0; i < sequential.solutions.size(); ++i) {
    EXPECT_EQ(parallel.solutions[i].assignment,
              sequential.solutions[i].assignment);
  }
  ASSERT_EQ(parallel.failures.size(), sequential.failures.size());
  for (std::size_t i = 0; i < sequential.failures.size(); ++i) {
    EXPECT_EQ(parallel.failures[i].index, sequential.failures[i].index);
    EXPECT_EQ(parallel.failures[i].kind, sequential.failures[i].kind);
    EXPECT_EQ(parallel.failures[i].stage, sequential.failures[i].stage);
    EXPECT_EQ(parallel.failures[i].assignment,
              sequential.failures[i].assignment);
  }
  EXPECT_EQ(parallel.solvedCount, sequential.solvedCount);
  EXPECT_EQ(parallel.unknownCount, sequential.unknownCount);
  EXPECT_EQ(parallel.failedCount, sequential.failedCount);
}

TEST(SynthFaultIsolation, WitnessMismatchIsARecordedFailure) {
  auto plan = std::make_shared<backends::FaultPlan>();
  plan->at("cand1", 0,
           {backends::FaultAction::Kind::CorruptWitness, "", 0});
  core::AnalysisOptions opts;
  opts.horizon = 4;
  opts.faultPlan = plan;
  synth::Synthesizer synthesizer(
      schedulerNet(models::kStrictPriority, "sp", 2), opts);
  synth::SynthesisOptions sopts;
  sopts.grammar = {synth::Pattern::None, synth::Pattern::ExactlyOnePerStep};
  sopts.prescreen = false;  // the injected fault lives on the SMT path
  const auto result =
      synthesizer.run(core::Query::expr("sp.cdeq.0[T-1] == T"), sopts);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].index, 1u);
  EXPECT_EQ(result.failures[0].kind, synth::FailureKind::WitnessMismatch);
  EXPECT_EQ(result.failedCount, 1);
}

TEST(SynthFailure, DescribeAndKindNames) {
  EXPECT_STREQ(synth::failureKindName(synth::FailureKind::Unknown), "unknown");
  EXPECT_STREQ(synth::failureKindName(synth::FailureKind::Exception),
               "exception");
  EXPECT_STREQ(synth::failureKindName(synth::FailureKind::WitnessMismatch),
               "witness-mismatch");
  synth::CandidateFailure f;
  f.index = 3;
  f.assignment = {{"sp.ibs.0", synth::Pattern::None}};
  f.kind = synth::FailureKind::Exception;
  f.stage = "exists";
  f.detail = "boom";
  const std::string text = f.describe();
  EXPECT_NE(text.find("#3"), std::string::npos) << text;
  EXPECT_NE(text.find("exception"), std::string::npos);
  EXPECT_NE(text.find("exists"), std::string::npos);
  EXPECT_NE(text.find("boom"), std::string::npos);
}

}  // namespace
}  // namespace buffy
