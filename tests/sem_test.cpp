#include "sem/passes.hpp"

#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "lang/typecheck.hpp"
#include "models/library.hpp"

namespace buffy::sem {
namespace {

struct CheckOutcome {
  bool wellFormed = false;
  bool ghostClean = false;
  std::string rendered;
};

CheckOutcome runPasses(const std::string& source, BufferRoles roles,
                       lang::CompileOptions opts = {}) {
  lang::Ast prog = lang::parse(source);
  const auto symbols = lang::checkOrThrow(prog, opts);
  CheckOutcome out;
  DiagnosticEngine diag;
  out.wellFormed = checkWellFormed(prog, roles, diag);
  out.ghostClean = checkGhostNonInterference(prog, symbols.monitors, diag);
  out.rendered = diag.renderAll();
  return out;
}

BufferRoles ioRoles() {
  BufferRoles roles;
  roles.inputs = {"a"};
  roles.outputs = {"b"};
  return roles;
}

TEST(WellFormed, CleanProgramPasses) {
  const auto out = runPasses(R"(
p(buffer a, buffer b) {
  move-p(a, b, 1);
})",
                             ioRoles());
  EXPECT_TRUE(out.wellFormed) << out.rendered;
}

TEST(WellFormed, AllModelsPass) {
  lang::CompileOptions opts;
  opts.constants = {{"N", 3}, {"RATE", 2}, {"BUCKET", 4}, {"RTO", 3}, {"QUANTUM", 2}};
  opts.defaultListCapacity = 3;
  for (const auto& entry : models::allModels()) {
    BufferRoles roles;  // no role restrictions — structural checks only
    const auto out = runPasses(entry.source, roles, opts);
    EXPECT_TRUE(out.wellFormed) << entry.name << "\n" << out.rendered;
    EXPECT_TRUE(out.ghostClean) << entry.name << "\n" << out.rendered;
  }
}

TEST(WellFormed, OutputBufferIsWriteOnly) {
  const auto out = runPasses(R"(
p(buffer a, buffer b) {
  move-p(b, a, 1);
})",
                             ioRoles());
  EXPECT_FALSE(out.wellFormed);
  EXPECT_NE(out.rendered.find("write-only"), std::string::npos);
}

TEST(WellFormed, OutputBacklogRejected) {
  const auto out = runPasses(R"(
p(buffer a, buffer b) {
  local int x;
  x = backlog-p(b);
})",
                             ioRoles());
  EXPECT_FALSE(out.wellFormed);
}

TEST(WellFormed, InputNotMoveDestination) {
  BufferRoles roles;
  roles.inputs = {"a", "c"};
  const auto out = runPasses(R"(
p(buffer a, buffer c) {
  move-p(a, c, 1);
})",
                             roles);
  EXPECT_FALSE(out.wellFormed);
}

TEST(WellFormed, ReturnInProgramBodyRejected) {
  const auto out = runPasses(R"(
p(buffer a, buffer b) {
  return;
})",
                             ioRoles());
  EXPECT_FALSE(out.wellFormed);
}

TEST(WellFormed, GlobalInsideFunctionRejected) {
  const auto out = runPasses(R"(
p(buffer a, buffer b) {
  def int f() {
    global int g;
    return g;
  }
  local int x;
  x = f();
})",
                             ioRoles());
  EXPECT_FALSE(out.wellFormed);
}

TEST(WellFormed, RuntimeLoopBoundRejected) {
  const auto out = runPasses(R"(
p(buffer a, buffer b) {
  for (i in 0..backlog-p(a)) do { }
})",
                             ioRoles());
  EXPECT_FALSE(out.wellFormed);
  EXPECT_NE(out.rendered.find("bounded loops"), std::string::npos);
}

TEST(Ghost, MonitorUpdatesAllowed) {
  const auto out = runPasses(R"(
p(buffer a, buffer b) {
  global monitor int m;
  m = m + backlog-p(a);
  assert(m >= 0);
})",
                             ioRoles());
  EXPECT_TRUE(out.ghostClean) << out.rendered;
}

TEST(Ghost, MonitorFeedingRealStateRejected) {
  const auto out = runPasses(R"(
p(buffer a, buffer b) {
  global monitor int m;
  global int real;
  real = m;
})",
                             ioRoles());
  EXPECT_FALSE(out.ghostClean);
}

TEST(Ghost, MonitorInMoveAmountRejected) {
  const auto out = runPasses(R"(
p(buffer a, buffer b) {
  global monitor int m;
  move-p(a, b, m);
})",
                             ioRoles());
  EXPECT_FALSE(out.ghostClean);
}

TEST(Ghost, MonitorGuardingGhostOnlyAllowed) {
  const auto out = runPasses(R"(
p(buffer a, buffer b) {
  global monitor int m;
  global monitor int peak;
  if (m > peak) { peak = m; }
})",
                             ioRoles());
  EXPECT_TRUE(out.ghostClean) << out.rendered;
}

TEST(Ghost, MonitorGuardingRealStateRejected) {
  const auto out = runPasses(R"(
p(buffer a, buffer b) {
  global monitor int m;
  global int real;
  if (m > 0) { real = 1; }
})",
                             ioRoles());
  EXPECT_FALSE(out.ghostClean);
}

TEST(Ghost, MonitorInAssumeRejected) {
  const auto out = runPasses(R"(
p(buffer a, buffer b) {
  global monitor int m;
  assume(m > 0);
})",
                             ioRoles());
  EXPECT_FALSE(out.ghostClean);
}

TEST(Ghost, PopIntoMonitorRejected) {
  const auto out = runPasses(R"(
p(buffer a, buffer b) {
  global monitor int m;
  global list l;
  m = l.pop_front();
})",
                             ioRoles());
  EXPECT_FALSE(out.ghostClean);
}

// ---------------------------------------------------------------------------
// Definite-assignment lint
// ---------------------------------------------------------------------------

std::size_t lintWarnings(const std::string& source) {
  lang::Ast prog = lang::parse(source);
  lang::checkOrThrow(prog, {});
  DiagnosticEngine diag;
  return checkDefiniteAssignment(prog, diag);
}

TEST(DefiniteAssignment, CleanWhenAssignedFirst) {
  EXPECT_EQ(lintWarnings(R"(
p(buffer a, buffer b) {
  local int x;
  x = 1;
  move-p(a, b, x);
})"),
            0u);
}

TEST(DefiniteAssignment, WarnsOnPlainUseBeforeAssign) {
  EXPECT_EQ(lintWarnings(R"(
p(buffer a, buffer b) {
  local int x;
  move-p(a, b, x);
})"),
            1u);
}

TEST(DefiniteAssignment, BranchAssignmentIsNotDefinite) {
  EXPECT_EQ(lintWarnings(R"(
p(buffer a, buffer b) {
  local int x;
  if (backlog-p(a) > 0) { x = 1; }
  move-p(a, b, x);
})"),
            1u);
}

TEST(DefiniteAssignment, BothBranchesAssignIsDefinite) {
  EXPECT_EQ(lintWarnings(R"(
p(buffer a, buffer b) {
  local int x;
  if (backlog-p(a) > 0) { x = 1; } else { x = 2; }
  move-p(a, b, x);
})"),
            0u);
}

TEST(DefiniteAssignment, LoopBodyAssignmentDoesNotEscape) {
  // The loop may run zero times (unresolved constant bounds), so the
  // assignment inside does not make x definite afterwards.
  EXPECT_EQ(lintWarnings(R"(
p(buffer a, buffer b) {
  local int x;
  for (i in 0..2) do { x = i; }
  move-p(a, b, x);
})"),
            1u);
}

TEST(DefiniteAssignment, InitializerCounts) {
  EXPECT_EQ(lintWarnings(R"(
p(buffer a, buffer b) {
  local int x = 3;
  move-p(a, b, x);
})"),
            0u);
}

TEST(DefiniteAssignment, HavocAndPopCount) {
  EXPECT_EQ(lintWarnings(R"(
p(buffer a, buffer b) {
  havoc int w;
  assume(w >= 0);
  global list l;
  local int h;
  h = l.pop_front();
  move-p(a, b, h + w);
})"),
            0u);
}

TEST(DefiniteAssignment, GlobalsNotTracked) {
  EXPECT_EQ(lintWarnings(R"(
p(buffer a, buffer b) {
  global int g;
  move-p(a, b, g);
})"),
            0u);
}

TEST(DefiniteAssignment, WarnsOncePerVariable) {
  EXPECT_EQ(lintWarnings(R"(
p(buffer a, buffer b) {
  local int x;
  local int y;
  y = x + x + x;
  move-p(a, b, x);
})"),
            1u);
}

TEST(DefiniteAssignment, LibraryModelsAreClean) {
  lang::CompileOptions opts;
  opts.constants = {{"N", 2}, {"RATE", 2}, {"BUCKET", 4}, {"RTO", 3},
                    {"QUANTUM", 2}};
  opts.defaultListCapacity = 2;
  for (const auto& entry : models::allModels()) {
    lang::Ast prog = lang::parse(entry.source);
    lang::checkOrThrow(prog, opts);
    DiagnosticEngine diag;
    EXPECT_EQ(checkDefiniteAssignment(prog, diag), 0u)
        << entry.name << "\n"
        << diag.renderAll();
  }
}

}  // namespace
}  // namespace buffy::sem
