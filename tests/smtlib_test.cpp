#include "backends/smtlib/smtlib_emitter.hpp"

#include <gtest/gtest.h>

#include "backends/z3/z3_backend.hpp"
#include "support/error.hpp"

namespace buffy::backends {
namespace {

class SmtLibTest : public ::testing::Test {
 protected:
  ir::TermArena arena;
};

TEST_F(SmtLibTest, DeclaresVariables) {
  const ir::TermRef x = arena.var("x", ir::Sort::Int);
  const ir::TermRef p = arena.var("p", ir::Sort::Bool);
  const std::vector<ir::TermRef> cs = {
      arena.mkAnd(p, arena.gt(x, arena.intConst(0)))};
  const std::string text = emitSmtLib(cs);
  EXPECT_NE(text.find("(declare-const x Int)"), std::string::npos) << text;
  EXPECT_NE(text.find("(declare-const p Bool)"), std::string::npos);
  EXPECT_NE(text.find("(check-sat)"), std::string::npos);
  EXPECT_NE(text.find("(set-logic QF_LIA)"), std::string::npos);
}

TEST_F(SmtLibTest, QuotesExoticSymbols) {
  const ir::TermRef v = arena.var("fq.ibs.0.t0.n", ir::Sort::Int);
  const std::vector<ir::TermRef> cs = {arena.ge(v, arena.intConst(0))};
  const std::string text = emitSmtLib(cs);
  EXPECT_NE(text.find("|fq.ibs.0.t0.n|"), std::string::npos) << text;
}

TEST_F(SmtLibTest, SharedSubtermsBecomeLetBindings) {
  const ir::TermRef x = arena.var("x", ir::Sort::Int);
  const ir::TermRef shared = arena.mul(x, x);
  const std::vector<ir::TermRef> cs = {
      arena.gt(arena.add(shared, shared), arena.intConst(0))};
  const std::string text = emitSmtLib(cs);
  EXPECT_NE(text.find("(let (($t"), std::string::npos) << text;
  // Purely syntactic sharing: no auxiliary constants are declared.
  EXPECT_EQ(text.find("(declare-const $t"), std::string::npos) << text;
}

TEST_F(SmtLibTest, DefineModeUsesDeclaredConstants) {
  const ir::TermRef x = arena.var("x", ir::Sort::Int);
  const ir::TermRef shared = arena.mul(x, x);
  const std::vector<ir::TermRef> cs = {
      arena.gt(arena.add(shared, shared), arena.intConst(0))};
  SmtLibOptions opts;
  opts.sharing = SmtLibSharing::Define;
  const std::string text = emitSmtLib(cs, opts);
  EXPECT_NE(text.find("(declare-const $t"), std::string::npos) << text;
  EXPECT_NE(text.find("(assert (= $t"), std::string::npos);
}

// Acceptance check for the shared-subterm emitter: on a deeply shared ite
// chain (each level references the previous one twice), the let-sharing
// script stays linear in the DAG while the tree expansion is exponential.
TEST_F(SmtLibTest, LetSharingStaysLinearOnSharedIteChains) {
  const ir::TermRef x = arena.var("x", ir::Sort::Int);
  ir::TermRef level = x;
  for (int i = 0; i < 18; ++i) {
    // Each step references the previous level twice: the DAG grows by one
    // node per step while the expanded tree doubles.
    level = arena.ite(arena.le(x, arena.intConst(i)),
                      arena.add(level, arena.intConst(1)),
                      arena.sub(level, arena.intConst(1)));
  }
  const std::vector<ir::TermRef> cs = {arena.ge(level, arena.intConst(0))};

  SmtLibOptions let;
  const std::string shared = emitSmtLib(cs, let);
  SmtLibOptions expand;
  expand.sharing = SmtLibSharing::Expand;
  const std::string tree = emitSmtLib(cs, expand);

  // 18 doublings: the tree text is thousands of times larger.
  EXPECT_GT(tree.size(), shared.size() * 1000) << shared.size();
  // And both scripts still agree with the native lowering's verdict.
  Z3Backend backend;
  const auto native = backend.check(cs);
  SmtLibOptions noCheck = let;
  noCheck.checkSat = false;
  EXPECT_EQ(backend.checkSmtLib(emitSmtLib(cs, noCheck)).status,
            native.status);
}

TEST_F(SmtLibTest, OptionsControlOutput) {
  SmtLibOptions opts;
  opts.checkSat = false;
  opts.logic.clear();
  opts.comment = "hello\nworld";
  const std::vector<ir::TermRef> cs = {arena.trueTerm()};
  const std::string text = emitSmtLib(cs, opts);
  EXPECT_EQ(text.find("(check-sat)"), std::string::npos);
  EXPECT_EQ(text.find("set-logic"), std::string::npos);
  EXPECT_NE(text.find("; hello"), std::string::npos);
  EXPECT_NE(text.find("; world"), std::string::npos);
}

TEST_F(SmtLibTest, GetModelEmitted) {
  SmtLibOptions opts;
  opts.getModel = true;
  const std::vector<ir::TermRef> cs = {arena.trueTerm()};
  EXPECT_NE(emitSmtLib(cs, opts).find("(get-model)"), std::string::npos);
}

TEST_F(SmtLibTest, NonBooleanRejected) {
  const std::vector<ir::TermRef> cs = {arena.intConst(3)};
  EXPECT_THROW(emitSmtLib(cs), BackendError);
}

TEST_F(SmtLibTest, NegativeConstantsWellFormed) {
  const ir::TermRef x = arena.var("x", ir::Sort::Int);
  const std::vector<ir::TermRef> cs = {arena.eq(x, arena.intConst(-5))};
  const std::string text = emitSmtLib(cs);
  EXPECT_NE(text.find("(- 5)"), std::string::npos) << text;
}

// Round-trip property: the emitted script re-parsed by Z3 yields the same
// verdict as the native lowering, and the model satisfies the terms.
class RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RoundTrip, EmitReparseAgreesWithNative) {
  ir::TermArena arena;
  Z3Backend backend;
  const int seed = GetParam();

  // A small pseudo-random constraint system.
  const ir::TermRef x = arena.var("x", ir::Sort::Int);
  const ir::TermRef y = arena.var("y", ir::Sort::Int);
  const ir::TermRef p = arena.var("p", ir::Sort::Bool);
  std::vector<ir::TermRef> cs = {
      arena.eq(arena.add(x, arena.mul(y, arena.intConst(seed % 5 + 1))),
               arena.intConst(seed)),
      arena.ite(p, arena.gt(x, arena.intConst(0)),
                arena.lt(x, arena.intConst(0))),
      arena.le(arena.mod(y, arena.intConst(3)), arena.intConst(seed % 3)),
  };
  if (seed % 2 == 0) {
    cs.push_back(arena.implies(p, arena.eq(y, arena.intConst(seed / 2))));
  }

  const auto native = backend.check(cs);
  SmtLibOptions opts;
  opts.checkSat = false;
  const auto reparsed = backend.checkSmtLib(emitSmtLib(cs, opts));
  EXPECT_EQ(native.status, reparsed.status);
  if (reparsed.status == SolveStatus::Sat) {
    for (const ir::TermRef c : cs) {
      EXPECT_EQ(ir::evalTerm(c, reparsed.model), 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip,
                         ::testing::Values(0, 1, 2, 7, 12, 33, 100));

}  // namespace
}  // namespace buffy::backends
