#include "eval/store.hpp"

#include <gtest/gtest.h>

#include "buffers/list_model.hpp"
#include "ir/term_eval.hpp"
#include "support/error.hpp"

namespace buffy::eval {
namespace {

buffers::BufferConfig cfg(const char* name) {
  buffers::BufferConfig c;
  c.name = name;
  c.capacity = 2;
  c.schema.fields = {"val"};
  return c;
}

class StoreTest : public ::testing::Test {
 protected:
  ir::TermArena arena;
  Store store{arena};
};

TEST_F(StoreTest, GlobalsPersistAndLookup) {
  store.defineGlobal("g", Value::makeScalar(arena.intConst(7)));
  ASSERT_NE(store.find("g"), nullptr);
  EXPECT_EQ(store.find("g")->scalar->value, 7);
  EXPECT_TRUE(store.hasGlobal("g"));
  EXPECT_FALSE(store.hasGlobal("h"));
}

TEST_F(StoreTest, DuplicateGlobalRejected) {
  store.defineGlobal("g", Value::makeScalar(arena.intConst(1)));
  EXPECT_THROW(store.defineGlobal("g", Value::makeScalar(arena.intConst(2))),
               AnalysisError);
}

TEST_F(StoreTest, MonitorsTracked) {
  store.defineGlobal("m", Value::makeScalar(arena.intConst(0)), true);
  EXPECT_EQ(store.monitors().count("m"), 1u);
}

TEST_F(StoreTest, LocalScoping) {
  store.pushScope();
  store.declareLocal("x", Value::makeScalar(arena.intConst(1)));
  store.pushScope();
  store.declareLocal("x", Value::makeScalar(arena.intConst(2)));
  EXPECT_EQ(store.find("x")->scalar->value, 2);  // innermost wins
  store.popScope();
  EXPECT_EQ(store.find("x")->scalar->value, 1);
  store.popScope();
  EXPECT_EQ(store.find("x"), nullptr);
}

TEST_F(StoreTest, LocalShadowsGlobal) {
  store.defineGlobal("v", Value::makeScalar(arena.intConst(10)));
  store.pushScope();
  store.declareLocal("v", Value::makeScalar(arena.intConst(20)));
  EXPECT_EQ(store.find("v")->scalar->value, 20);
  store.popScope();
  EXPECT_EQ(store.find("v")->scalar->value, 10);
}

TEST_F(StoreTest, DuplicateLocalInScopeRejected) {
  store.pushScope();
  store.declareLocal("x", Value::makeScalar(arena.intConst(1)));
  EXPECT_THROW(store.declareLocal("x", Value::makeScalar(arena.intConst(2))),
               AnalysisError);
}

TEST_F(StoreTest, LocalOutsideScopeRejected) {
  EXPECT_THROW(store.declareLocal("x", Value::makeScalar(arena.intConst(1))),
               AnalysisError);
}

TEST_F(StoreTest, PopEmptyScopeStackRejected) {
  EXPECT_THROW(store.popScope(), AnalysisError);
}

TEST_F(StoreTest, ClearLocalsKeepsGlobals) {
  store.defineGlobal("g", Value::makeScalar(arena.intConst(1)));
  store.pushScope();
  store.declareLocal("x", Value::makeScalar(arena.intConst(2)));
  store.clearLocals();
  EXPECT_EQ(store.scopeDepth(), 0u);
  EXPECT_NE(store.find("g"), nullptr);
}

TEST_F(StoreTest, BufferRegistration) {
  store.addBuffer("b", std::make_unique<buffers::ListBuffer>(cfg("b"), arena));
  EXPECT_NE(store.buffer("b"), nullptr);
  EXPECT_EQ(store.buffer("nope"), nullptr);
  EXPECT_THROW(
      store.addBuffer("b",
                      std::make_unique<buffers::ListBuffer>(cfg("b"), arena)),
      AnalysisError);
  ASSERT_EQ(store.bufferNames().size(), 1u);
}

TEST_F(StoreTest, DeepCopyClonesBuffers) {
  store.addBuffer("b", std::make_unique<buffers::ListBuffer>(cfg("b"), arena));
  Store copy = store;
  buffers::PacketBatch batch;
  batch.slots.push_back(
      {arena.trueTerm(), {{"val", arena.intConst(1)}}});
  copy.buffer("b")->accept(batch, arena.trueTerm());
  EXPECT_EQ(ir::evalTerm(copy.buffer("b")->backlogP(), {}), 1);
  EXPECT_EQ(ir::evalTerm(store.buffer("b")->backlogP(), {}), 0);
}

TEST_F(StoreTest, MergeScalarsAndArrays) {
  store.defineGlobal("x", Value::makeScalar(arena.intConst(1)));
  store.defineGlobal("a", Value::makeArray({arena.intConst(1),
                                            arena.intConst(2)}));
  Store elseStore = store;
  store.find("x")->scalar = arena.intConst(10);
  elseStore.find("a")->array[1] = arena.intConst(20);

  const ir::TermRef c = arena.var("c", ir::Sort::Bool);
  store.mergeElse(c, elseStore);
  EXPECT_EQ(ir::evalTerm(store.find("x")->scalar, {{"c", 1}}), 10);
  EXPECT_EQ(ir::evalTerm(store.find("x")->scalar, {{"c", 0}}), 1);
  EXPECT_EQ(ir::evalTerm(store.find("a")->array[1], {{"c", 0}}), 20);
  EXPECT_EQ(ir::evalTerm(store.find("a")->array[1], {{"c", 1}}), 2);
}

TEST_F(StoreTest, MergeMismatchedScopesRejected) {
  Store other = store;
  store.pushScope();
  EXPECT_THROW(store.mergeElse(arena.trueTerm(), other), AnalysisError);
}

TEST_F(StoreTest, ValueKindsEnforced) {
  Value v = Value::makeScalar(arena.intConst(1));
  EXPECT_THROW(v.asList(), AnalysisError);
}

}  // namespace
}  // namespace buffy::eval
