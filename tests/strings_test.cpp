#include "support/strings.hpp"

#include <gtest/gtest.h>

#include "support/diagnostics.hpp"
#include "support/error.hpp"

namespace buffy {
namespace {

TEST(Strings, SplitKeepsEmptyPieces) {
  const auto pieces = split("a,,b,", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "");
  EXPECT_EQ(pieces[2], "b");
  EXPECT_EQ(pieces[3], "");
}

TEST(Strings, SplitSinglePiece) {
  const auto pieces = split("hello", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "hello");
}

TEST(Strings, TrimWhitespace) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(startsWith("// comment", "//"));
  EXPECT_FALSE(startsWith("/", "//"));
  EXPECT_TRUE(startsWith("abc", ""));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(Strings, CountCodeLinesSkipsBlanksAndComments) {
  const char* source = R"(
// a comment
x = 1;

  // indented comment
y = 2;
)";
  EXPECT_EQ(countCodeLines(source), 2u);
}

TEST(Strings, CountCodeLinesEmpty) {
  EXPECT_EQ(countCodeLines(""), 0u);
  EXPECT_EQ(countCodeLines("\n\n// only\n"), 0u);
}

TEST(Diagnostics, CountsErrors) {
  DiagnosticEngine diag;
  EXPECT_FALSE(diag.hasErrors());
  diag.warning({1, 1}, "careful");
  EXPECT_FALSE(diag.hasErrors());
  diag.error({2, 3}, "broken");
  EXPECT_TRUE(diag.hasErrors());
  EXPECT_EQ(diag.errorCount(), 1u);
  EXPECT_EQ(diag.all().size(), 2u);
}

TEST(Diagnostics, RenderIncludesLocationAndSeverity) {
  DiagnosticEngine diag;
  diag.error({12, 5}, "bad thing");
  const std::string rendered = diag.renderAll();
  EXPECT_NE(rendered.find("12:5"), std::string::npos);
  EXPECT_NE(rendered.find("error"), std::string::npos);
  EXPECT_NE(rendered.find("bad thing"), std::string::npos);
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine diag;
  diag.error({}, "x");
  diag.clear();
  EXPECT_FALSE(diag.hasErrors());
  EXPECT_TRUE(diag.all().empty());
}

TEST(Errors, ErrorCarriesLocation) {
  const Error e("message", SourceLoc{3, 4});
  EXPECT_EQ(e.loc().line, 3u);
  EXPECT_NE(std::string(e.what()).find("3:4"), std::string::npos);
}

TEST(Errors, SynthLocationOmitted) {
  const Error e("message");
  EXPECT_FALSE(e.loc().known());
  EXPECT_STREQ(e.what(), "message");
}

}  // namespace
}  // namespace buffy
