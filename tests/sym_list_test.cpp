#include "eval/sym_list.hpp"

#include <algorithm>
#include <deque>

#include <gtest/gtest.h>

#include "ir/term_eval.hpp"
#include "ir/term_printer.hpp"
#include "support/error.hpp"

namespace buffy::eval {
namespace {

// With all-constant inputs, every list operation must fold to constants —
// so we can test the symbolic list against std::deque directly.
class SymListTest : public ::testing::Test {
 protected:
  ir::TermArena arena;

  std::int64_t value(ir::TermRef t) {
    const auto v = ir::constValue(t);
    EXPECT_TRUE(v.has_value()) << ir::toSExpr(t);
    return v.value_or(-999);
  }
};

TEST_F(SymListTest, StartsEmpty) {
  SymList list("l", 4, arena);
  EXPECT_EQ(value(list.lenTerm()), 0);
  EXPECT_EQ(value(list.emptyTerm()), 1);
  EXPECT_EQ(value(list.overflowedTerm()), 0);
}

TEST_F(SymListTest, PushPopFifo) {
  SymList list("l", 4, arena);
  list.pushBack(arena.intConst(10), arena.trueTerm());
  list.pushBack(arena.intConst(20), arena.trueTerm());
  EXPECT_EQ(value(list.lenTerm()), 2);
  EXPECT_EQ(value(list.popFront(arena.trueTerm())), 10);
  EXPECT_EQ(value(list.popFront(arena.trueTerm())), 20);
  EXPECT_EQ(value(list.emptyTerm()), 1);
}

TEST_F(SymListTest, PopEmptyYieldsSentinel) {
  SymList list("l", 2, arena);
  EXPECT_EQ(value(list.popFront(arena.trueTerm())), -1);
  EXPECT_EQ(value(list.lenTerm()), 0);
}

TEST_F(SymListTest, GuardedOpsAreNoOps) {
  SymList list("l", 2, arena);
  list.pushBack(arena.intConst(1), arena.falseTerm());
  EXPECT_EQ(value(list.lenTerm()), 0);
  list.pushBack(arena.intConst(1), arena.trueTerm());
  EXPECT_EQ(value(list.popFront(arena.falseTerm())), -1);
  EXPECT_EQ(value(list.lenTerm()), 1);
}

TEST_F(SymListTest, Has) {
  SymList list("l", 4, arena);
  list.pushBack(arena.intConst(7), arena.trueTerm());
  EXPECT_EQ(value(list.hasTerm(arena.intConst(7))), 1);
  EXPECT_EQ(value(list.hasTerm(arena.intConst(8))), 0);
  // Stale slots beyond len must not match.
  list.popFront(arena.trueTerm());
  EXPECT_EQ(value(list.hasTerm(arena.intConst(7))), 0);
}

TEST_F(SymListTest, OverflowSticky) {
  SymList list("l", 2, arena);
  list.pushBack(arena.intConst(1), arena.trueTerm());
  list.pushBack(arena.intConst(2), arena.trueTerm());
  EXPECT_EQ(value(list.overflowedTerm()), 0);
  list.pushBack(arena.intConst(3), arena.trueTerm());  // dropped
  EXPECT_EQ(value(list.overflowedTerm()), 1);
  EXPECT_EQ(value(list.lenTerm()), 2);
  list.popFront(arena.trueTerm());
  EXPECT_EQ(value(list.overflowedTerm()), 1);  // sticky
}

TEST_F(SymListTest, MergeSelectsBranch) {
  SymList thenList("l", 3, arena);
  SymList elseList = thenList;
  thenList.pushBack(arena.intConst(1), arena.trueTerm());
  elseList.pushBack(arena.intConst(2), arena.trueTerm());
  elseList.pushBack(arena.intConst(3), arena.trueTerm());

  const ir::TermRef c = arena.var("c", ir::Sort::Bool);
  SymList merged = thenList;
  merged.mergeElse(c, elseList);
  // Under c=true the merged list is [1]; under c=false it is [2,3].
  EXPECT_EQ(ir::evalTerm(merged.lenTerm(), {{"c", 1}}), 1);
  EXPECT_EQ(ir::evalTerm(merged.elemAt(0), {{"c", 1}}), 1);
  EXPECT_EQ(ir::evalTerm(merged.lenTerm(), {{"c", 0}}), 2);
  EXPECT_EQ(ir::evalTerm(merged.elemAt(0), {{"c", 0}}), 2);
  EXPECT_EQ(ir::evalTerm(merged.elemAt(1), {{"c", 0}}), 3);
}

TEST_F(SymListTest, MergeCapacityMismatchThrows) {
  SymList a("a", 2, arena);
  SymList b("b", 3, arena);
  EXPECT_THROW(a.mergeElse(arena.trueTerm(), b), AnalysisError);
}

TEST_F(SymListTest, ZeroCapacityRejected) {
  EXPECT_THROW(SymList("l", 0, arena), AnalysisError);
}

TEST_F(SymListTest, StateTerms) {
  SymList list("l", 2, arena);
  const auto terms = list.stateTerms();
  ASSERT_EQ(terms.size(), 3u);  // len + 2 elements
  EXPECT_EQ(terms[0].first, "len");
}

// Property test: random push/pop sequences agree with std::deque.
class SymListProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(SymListProperty, MatchesDequeReference) {
  ir::TermArena arena;
  const int capacity = 5;
  SymList list("l", capacity, arena);
  std::deque<std::int64_t> ref;
  unsigned state = GetParam();
  auto nextRand = [&state]() {
    state = state * 1664525u + 1013904223u;
    return state >> 16;
  };
  for (int step = 0; step < 200; ++step) {
    const auto v = ir::constValue(list.lenTerm());
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, static_cast<std::int64_t>(ref.size()));
    if (nextRand() % 2 == 0) {
      const std::int64_t x = static_cast<std::int64_t>(nextRand() % 100);
      list.pushBack(arena.intConst(x), arena.trueTerm());
      if (ref.size() < static_cast<std::size_t>(capacity)) ref.push_back(x);
    } else {
      const auto popped = ir::constValue(list.popFront(arena.trueTerm()));
      ASSERT_TRUE(popped.has_value());
      if (ref.empty()) {
        EXPECT_EQ(*popped, -1);
      } else {
        EXPECT_EQ(*popped, ref.front());
        ref.pop_front();
      }
    }
    // has() agrees for a probe value.
    const std::int64_t probe = static_cast<std::int64_t>(nextRand() % 100);
    const auto has = ir::constValue(list.hasTerm(arena.intConst(probe)));
    ASSERT_TRUE(has.has_value());
    const bool refHas =
        std::find(ref.begin(), ref.end(), probe) != ref.end();
    EXPECT_EQ(*has != 0, refHas);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymListProperty,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

}  // namespace
}  // namespace buffy::eval
