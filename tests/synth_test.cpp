#include "synth/synthesizer.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "support/error.hpp"

namespace buffy::synth {
namespace {

using buffy::testing::schedulerNet;

TEST(Patterns, NamesAndRules) {
  EXPECT_STREQ(patternName(Pattern::None), "none");
  EXPECT_STREQ(patternName(Pattern::ExactlyOnePerStep), "1/step");
  EXPECT_STREQ(patternName(Pattern::BurstAtStart3), "burst3@0");
  // Rules are well-formed callables.
  core::Workload w;
  w.add(patternRule(Pattern::None, "x"));
  EXPECT_EQ(w.ruleCount(), 1u);
}

TEST(Synthesizer, FindsStrictPriorityMonopolyWorkload) {
  // Query: queue 0 is served every step. The synthesizer must discover
  // that "queue 0 sends every step" guarantees it under strict priority
  // (whatever queue 1 does).
  core::AnalysisOptions opts;
  opts.horizon = 4;
  Synthesizer synth(schedulerNet(models::kStrictPriority, "sp", 2), opts);
  SynthesisOptions sopts;
  sopts.grammar = {Pattern::None, Pattern::ExactlyOnePerStep};
  const auto result =
      synth.run(core::Query::expr("sp.cdeq.0[T-1] == T"), sopts);
  EXPECT_EQ(result.candidatesChecked, 4);
  ASSERT_FALSE(result.solutions.empty());
  bool found = false;
  for (const auto& sol : result.solutions) {
    if (sol.assignment.at("sp.ibs.0") == Pattern::ExactlyOnePerStep) {
      found = true;
      EXPECT_TRUE(sol.existsSat);
      EXPECT_TRUE(sol.forallHolds);
    }
    // "queue 0 silent" can never be a solution.
    EXPECT_NE(sol.assignment.at("sp.ibs.0"), Pattern::None);
  }
  EXPECT_TRUE(found);
}

TEST(Synthesizer, FqStarvationWorkloadSynthesis) {
  // FPerf's flagship use: synthesize traffic that *guarantees* queue 1 is
  // starved (served at most once) by the buggy scheduler. The known
  // answer is the RFC 8290 pacing: queue 0 sends at "just the right rate"
  // (skipping the step where queue 1 takes its one turn), queue 1 has a
  // standing burst.
  core::AnalysisOptions opts;
  opts.horizon = 5;
  Synthesizer synth(schedulerNet(models::kFairQueueBuggy, "fq", 2), opts);
  SynthesisOptions sopts;
  sopts.grammar = {Pattern::ExactlyOnePerStep, Pattern::PacedSkipOne,
                   Pattern::BurstAtStart3};
  const auto result = synth.run(
      core::Query::expr("fq.cdeq.1[T-1] <= 1 & fq.cdeq.0[T-1] >= T-1"),
      sopts);
  ASSERT_FALSE(result.solutions.empty());
  bool known = false;
  for (const auto& sol : result.solutions) {
    if (sol.assignment.at("fq.ibs.0") == Pattern::PacedSkipOne &&
        sol.assignment.at("fq.ibs.1") == Pattern::BurstAtStart3) {
      known = true;
    }
    // Exact steady 1/step pacing does NOT starve (the bug needs the skip).
    EXPECT_FALSE(sol.assignment.at("fq.ibs.0") ==
                     Pattern::ExactlyOnePerStep &&
                 sol.assignment.at("fq.ibs.1") == Pattern::BurstAtStart3);
  }
  EXPECT_TRUE(known);
}

TEST(Synthesizer, UniversalDirectionFiltersCandidates) {
  // With requireUniversal, "unconstrained" inputs rarely guarantee
  // anything; existential-only mode accepts more candidates.
  core::AnalysisOptions opts;
  opts.horizon = 4;
  SynthesisOptions sopts;
  sopts.grammar = {Pattern::Unconstrained, Pattern::ExactlyOnePerStep};
  const core::Query query = core::Query::expr("sp.cdeq.0[T-1] == T");

  Synthesizer synth(schedulerNet(models::kStrictPriority, "sp", 2), opts);
  const auto strict = synth.run(query, sopts);

  SynthesisOptions loose = sopts;
  loose.requireUniversal = false;
  Synthesizer synth2(schedulerNet(models::kStrictPriority, "sp", 2), opts);
  const auto existential = synth2.run(query, loose);

  EXPECT_GE(existential.solutions.size(), strict.solutions.size());
}

TEST(Synthesizer, FirstOnlyStopsEarly) {
  core::AnalysisOptions opts;
  opts.horizon = 3;
  Synthesizer synth(schedulerNet(models::kStrictPriority, "sp", 2), opts);
  SynthesisOptions sopts;
  sopts.grammar = {Pattern::ExactlyOnePerStep};
  sopts.firstOnly = true;
  const auto result =
      synth.run(core::Query::expr("sp.cdeq.0[T-1] == T"), sopts);
  EXPECT_EQ(result.solutions.size(), 1u);
  EXPECT_EQ(result.candidatesChecked, 1);
}

TEST(Synthesizer, EmptyGrammarRejected) {
  core::AnalysisOptions opts;
  Synthesizer synth(schedulerNet(models::kRoundRobin, "rr", 2), opts);
  SynthesisOptions sopts;
  sopts.grammar.clear();
  EXPECT_THROW(synth.run(core::Query::always(), sopts), AnalysisError);
}

TEST(Synthesizer, FreshAndIncrementalModesAgree) {
  // The incremental engine (one encoding + session per worker, workload
  // re-bound as a delta per candidate) must produce the identical solution
  // set as the fresh-pipeline-per-candidate path.
  core::AnalysisOptions opts;
  opts.horizon = 4;
  SynthesisOptions sopts;
  sopts.grammar = {Pattern::None, Pattern::ExactlyOnePerStep,
                   Pattern::BurstAtStart2};
  const core::Query query = core::Query::expr("sp.cdeq.0[T-1] == T");

  Synthesizer synth(schedulerNet(models::kStrictPriority, "sp", 2), opts);
  sopts.incremental = false;
  const auto fresh = synth.run(query, sopts);
  sopts.incremental = true;
  const auto incremental = synth.run(query, sopts);

  EXPECT_EQ(fresh.candidatesChecked, incremental.candidatesChecked);
  ASSERT_EQ(fresh.solutions.size(), incremental.solutions.size());
  for (std::size_t i = 0; i < fresh.solutions.size(); ++i) {
    EXPECT_EQ(fresh.solutions[i].assignment,
              incremental.solutions[i].assignment);
    EXPECT_EQ(fresh.solutions[i].existsSat, incremental.solutions[i].existsSat);
    EXPECT_EQ(fresh.solutions[i].forallHolds,
              incremental.solutions[i].forallHolds);
  }
}

TEST(Synthesizer, ParallelFindsIdenticalSolutionSet) {
  // threads=4 must find the same solutions in the same (enumeration)
  // order as threads=1.
  core::AnalysisOptions opts;
  opts.horizon = 5;
  SynthesisOptions sopts;
  sopts.grammar = {Pattern::ExactlyOnePerStep, Pattern::PacedSkipOne,
                   Pattern::BurstAtStart3};
  const core::Query query = core::Query::expr(
      "fq.cdeq.1[T-1] <= 1 & fq.cdeq.0[T-1] >= T-1");

  Synthesizer synth(schedulerNet(models::kFairQueueBuggy, "fq", 2), opts);
  sopts.threads = 1;
  const auto sequential = synth.run(query, sopts);
  sopts.threads = 4;
  const auto parallel = synth.run(query, sopts);

  EXPECT_EQ(parallel.candidatesChecked, sequential.candidatesChecked);
  ASSERT_EQ(parallel.solutions.size(), sequential.solutions.size());
  for (std::size_t i = 0; i < sequential.solutions.size(); ++i) {
    EXPECT_EQ(parallel.solutions[i].assignment,
              sequential.solutions[i].assignment);
  }
}

TEST(Synthesizer, ParallelFirstOnlyIsDeterministic) {
  // firstOnly with threads=4 must return exactly the first solution of the
  // sequential enumeration order, regardless of which worker finds a
  // solution first.
  core::AnalysisOptions opts;
  opts.horizon = 4;
  SynthesisOptions sopts;
  sopts.grammar = {Pattern::None, Pattern::ExactlyOnePerStep,
                   Pattern::BurstAtStart2};
  sopts.firstOnly = true;
  const core::Query query = core::Query::expr("sp.cdeq.0[T-1] == T");

  Synthesizer synth(schedulerNet(models::kStrictPriority, "sp", 2), opts);
  sopts.threads = 1;
  const auto sequential = synth.run(query, sopts);
  ASSERT_EQ(sequential.solutions.size(), 1u);
  sopts.threads = 4;
  const auto parallel = synth.run(query, sopts);
  ASSERT_EQ(parallel.solutions.size(), 1u);
  EXPECT_EQ(parallel.solutions[0].assignment,
            sequential.solutions[0].assignment);
}

TEST(Synthesizer, ParallelFirstOnlyCancellationStress) {
  // Regression for the firstOnly cancellation races: an interrupt must
  // never land on a retired worker's destroyed engine, a worker whose
  // claim is below the eventual cutoff must never be canceled (its claim
  // is published before the cutoff re-check), and in fresh mode the
  // interrupt must reach the per-candidate engine. Delaying the earliest
  // candidates makes later workers finish (and fire noteSolution) first,
  // so the cancellation path runs on ~every rep; the first solution of
  // the enumeration order must win regardless.
  core::AnalysisOptions opts;
  opts.horizon = 4;
  const core::Query query = core::Query::expr("sp.cdeq.0[T-1] == T");
  SynthesisOptions sopts;
  sopts.grammar = {Pattern::None, Pattern::ExactlyOnePerStep,
                   Pattern::BurstAtStart2};
  sopts.firstOnly = true;

  Synthesizer sequential(schedulerNet(models::kStrictPriority, "sp", 2),
                         opts);
  const auto expected = sequential.run(query, sopts);
  ASSERT_EQ(expected.solutions.size(), 1u);

  auto plan = std::make_shared<backends::FaultPlan>();
  for (std::size_t cand = 0; cand < 3; ++cand) {
    plan->at("cand" + std::to_string(cand), 0,
             {backends::FaultAction::Kind::Delay, "", 20});
  }
  opts.faultPlan = plan;
  sopts.threads = 4;
  for (int rep = 0; rep < 8; ++rep) {
    sopts.incremental = rep % 2 == 0;
    Synthesizer synth(schedulerNet(models::kStrictPriority, "sp", 2), opts);
    const auto result = synth.run(query, sopts);
    ASSERT_EQ(result.solutions.size(), 1u)
        << "rep " << rep << ": " << result.summary();
    EXPECT_EQ(result.solutions[0].assignment,
              expected.solutions[0].assignment)
        << "rep " << rep;
  }
}

TEST(Synthesizer, CandidateDescribe) {
  Candidate c;
  c.assignment = {{"a", Pattern::None}, {"b", Pattern::BurstAtStart2}};
  const std::string text = c.describe();
  EXPECT_NE(text.find("a:none"), std::string::npos);
  EXPECT_NE(text.find("b:burst2@0"), std::string::npos);
}

}  // namespace
}  // namespace buffy::synth
