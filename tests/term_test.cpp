#include "ir/term.hpp"

#include <gtest/gtest.h>

#include "ir/term_eval.hpp"
#include "ir/term_printer.hpp"
#include "support/error.hpp"

namespace buffy::ir {
namespace {

class TermTest : public ::testing::Test {
 protected:
  TermArena arena;
};

TEST_F(TermTest, HashConsingSharesIdenticalNodes) {
  const TermRef x = arena.var("x", Sort::Int);
  const TermRef a = arena.add(x, arena.intConst(1));
  const TermRef b = arena.add(x, arena.intConst(1));
  EXPECT_EQ(a, b);
}

TEST_F(TermTest, ConstantFoldingArithmetic) {
  EXPECT_EQ(arena.add(arena.intConst(2), arena.intConst(3))->value, 5);
  EXPECT_EQ(arena.sub(arena.intConst(2), arena.intConst(3))->value, -1);
  EXPECT_EQ(arena.mul(arena.intConst(4), arena.intConst(3))->value, 12);
  EXPECT_EQ(arena.neg(arena.intConst(7))->value, -7);
}

TEST_F(TermTest, OverflowingFoldsStaySymbolic) {
  // Solver integers are mathematical: a fold whose exact value does not
  // fit in 64 bits must keep the node symbolic instead of wrapping.
  const TermRef maxT = arena.intConst(INT64_MAX);
  const TermRef minT = arena.intConst(INT64_MIN);
  EXPECT_EQ(arena.add(maxT, arena.intConst(1))->kind, TermKind::Add);
  EXPECT_EQ(arena.sub(minT, arena.intConst(1))->kind, TermKind::Sub);
  EXPECT_EQ(arena.mul(maxT, arena.intConst(2))->kind, TermKind::Mul);
  EXPECT_EQ(arena.neg(minT)->kind, TermKind::Neg);
  EXPECT_EQ(arena.div(minT, arena.intConst(-1))->kind, TermKind::Div);
  // Representable results at the boundary still fold.
  EXPECT_EQ(arena.add(maxT, arena.intConst(0)), maxT);
  EXPECT_EQ(arena.sub(maxT, arena.intConst(1))->value, INT64_MAX - 1);
  EXPECT_EQ(arena.neg(maxT)->value, -INT64_MAX);

  EXPECT_EQ(foldAdd(INT64_MAX, 1), std::nullopt);
  EXPECT_EQ(foldSub(INT64_MIN, 1), std::nullopt);
  EXPECT_EQ(foldMul(INT64_MAX, 2), std::nullopt);
  EXPECT_EQ(foldNeg(INT64_MIN), std::nullopt);
  EXPECT_EQ(foldAdd(INT64_MAX, -1), INT64_MAX - 1);
}

TEST_F(TermTest, IdentityRules) {
  const TermRef x = arena.var("x", Sort::Int);
  EXPECT_EQ(arena.add(x, arena.intConst(0)), x);
  EXPECT_EQ(arena.add(arena.intConst(0), x), x);
  EXPECT_EQ(arena.sub(x, arena.intConst(0)), x);
  EXPECT_EQ(arena.sub(x, x)->value, 0);
  EXPECT_EQ(arena.mul(x, arena.intConst(1)), x);
  EXPECT_TRUE(arena.mul(x, arena.intConst(0))->isZero());
  EXPECT_EQ(arena.div(x, arena.intConst(1)), x);
  EXPECT_TRUE(arena.mod(x, arena.intConst(1))->isZero());
}

TEST_F(TermTest, EuclideanDivMod) {
  // SMT-LIB semantics: mod result is non-negative.
  EXPECT_EQ(euclideanDiv(7, 2), 3);
  EXPECT_EQ(euclideanMod(7, 2), 1);
  EXPECT_EQ(euclideanDiv(-7, 2), -4);
  EXPECT_EQ(euclideanMod(-7, 2), 1);
  EXPECT_EQ(euclideanDiv(7, -2), -3);
  EXPECT_EQ(euclideanMod(7, -2), 1);
  EXPECT_EQ(euclideanDiv(-7, -2), 4);
  EXPECT_EQ(euclideanMod(-7, -2), 1);
  // Invariant: a == b * div(a,b) + mod(a,b).
  for (const auto [a, b] : {std::pair{13, 5}, {-13, 5}, {13, -5}, {-13, -5}}) {
    EXPECT_EQ(a, b * euclideanDiv(a, b) + euclideanMod(a, b));
  }
  // Division by zero is defined as 0.
  EXPECT_EQ(euclideanDiv(5, 0), 0);
  EXPECT_EQ(euclideanMod(5, 0), 0);
}

TEST_F(TermTest, BooleanSimplification) {
  const TermRef p = arena.var("p", Sort::Bool);
  EXPECT_EQ(arena.mkAnd(p, arena.trueTerm()), p);
  EXPECT_TRUE(arena.mkAnd(p, arena.falseTerm())->isFalse());
  EXPECT_EQ(arena.mkOr(p, arena.falseTerm()), p);
  EXPECT_TRUE(arena.mkOr(p, arena.trueTerm())->isTrue());
  EXPECT_EQ(arena.mkNot(arena.mkNot(p)), p);
  EXPECT_TRUE(arena.implies(p, p)->isTrue());
  EXPECT_EQ(arena.implies(arena.trueTerm(), p), p);
}

TEST_F(TermTest, ComparisonFolding) {
  EXPECT_TRUE(arena.lt(arena.intConst(1), arena.intConst(2))->isTrue());
  EXPECT_TRUE(arena.le(arena.intConst(2), arena.intConst(2))->isTrue());
  EXPECT_TRUE(arena.eq(arena.intConst(2), arena.intConst(3))->isFalse());
  const TermRef x = arena.var("x", Sort::Int);
  EXPECT_TRUE(arena.eq(x, x)->isTrue());
  EXPECT_TRUE(arena.le(x, x)->isTrue());
  EXPECT_TRUE(arena.lt(x, x)->isFalse());
}

TEST_F(TermTest, IteSimplification) {
  const TermRef c = arena.var("c", Sort::Bool);
  const TermRef x = arena.var("x", Sort::Int);
  const TermRef y = arena.var("y", Sort::Int);
  EXPECT_EQ(arena.ite(arena.trueTerm(), x, y), x);
  EXPECT_EQ(arena.ite(arena.falseTerm(), x, y), y);
  EXPECT_EQ(arena.ite(c, x, x), x);
  // Boolean-branch ite collapses to connectives.
  const TermRef p = arena.var("p", Sort::Bool);
  EXPECT_EQ(arena.ite(c, arena.trueTerm(), p), arena.mkOr(c, p));
  EXPECT_EQ(arena.ite(c, p, arena.falseTerm()), arena.mkAnd(c, p));
}

TEST_F(TermTest, MinMax) {
  EXPECT_EQ(arena.min(arena.intConst(3), arena.intConst(5))->value, 3);
  EXPECT_EQ(arena.max(arena.intConst(3), arena.intConst(5))->value, 5);
  const TermRef x = arena.var("x", Sort::Int);
  EXPECT_EQ(arena.min(x, x), x);
}

TEST_F(TermTest, VarSortConflictRejected) {
  arena.var("v", Sort::Int);
  EXPECT_THROW(arena.var("v", Sort::Bool), Error);
}

TEST_F(TermTest, FreshVarsDistinct) {
  const TermRef a = arena.freshVar("h", Sort::Int);
  const TermRef b = arena.freshVar("h", Sort::Int);
  EXPECT_NE(a, b);
  EXPECT_NE(a->name, b->name);
}

TEST_F(TermTest, VariablesTracked) {
  arena.var("a", Sort::Int);
  arena.var("b", Sort::Bool);
  arena.var("a", Sort::Int);  // duplicate
  EXPECT_EQ(arena.variables().size(), 2u);
}

TEST_F(TermTest, CountTrue) {
  const TermRef p = arena.var("p", Sort::Bool);
  const std::vector<TermRef> flags = {arena.trueTerm(), arena.falseTerm(), p};
  const TermRef count = arena.countTrue(flags);
  EXPECT_EQ(evalTerm(count, {{"p", 1}}), 2);
  EXPECT_EQ(evalTerm(count, {{"p", 0}}), 1);
}

TEST_F(TermTest, EqSortMismatchThrows) {
  EXPECT_THROW(arena.eq(arena.intConst(1), arena.trueTerm()), Error);
  EXPECT_THROW(
      arena.ite(arena.trueTerm(), arena.intConst(1), arena.trueTerm()), Error);
}

TEST_F(TermTest, SExprPrinting) {
  const TermRef x = arena.var("x", Sort::Int);
  const TermRef e = arena.add(x, arena.intConst(-2));
  EXPECT_EQ(toSExpr(e), "(+ x (- 2))");
}

TEST_F(TermTest, DagSizeCountsSharedOnce) {
  const TermRef x = arena.var("x", Sort::Int);
  const TermRef sum = arena.add(x, x);  // folds? no: add(x,x) is a node
  const TermRef expr = arena.mul(sum, sum);
  // nodes: x, (+ x x), (* s s) = 3
  EXPECT_EQ(dagSize(expr), 3u);
}

TEST_F(TermTest, EvalTermFullCoverage) {
  const TermRef x = arena.var("x", Sort::Int);
  const TermRef p = arena.var("p", Sort::Bool);
  const Assignment env = {{"x", 10}, {"p", 1}};
  EXPECT_EQ(evalTerm(arena.add(x, arena.intConst(5)), env), 15);
  EXPECT_EQ(evalTerm(arena.div(x, arena.intConst(3)), env), 3);
  EXPECT_EQ(evalTerm(arena.mod(x, arena.intConst(3)), env), 1);
  EXPECT_EQ(evalTerm(arena.ite(p, x, arena.intConst(0)), env), 10);
  EXPECT_EQ(evalTerm(arena.implies(p, arena.lt(x, arena.intConst(5))), env),
            0);
  // Missing variables default to 0.
  EXPECT_EQ(evalTerm(arena.add(arena.var("zz", Sort::Int), arena.intConst(1)),
                     env),
            1);
}

TEST_F(TermTest, DeepChainIsStackSafe) {
  // 100k-deep addition chain: iterative eval must not overflow the stack.
  TermRef acc = arena.var("x", Sort::Int);
  for (int i = 0; i < 100000; ++i) acc = arena.add(acc, arena.var("y", Sort::Int));
  EXPECT_EQ(evalTerm(acc, {{"x", 1}, {"y", 1}}), 100001);
}

// Property-style sweep: folding agrees with direct evaluation for a grid
// of operand values.
class FoldProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FoldProperty, FoldMatchesEval) {
  TermArena arena;
  const auto [a, b] = GetParam();
  const TermRef ta = arena.intConst(a);
  const TermRef tb = arena.intConst(b);
  EXPECT_EQ(arena.add(ta, tb)->value, a + b);
  EXPECT_EQ(arena.sub(ta, tb)->value, a - b);
  EXPECT_EQ(arena.mul(ta, tb)->value, a * b);
  EXPECT_EQ(arena.div(ta, tb)->value, euclideanDiv(a, b));
  EXPECT_EQ(arena.mod(ta, tb)->value, euclideanMod(a, b));
  EXPECT_EQ(arena.lt(ta, tb)->isTrue(), a < b);
  EXPECT_EQ(arena.le(ta, tb)->isTrue(), a <= b);
  EXPECT_EQ(arena.eq(ta, tb)->isTrue(), a == b);
  EXPECT_EQ(arena.min(ta, tb)->value, std::min(a, b));
  EXPECT_EQ(arena.max(ta, tb)->value, std::max(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FoldProperty,
    ::testing::Values(std::pair{0, 0}, std::pair{1, 0}, std::pair{0, 1},
                      std::pair{-3, 2}, std::pair{3, -2}, std::pair{-3, -2},
                      std::pair{7, 7}, std::pair{-100, 13},
                      std::pair{42, -1}, std::pair{5, 3}));

}  // namespace
}  // namespace buffy::ir
