#include "transform/transforms.hpp"

#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "lang/typecheck.hpp"
#include "models/library.hpp"
#include "support/error.hpp"

namespace buffy::transform {
namespace {

using lang::parse;
using lang::printProgram;
using lang::Ast;

Ast compiled(const std::string& source, lang::CompileOptions opts = {}) {
  Ast prog = parse(source);
  lang::checkOrThrow(prog, opts);
  return prog;
}

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

TEST(ConstFold, FoldsArithmetic) {
  Ast prog = compiled(R"(
p(buffer a, buffer b) {
  local int x;
  x = 2 + 3 * 4;
})");
  foldConstants(prog);
  const std::string printed = printProgram(prog);
  EXPECT_NE(printed.find("x = 14;"), std::string::npos) << printed;
}

TEST(ConstFold, FoldsComparisonsAndBooleans) {
  Ast prog = compiled(R"(
p(buffer a, buffer b) {
  local bool x;
  x = (1 < 2) & (3 == 3);
})");
  foldConstants(prog);
  EXPECT_NE(printProgram(prog).find("x = true;"), std::string::npos);
}

TEST(ConstFold, PrunesLiteralIf) {
  Ast prog = compiled(R"(
p(buffer a, buffer b) {
  local int x;
  if (1 < 2) { x = 1; } else { x = 2; }
  if (false) { x = 3; }
})");
  foldConstants(prog);
  const std::string printed = printProgram(prog);
  EXPECT_EQ(printed.find("if"), std::string::npos) << printed;
  EXPECT_NE(printed.find("x = 1;"), std::string::npos);
  EXPECT_EQ(printed.find("x = 3;"), std::string::npos);
}

TEST(ConstFold, EuclideanDivisionSemantics) {
  Ast prog = compiled(R"(
p(buffer a, buffer b) {
  local int x;
  x = (0 - 7) / 2;
})");
  foldConstants(prog);
  EXPECT_NE(printProgram(prog).find("x = -4;"), std::string::npos)
      << printProgram(prog);
}

TEST(ConstFold, OverflowingLiteralsStayUnfolded) {
  // 64-bit boundary: folding 9223372036854775807 + 1 would wrap (signed
  // overflow UB before the checked-arithmetic fix); the expression must
  // survive unfolded. The in-range sibling still folds.
  Ast prog = compiled(R"(
p(buffer a, buffer b) {
  local int x;
  local int y;
  x = 9223372036854775807 + 1;
  y = 9223372036854775807 - 1;
})");
  foldConstants(prog);
  const std::string printed = printProgram(prog);
  EXPECT_NE(printed.find("9223372036854775807 + 1"), std::string::npos)
      << printed;
  EXPECT_NE(printed.find("y = 9223372036854775806;"), std::string::npos)
      << printed;
}

TEST(ConstFold, FoldsMinMaxCalls) {
  Ast prog = compiled(R"(
p(buffer a, buffer b) {
  local int x;
  x = min(4, 2, 9);
})");
  foldConstants(prog);
  EXPECT_NE(printProgram(prog).find("x = 2;"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Loop unrolling
// ---------------------------------------------------------------------------

TEST(Unroll, ReplacesLoopWithIterationBlocks) {
  Ast prog = compiled(R"(
p(buffer a, buffer b) {
  global int sum;
  for (i in 0..3) do { sum = sum + i; }
})");
  unrollLoops(prog);
  const std::string printed = printProgram(prog);
  EXPECT_EQ(printed.find("for"), std::string::npos) << printed;
  // Three iteration blocks binding i = 0,1,2.
  EXPECT_NE(printed.find("local int i = 0;"), std::string::npos);
  EXPECT_NE(printed.find("local int i = 2;"), std::string::npos);
}

TEST(Unroll, EmptyRangeVanishes) {
  Ast prog = compiled(R"(
p(buffer a, buffer b) {
  global int sum;
  for (i in 2..2) do { sum = sum + 1; }
})");
  unrollLoops(prog);
  EXPECT_EQ(printProgram(prog).find("sum = (sum + 1)"), std::string::npos);
}

TEST(Unroll, NestedLoops) {
  Ast prog = compiled(R"(
p(buffer a, buffer b) {
  global int sum;
  for (i in 0..2) do {
    for (j in 0..2) do { sum = sum + 1; }
  }
})");
  unrollLoops(prog);
  const std::string printed = printProgram(prog);
  EXPECT_EQ(printed.find("for"), std::string::npos);
  // 4 copies of the increment.
  std::size_t count = 0;
  for (std::size_t pos = printed.find("sum = (sum + 1)");
       pos != std::string::npos; pos = printed.find("sum = (sum + 1)", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 4u);
}

TEST(Unroll, RejectsNonLiteralBound) {
  Ast prog = compiled(R"(
p(buffer a, buffer b) {
  local int n;
  n = backlog-p(a);
  for (i in 0..n) do { }
})");
  EXPECT_THROW(unrollLoops(prog), SemanticError);
}

TEST(Unroll, ConstantBoundViaElaboration) {
  lang::CompileOptions opts;
  opts.constants["N"] = 2;
  Ast prog = compiled(R"(
p(buffer[N] ibs, buffer ob) {
  global int s;
  for (i in 0..N) do { s = s + 1; }
})",
                          opts);
  foldConstants(prog);
  EXPECT_NO_THROW(unrollLoops(prog));
}

// ---------------------------------------------------------------------------
// Inlining
// ---------------------------------------------------------------------------

TEST(Inline, SimpleValueFunction) {
  Ast prog = compiled(R"(
p(buffer a, buffer b) {
  def int twice(int x) { return x + x; }
  global int y;
  y = twice(3);
})");
  inlineFunctions(prog);
  EXPECT_TRUE(prog.program.functions.empty());
  const std::string printed = printProgram(prog);
  EXPECT_EQ(printed.find("twice("), std::string::npos) << printed;
  EXPECT_NE(printed.find("_ret"), std::string::npos);
}

TEST(Inline, BufferParameterAliasing) {
  Ast prog = compiled(R"(
p(buffer[2] ibs, buffer ob) {
  def int load(buffer q) { return backlog-p(q); }
  global int y;
  y = load(ibs[1]);
})");
  inlineFunctions(prog);
  const std::string printed = printProgram(prog);
  EXPECT_NE(printed.find("backlog-p(ibs[1])"), std::string::npos) << printed;
}

TEST(Inline, NestedCalls) {
  Ast prog = compiled(R"(
p(buffer a, buffer b) {
  def int inc(int x) { return x + 1; }
  def int inc2(int x) { return inc(inc(x)); }
  global int y;
  y = inc2(5);
})");
  inlineFunctions(prog);
  // No call expressions remain (renamed locals may still contain "inc").
  EXPECT_EQ(printProgram(prog).find("inc("), std::string::npos)
      << printProgram(prog);
  EXPECT_EQ(printProgram(prog).find("inc2("), std::string::npos);
}

TEST(Inline, VoidFunctionStatement) {
  Ast prog = compiled(R"(
p(buffer a, buffer b) {
  def bump(buffer q, buffer r) {
    move-p(q, r, 1);
  }
  bump(a, b);
})");
  inlineFunctions(prog);
  const std::string printed = printProgram(prog);
  EXPECT_NE(printed.find("move-p(a, b, 1)"), std::string::npos) << printed;
}

TEST(Inline, CallInCondition) {
  Ast prog = compiled(R"(
p(buffer a, buffer b) {
  def int load(buffer q) { return backlog-p(q); }
  global int y;
  if (load(a) > 0) { y = 1; }
})");
  inlineFunctions(prog);
  EXPECT_EQ(printProgram(prog).find("load("), std::string::npos);
}

TEST(Inline, BodyLocalsRenamed) {
  Ast prog = compiled(R"(
p(buffer a, buffer b) {
  def int f(int x) {
    local int tmp;
    tmp = x * 2;
    return tmp;
  }
  local int tmp;
  tmp = f(1) + f(2);
})");
  EXPECT_NO_THROW(inlineFunctions(prog));
  // Re-typecheck: renamed locals must not collide with the caller's `tmp`.
  DiagnosticEngine diag;
  EXPECT_TRUE(lang::typecheck(prog, {}, diag).ok) << diag.renderAll();
}

TEST(Inline, RecursionRejected) {
  Ast prog = parse(R"(
p(buffer a, buffer b) {
  def int f(int x) { return f(x); }
  global int y;
  y = f(1);
})");
  EXPECT_THROW(inlineFunctions(prog), SemanticError);
}

TEST(Inline, MutualRecursionRejected) {
  Ast prog = parse(R"(
p(buffer a, buffer b) {
  def int f(int x) { return g(x); }
  def int g(int x) { return f(x); }
  global int y;
  y = f(1);
})");
  EXPECT_THROW(inlineFunctions(prog), SemanticError);
}

TEST(Inline, AllModelsSurviveFullPipeline) {
  lang::CompileOptions opts;
  opts.constants = {{"N", 3}, {"RATE", 2}, {"BUCKET", 4}, {"RTO", 3}, {"QUANTUM", 2}};
  opts.defaultListCapacity = 3;
  for (const auto& entry : models::allModels()) {
    Ast prog = parse(entry.source);
    lang::checkOrThrow(prog, opts);
    inlineFunctions(prog);
    foldConstants(prog);
    EXPECT_NO_THROW(unrollLoops(prog)) << entry.name;
    DiagnosticEngine diag;
    EXPECT_TRUE(lang::typecheck(prog, opts, diag).ok)
        << entry.name << "\n"
        << diag.renderAll();
  }
}

}  // namespace
}  // namespace buffy::transform
