#include "core/transition.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "ir/term_eval.hpp"
#include "support/error.hpp"

namespace buffy::core {
namespace {

using buffy::testing::schedulerNet;

std::unique_ptr<TransitionSystem> rrSystem() {
  return buildTransitionSystem(schedulerNet(models::kRoundRobin, "rr", 2,
                                            /*capacity=*/4,
                                            /*maxArrivals=*/2));
}

TEST(Transition, StateVectorShape) {
  const auto ts = rrSystem();
  // 3 buffers x (pkts, dropped) + next + cdeq[2] + 2 arrivedTotal +
  // 1 outTotal = 12.
  EXPECT_EQ(ts->state.size(), 12u);
  EXPECT_NE(ts->find("rr.next"), nullptr);
  EXPECT_NE(ts->find("rr.cdeq.0"), nullptr);
  EXPECT_NE(ts->find("rr.ibs.0.pkts"), nullptr);
  EXPECT_NE(ts->find("rr.ibs.0.arrivedTotal"), nullptr);
  EXPECT_NE(ts->find("rr.ob.outTotal"), nullptr);
  EXPECT_EQ(ts->find("nosuch"), nullptr);
}

TEST(Transition, InitialStateIsEmpty) {
  const auto ts = rrSystem();
  for (const auto& sv : ts->state) {
    ASSERT_TRUE(sv.init->isConst()) << sv.name;
    EXPECT_EQ(sv.init->value, 0) << sv.name;
  }
}

TEST(Transition, PostTermsPresent) {
  const auto ts = rrSystem();
  for (const auto& sv : ts->state) {
    ASSERT_NE(sv.post, nullptr) << sv.name;
    EXPECT_EQ(sv.post->sort, sv.sort) << sv.name;
  }
}

TEST(Transition, InputsAreDisjointFromState) {
  const auto ts = rrSystem();
  std::set<const ir::Term*> state;
  for (const auto& sv : ts->state) state.insert(sv.pre);
  EXPECT_FALSE(ts->inputs.empty());
  for (const ir::TermRef input : ts->inputs) {
    EXPECT_EQ(state.count(input), 0u) << input->name;
  }
}

// Concretely execute the relation: from the empty state with one arrival
// into queue 0, the post-state must show the packet being serviced.
TEST(Transition, RelationMatchesOneConcreteStep) {
  const auto ts = rrSystem();
  ir::Assignment env;
  for (const auto& sv : ts->state) env[sv.pre->name] = 0;  // initial state
  for (const ir::TermRef input : ts->inputs) env[input->name] = 0;
  env["in.rr.ibs.0.n"] = 1;

  // All step constraints hold under this assignment.
  for (const ir::TermRef c : ts->constraints) {
    ASSERT_EQ(ir::evalTerm(c, env), 1);
  }
  auto post = [&](const char* name) {
    return ir::evalTerm(ts->find(name)->post, env);
  };
  EXPECT_EQ(post("rr.cdeq.0"), 1);        // the packet was serviced
  EXPECT_EQ(post("rr.cdeq.1"), 0);
  EXPECT_EQ(post("rr.ibs.0.pkts"), 0);    // and left the input queue
  EXPECT_EQ(post("rr.next"), 1);          // round-robin pointer advanced
  EXPECT_EQ(post("rr.ibs.0.arrivedTotal"), 1);
  EXPECT_EQ(post("rr.ob.outTotal"), 1);   // drained from the output
  EXPECT_EQ(post("rr.ob.pkts"), 0);
}

// The relation iterated from init must agree with the bounded simulator.
TEST(Transition, IteratedRelationMatchesSimulator) {
  const auto ts = rrSystem();
  // Concrete arrivals: q0 gets 1/step, q1 gets 2 at t0.
  const int horizon = 4;
  ir::Assignment state;
  for (const auto& sv : ts->state) state[sv.pre->name] = sv.init->value;
  for (int t = 0; t < horizon; ++t) {
    ir::Assignment env = state;
    for (const ir::TermRef input : ts->inputs) env[input->name] = 0;
    env["in.rr.ibs.0.n"] = 1;
    env["in.rr.ibs.1.n"] = t == 0 ? 2 : 0;
    ir::Assignment next;
    for (const auto& sv : ts->state) {
      next[sv.pre->name] = ir::evalTerm(sv.post, env);
    }
    state = std::move(next);
  }

  AnalysisOptions opts;
  opts.horizon = horizon;
  Analysis analysis(schedulerNet(models::kRoundRobin, "rr", 2, 4, 2), opts);
  ConcreteArrivals arrivals;
  for (int t = 0; t < horizon; ++t) {
    arrivals["rr.ibs.0"].push_back({ConcretePacket{}});
  }
  arrivals["rr.ibs.1"].push_back({ConcretePacket{}, ConcretePacket{}});
  const Trace trace = analysis.simulate(arrivals);

  EXPECT_EQ(state["pre.rr.cdeq.0"], trace.at("rr.cdeq.0", horizon - 1));
  EXPECT_EQ(state["pre.rr.cdeq.1"], trace.at("rr.cdeq.1", horizon - 1));
  EXPECT_EQ(state["pre.rr.ibs.0.pkts"],
            trace.at("rr.ibs.0.backlog", horizon - 1));
  EXPECT_EQ(state["pre.rr.ibs.1.pkts"],
            trace.at("rr.ibs.1.backlog", horizon - 1));
}

TEST(Transition, GlobalConstInitRespected) {
  ProgramSpec spec;
  spec.instance = "p";
  spec.source = R"(
p(buffer a, buffer b) {
  global int g = 7;
  g = g + 1;
})";
  spec.buffers = {
      {.param = "a", .role = BufferSpec::Role::Input, .capacity = 2},
      {.param = "b", .role = BufferSpec::Role::Output, .capacity = 2},
  };
  Network net;
  net.add(spec);
  const auto ts = buildTransitionSystem(net);
  const auto* g = ts->find("p.g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->init->value, 7);
}

TEST(Transition, NonConstantGlobalInitRejected) {
  ProgramSpec spec;
  spec.instance = "p";
  spec.source = R"(
p(buffer a, buffer b) {
  global int g = backlog-p(a);
})";
  spec.buffers = {
      {.param = "a", .role = BufferSpec::Role::Input, .capacity = 2},
      {.param = "b", .role = BufferSpec::Role::Output, .capacity = 2},
  };
  Network net;
  net.add(spec);
  EXPECT_THROW(buildTransitionSystem(net), AnalysisError);
}

TEST(Transition, ContractsRejected) {
  Network net = schedulerNet(models::kRoundRobin, "rr", 2);
  net.useContract("rr", Contract{});
  EXPECT_THROW(buildTransitionSystem(net), AnalysisError);
}

TEST(Transition, ListStateCaptured) {
  // The FQ scheduler's nq/oq pointer lists become state variables.
  const auto ts = buildTransitionSystem(
      schedulerNet(models::kFairQueueBuggy, "fq", 2));
  EXPECT_NE(ts->find("fq.nq.len"), nullptr);
  EXPECT_NE(ts->find("fq.nq.elem0"), nullptr);
  EXPECT_NE(ts->find("fq.nq.overflowed"), nullptr);
  EXPECT_NE(ts->find("fq.oq.len"), nullptr);
  EXPECT_EQ(ts->find("fq.nq.overflowed")->sort, ir::Sort::Bool);
}

TEST(Transition, WorkloadRulesBecomeConstraints) {
  TransitionOptions opts;
  opts.stepWorkload.add(Workload::perStepCount("rr.ibs.0", 1, 1));
  const auto ts = buildTransitionSystem(
      schedulerNet(models::kRoundRobin, "rr", 2), opts);
  // With the rule, an assignment with 0 arrivals violates some constraint.
  ir::Assignment env;
  env["in.rr.ibs.0.n"] = 0;
  bool violated = false;
  for (const ir::TermRef c : ts->constraints) {
    if (ir::evalTerm(c, env) == 0) violated = true;
  }
  EXPECT_TRUE(violated);
}

}  // namespace
}  // namespace buffy::core
