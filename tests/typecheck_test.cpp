#include "lang/typecheck.hpp"

#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "models/library.hpp"
#include "support/error.hpp"

namespace buffy::lang {
namespace {

TypecheckResult checkSource(const std::string& source,
                            CompileOptions opts = {}) {
  Ast ast = parse(source);
  elaborate(ast, opts);
  DiagnosticEngine diag;
  TypecheckResult result = typecheck(ast, opts, diag);
  if (!result.ok) {
    // surface the diagnostics through gtest on failure paths
    ADD_FAILURE() << diag.renderAll();
  }
  return result;
}

std::string firstError(const std::string& source, CompileOptions opts = {}) {
  Ast ast = parse(source);
  elaborate(ast, opts);
  DiagnosticEngine diag;
  typecheck(ast, opts, diag);
  for (const auto& d : diag.all()) {
    if (d.severity == Severity::Error) return d.message;
  }
  return "";
}

TEST(Typecheck, AllLibraryModelsCheck) {
  for (const auto& entry : models::allModels()) {
    Ast ast = parse(entry.source);
    CompileOptions opts;
    opts.constants["N"] = 3;
    opts.constants["RATE"] = 2;
    opts.constants["BUCKET"] = 4;
    opts.constants["RTO"] = 3;
    opts.constants["QUANTUM"] = 2;
    opts.defaultListCapacity = 3;
    EXPECT_NO_THROW(checkOrThrow(ast, opts)) << entry.name;
  }
}

TEST(Typecheck, MonitorsCollected) {
  const auto result = checkSource(R"(
p(buffer a, buffer b) {
  global monitor int m;
  global int g;
  m = 1;
})");
  EXPECT_EQ(result.monitors.size(), 1u);
  EXPECT_TRUE(result.monitors.count("m"));
  EXPECT_EQ(result.globals.size(), 2u);
}

TEST(Typecheck, ElaborateSubstitutesConstants) {
  Ast ast = parse("p(buffer[N] ibs, buffer ob) { local int x; x = N; }");
  CompileOptions opts;
  opts.constants["N"] = 5;
  elaborate(ast, opts);
  EXPECT_EQ(ast.program.params[0].type.size, 5);
  DiagnosticEngine diag;
  EXPECT_TRUE(typecheck(ast, opts, diag).ok) << diag.renderAll();
}

TEST(Typecheck, ElaborateRespectsShadowing) {
  // The loop variable N shadows the constant N inside the loop.
  Ast ast = parse(R"(
p(buffer a, buffer b) {
  local int x;
  for (N in 0..2) do { x = N; }
  x = N;
})");
  CompileOptions opts;
  opts.constants["N"] = 7;
  elaborate(ast, opts);
  DiagnosticEngine diag;
  EXPECT_TRUE(typecheck(ast, opts, diag).ok) << diag.renderAll();
}

TEST(Typecheck, ElaborateRejectsMissingBinding) {
  Ast ast = parse("p(buffer[N] ibs, buffer ob) {}");
  EXPECT_THROW(elaborate(ast, CompileOptions{}), SemanticError);
}

TEST(Typecheck, ElaborateRejectsNonPositiveSize) {
  Ast ast = parse("p(buffer[N] ibs, buffer ob) {}");
  CompileOptions opts;
  opts.constants["N"] = 0;
  EXPECT_THROW(elaborate(ast, opts), SemanticError);
}

TEST(Typecheck, UndeclaredVariable) {
  EXPECT_NE(firstError("p(buffer a, buffer b) { x = 1; }").find("undeclared"),
            std::string::npos);
}

TEST(Typecheck, TypeMismatchInAssignment) {
  EXPECT_NE(firstError(R"(
p(buffer a, buffer b) {
  local int x;
  x = true;
})").find("assigning bool"),
            std::string::npos);
}

TEST(Typecheck, ConditionMustBeBool) {
  EXPECT_NE(firstError(R"(
p(buffer a, buffer b) {
  if (1) { }
})").find("must be bool"),
            std::string::npos);
}

TEST(Typecheck, ArithmeticOnBoolRejected) {
  EXPECT_FALSE(firstError(R"(
p(buffer a, buffer b) {
  local bool x;
  local int y;
  y = x + 1;
})").empty());
}

TEST(Typecheck, Redeclaration) {
  EXPECT_NE(firstError(R"(
p(buffer a, buffer b) {
  local int x;
  local int x;
})").find("redeclaration"),
            std::string::npos);
}

TEST(Typecheck, ShadowingInInnerScopeAllowed) {
  checkSource(R"(
p(buffer a, buffer b) {
  local int x;
  if (x > 0) {
    local int x;
    x = 2;
  }
})");
}

TEST(Typecheck, MoveOnFilteredBufferRejected) {
  EXPECT_NE(firstError(R"(
p(buffer a, buffer b) {
  move-p(a |> val == 1, b, 1);
})").find("filtered"),
            std::string::npos);
}

TEST(Typecheck, BacklogOfNonBufferRejected) {
  EXPECT_NE(firstError(R"(
p(buffer a, buffer b) {
  local int x;
  x = backlog-p(x);
})").find("buffer"),
            std::string::npos);
}

TEST(Typecheck, ListOperationsTyped) {
  const auto result = checkSource(R"(
p(buffer a, buffer b) {
  global list l;
  local int x;
  local bool e;
  l.push_back(3);
  x = l.pop_front();
  e = l.empty();
  e = l.has(x);
  x = l.len();
})");
  EXPECT_TRUE(result.ok);
}

TEST(Typecheck, PopIntoBoolRejected) {
  EXPECT_FALSE(firstError(R"(
p(buffer a, buffer b) {
  global list l;
  local bool x;
  x = l.pop_front();
})").empty());
}

TEST(Typecheck, HavocRules) {
  checkSource(R"(
p(buffer a, buffer b) {
  havoc int w;
  assume(w >= 0);
})");
  EXPECT_FALSE(firstError(R"(
p(buffer a, buffer b) {
  havoc int w = 3;
})").empty());
  EXPECT_FALSE(firstError(R"(
p(buffer a, buffer b) {
  havoc list w;
})").empty());
}

TEST(Typecheck, FunctionReturnDiscipline) {
  // Missing trailing return.
  EXPECT_NE(firstError(R"(
p(buffer a, buffer b) {
  def int f() { local int x; x = 1; }
})").find("return"),
            std::string::npos);
  // Early (second) return.
  EXPECT_NE(firstError(R"(
p(buffer a, buffer b) {
  def int f(int x) {
    if (x > 0) { return 1; }
    return 0;
  }
})").find("one return"),
            std::string::npos);
}

TEST(Typecheck, FunctionCallArity) {
  EXPECT_NE(firstError(R"(
p(buffer a, buffer b) {
  def int f(int x) { return x; }
  local int y;
  y = f(1, 2);
})").find("expects 1"),
            std::string::npos);
}

TEST(Typecheck, UnknownFunction) {
  EXPECT_NE(firstError(R"(
p(buffer a, buffer b) {
  local int y;
  y = nosuch(1);
})").find("unknown function"),
            std::string::npos);
}

TEST(Typecheck, MinMaxBuiltins) {
  checkSource(R"(
p(buffer a, buffer b) {
  local int x;
  x = min(1, 2, 3);
  x = max(x, 0);
})");
  EXPECT_FALSE(firstError(R"(
p(buffer a, buffer b) {
  local int x;
  x = min(1);
})").empty());
}

TEST(Typecheck, MonitorMustBeScalarOrArray) {
  EXPECT_FALSE(firstError(R"(
p(buffer a, buffer b) {
  global monitor list m;
})").empty());
}

TEST(Typecheck, DefaultListCapacityApplied) {
  Ast ast = parse("p(buffer a, buffer b) { global list l; }");
  CompileOptions opts;
  opts.defaultListCapacity = 5;
  elaborate(ast, opts);
  DiagnosticEngine diag;
  const auto result = typecheck(ast, opts, diag);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.globals.at("l").size, 5);
}

TEST(Typecheck, CheckOrThrowThrowsWithDiagnostics) {
  Ast ast = parse("p(buffer a, buffer b) { x = 1; }");
  try {
    checkOrThrow(ast, CompileOptions{});
    FAIL() << "expected SemanticError";
  } catch (const SemanticError& e) {
    EXPECT_NE(std::string(e.what()).find("undeclared"), std::string::npos);
  }
}

}  // namespace
}  // namespace buffy::lang
