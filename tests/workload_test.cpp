#include "core/workload.hpp"

#include <gtest/gtest.h>

#include "ir/term_eval.hpp"
#include "support/error.hpp"

namespace buffy::core {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() {
    // Two input buffers over 3 steps with named count variables.
    for (const char* buf : {"q0", "q1"}) {
      auto& steps = vars_[buf];
      for (int t = 0; t < 3; ++t) {
        ArrivalVars av;
        av.count =
            arena_.var(std::string(buf) + ".n" + std::to_string(t),
                       ir::Sort::Int);
        av.slots.resize(2);
        for (int i = 0; i < 2; ++i) {
          av.slots[static_cast<std::size_t>(i)]["val"] = arena_.var(
              std::string(buf) + ".p" + std::to_string(t) + "_" +
                  std::to_string(i),
              ir::Sort::Int);
        }
        steps.push_back(std::move(av));
      }
    }
  }

  /// Applies the workload and evaluates the conjunction under `env`.
  bool satisfied(const Workload& w, const ir::Assignment& env) {
    const ArrivalView view(&vars_, 3);
    std::vector<ir::TermRef> cs;
    w.apply(view, arena_, cs);
    for (const ir::TermRef c : cs) {
      if (ir::evalTerm(c, env) == 0) return false;
    }
    return true;
  }

  ir::TermArena arena_;
  std::map<std::string, std::vector<ArrivalVars>> vars_;
};

TEST_F(WorkloadTest, PerStepCount) {
  Workload w;
  w.add(Workload::perStepCount("q0", 1, 2));
  EXPECT_TRUE(satisfied(
      w, {{"q0.n0", 1}, {"q0.n1", 2}, {"q0.n2", 1}}));
  EXPECT_FALSE(satisfied(w, {{"q0.n0", 0}, {"q0.n1", 1}, {"q0.n2", 1}}));
  EXPECT_FALSE(satisfied(w, {{"q0.n0", 3}, {"q0.n1", 1}, {"q0.n2", 1}}));
}

TEST_F(WorkloadTest, CountAtStep) {
  Workload w;
  w.add(Workload::countAtStep("q1", 1, 2, 2));
  EXPECT_TRUE(satisfied(w, {{"q1.n1", 2}}));
  EXPECT_FALSE(satisfied(w, {{"q1.n1", 1}}));
}

TEST_F(WorkloadTest, TotalCount) {
  Workload w;
  w.add(Workload::totalCount("q0", 2, 4));
  EXPECT_TRUE(satisfied(w, {{"q0.n0", 1}, {"q0.n1", 1}, {"q0.n2", 1}}));
  EXPECT_FALSE(satisfied(w, {{"q0.n0", 0}, {"q0.n1", 0}, {"q0.n2", 1}}));
  EXPECT_FALSE(satisfied(w, {{"q0.n0", 2}, {"q0.n1", 2}, {"q0.n2", 2}}));
}

TEST_F(WorkloadTest, FieldRange) {
  Workload w;
  w.add(Workload::fieldRange("q0", "val", 0, 5));
  ir::Assignment env;
  for (int t = 0; t < 3; ++t) {
    for (int i = 0; i < 2; ++i) {
      env["q0.p" + std::to_string(t) + "_" + std::to_string(i)] = 3;
    }
  }
  EXPECT_TRUE(satisfied(w, env));
  env["q0.p1_0"] = 9;
  EXPECT_FALSE(satisfied(w, env));
}

TEST_F(WorkloadTest, AggregatePerStep) {
  Workload w;
  w.add(Workload::aggregatePerStepAtMost(2));
  EXPECT_TRUE(satisfied(w, {{"q0.n0", 1},
                            {"q1.n0", 1},
                            {"q0.n1", 0},
                            {"q1.n1", 2}}));
  EXPECT_FALSE(satisfied(w, {{"q0.n0", 2}, {"q1.n0", 1}}));
}

TEST_F(WorkloadTest, RulesCompose) {
  Workload w;
  w.add(Workload::perStepCount("q0", 0, 1))
      .add(Workload::totalCount("q0", 2, 3));
  EXPECT_EQ(w.ruleCount(), 2u);
  EXPECT_TRUE(satisfied(w, {{"q0.n0", 1}, {"q0.n1", 1}, {"q0.n2", 0}}));
  EXPECT_FALSE(satisfied(w, {{"q0.n0", 1}, {"q0.n1", 0}, {"q0.n2", 0}}));
}

TEST_F(WorkloadTest, UnknownBufferRejected) {
  const ArrivalView view(&vars_, 3);
  EXPECT_THROW(view.count("nope", 0), AnalysisError);
  EXPECT_THROW(view.count("q0", 5), AnalysisError);
  EXPECT_THROW(view.field("q0", 0, 0, "nofield"), AnalysisError);
}

TEST_F(WorkloadTest, ViewAccessors) {
  const ArrivalView view(&vars_, 3);
  EXPECT_EQ(view.horizon(), 3);
  EXPECT_EQ(view.buffers().size(), 2u);
  EXPECT_TRUE(view.hasBuffer("q0"));
  EXPECT_FALSE(view.hasBuffer("zz"));
  EXPECT_EQ(view.slotCount("q0", 0), 2);
  EXPECT_NE(view.field("q0", 1, 1, "val"), nullptr);
}

}  // namespace
}  // namespace buffy::core
