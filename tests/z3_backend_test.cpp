#include "backends/z3/z3_backend.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace buffy::backends {
namespace {

class Z3Test : public ::testing::Test {
 protected:
  ir::TermArena arena;
  Z3Backend backend;
};

TEST_F(Z3Test, TrivialSat) {
  const std::vector<ir::TermRef> cs = {arena.trueTerm()};
  EXPECT_EQ(backend.check(cs).status, SolveStatus::Sat);
}

TEST_F(Z3Test, TrivialUnsat) {
  const ir::TermRef x = arena.var("x", ir::Sort::Int);
  const std::vector<ir::TermRef> cs = {
      arena.lt(x, arena.intConst(0)), arena.gt(x, arena.intConst(0))};
  EXPECT_EQ(backend.check(cs).status, SolveStatus::Unsat);
}

TEST_F(Z3Test, ModelExtraction) {
  const ir::TermRef x = arena.var("x", ir::Sort::Int);
  const ir::TermRef p = arena.var("p", ir::Sort::Bool);
  const std::vector<ir::TermRef> cs = {
      arena.eq(x, arena.intConst(42)), p};
  const auto result = backend.check(cs);
  ASSERT_EQ(result.status, SolveStatus::Sat);
  EXPECT_EQ(result.model.at("x"), 42);
  EXPECT_EQ(result.model.at("p"), 1);
  EXPECT_GE(result.seconds, 0.0);
}

TEST_F(Z3Test, ModelSatisfiesConstraintsViaTermEval) {
  const ir::TermRef x = arena.var("x", ir::Sort::Int);
  const ir::TermRef y = arena.var("y", ir::Sort::Int);
  const std::vector<ir::TermRef> cs = {
      arena.eq(arena.add(x, y), arena.intConst(10)),
      arena.lt(x, y),
      arena.ge(x, arena.intConst(0))};
  const auto result = backend.check(cs);
  ASSERT_EQ(result.status, SolveStatus::Sat);
  for (const ir::TermRef c : cs) {
    EXPECT_EQ(ir::evalTerm(c, result.model), 1);
  }
}

TEST_F(Z3Test, DivisionSemanticsMatchIr) {
  // Z3's div/mod on the lowered terms must agree with our Euclidean fold.
  const ir::TermRef x = arena.var("x", ir::Sort::Int);
  for (const std::int64_t a : {7, -7}) {
    for (const std::int64_t b : {2, -2}) {
      const ir::TermRef q =
          arena.div(arena.var("a" + std::to_string(a) + std::to_string(b),
                              ir::Sort::Int),
                    arena.intConst(b));
      (void)q;
      const std::vector<ir::TermRef> cs = {
          arena.eq(x, arena.div(arena.intConst(a), arena.intConst(b)))};
      const auto result = backend.check(cs);
      ASSERT_EQ(result.status, SolveStatus::Sat);
      EXPECT_EQ(result.model.at("x"), ir::euclideanDiv(a, b))
          << a << " div " << b;
    }
  }
}

TEST_F(Z3Test, DivisionByZeroGuardedToZero) {
  const ir::TermRef x = arena.var("x", ir::Sort::Int);
  const ir::TermRef z = arena.var("z", ir::Sort::Int);
  const std::vector<ir::TermRef> cs = {
      arena.eq(z, arena.intConst(0)),
      arena.eq(x, arena.div(arena.intConst(5), z))};
  const auto result = backend.check(cs);
  ASSERT_EQ(result.status, SolveStatus::Sat);
  EXPECT_EQ(result.model.at("x"), 0);
}

TEST_F(Z3Test, IteLowering) {
  const ir::TermRef p = arena.var("p", ir::Sort::Bool);
  const ir::TermRef x = arena.var("x", ir::Sort::Int);
  const std::vector<ir::TermRef> cs = {
      arena.mkNot(p),
      arena.eq(x, arena.ite(p, arena.intConst(1), arena.intConst(2)))};
  const auto result = backend.check(cs);
  ASSERT_EQ(result.status, SolveStatus::Sat);
  EXPECT_EQ(result.model.at("x"), 2);
}

TEST_F(Z3Test, NonBooleanConstraintRejected) {
  const std::vector<ir::TermRef> cs = {arena.intConst(1)};
  EXPECT_THROW(backend.check(cs), BackendError);
}

TEST_F(Z3Test, SmtLibParseAndSolve) {
  const auto result = backend.checkSmtLib(
      "(declare-const a Int)(assert (> a 5))(assert (< a 7))");
  EXPECT_EQ(result.status, SolveStatus::Sat);
  EXPECT_EQ(result.model.at("a"), 6);
}

TEST_F(Z3Test, SmtLibParseErrorThrows) {
  EXPECT_THROW(backend.checkSmtLib("(assert (nonsense"), BackendError);
}

TEST_F(Z3Test, SessionBasePersistsAndExtrasRetract) {
  const ir::TermRef x = arena.var("x", ir::Sort::Int);
  const std::vector<ir::TermRef> base = {arena.ge(x, arena.intConst(0))};
  const auto session = backend.openSession(base);

  // base ∧ x<0 is unsat...
  const std::vector<ir::TermRef> neg = {arena.lt(x, arena.intConst(0))};
  EXPECT_EQ(session->check(neg).status, SolveStatus::Unsat);
  // ...and retracted: base ∧ x==7 is sat again on the same session.
  const std::vector<ir::TermRef> eq7 = {arena.eq(x, arena.intConst(7))};
  const auto sat = session->check(eq7);
  ASSERT_EQ(sat.status, SolveStatus::Sat);
  EXPECT_EQ(sat.model.at("x"), 7);
  EXPECT_EQ(session->queryCount(), 2u);
  // The lowering memo persisted across the queries.
  EXPECT_GT(session->loweredTermCount(), 0u);
}

TEST_F(Z3Test, SessionAssertBaseAccumulates) {
  const ir::TermRef x = arena.var("x", ir::Sort::Int);
  const auto session = backend.openSession();
  const std::vector<ir::TermRef> ge0 = {arena.ge(x, arena.intConst(0))};
  session->assertBase(ge0);
  EXPECT_EQ(session->check({}).status, SolveStatus::Sat);
  const std::vector<ir::TermRef> lt0 = {arena.lt(x, arena.intConst(0))};
  session->assertBase(lt0);
  EXPECT_EQ(session->check({}).status, SolveStatus::Unsat);
}

TEST_F(Z3Test, SessionMatchesOneShotOnQuerySequence) {
  // Differential: 8 queries through one session == 8 one-shot solves.
  const ir::TermRef x = arena.var("x", ir::Sort::Int);
  const ir::TermRef y = arena.var("y", ir::Sort::Int);
  const std::vector<ir::TermRef> base = {
      arena.ge(x, arena.intConst(0)), arena.le(x, arena.intConst(10)),
      arena.eq(y, arena.add(x, arena.intConst(1)))};
  const auto session = backend.openSession(base);
  for (int k = 0; k < 8; ++k) {
    const std::vector<ir::TermRef> extra = {
        arena.eq(arena.mod(x, arena.intConst(3)), arena.intConst(k % 3)),
        arena.ge(y, arena.intConst(k))};
    std::vector<ir::TermRef> oneShot = base;
    oneShot.insert(oneShot.end(), extra.begin(), extra.end());
    const auto viaSession = session->check(extra);
    const auto viaFresh = backend.check(oneShot);
    EXPECT_EQ(viaSession.status, viaFresh.status) << "query " << k;
    if (viaSession.status == SolveStatus::Sat) {
      // Models may differ; both must satisfy the constraints.
      for (const ir::TermRef c : oneShot) {
        EXPECT_EQ(ir::evalTerm(c, viaSession.model), 1) << "query " << k;
        EXPECT_EQ(ir::evalTerm(c, viaFresh.model), 1) << "query " << k;
      }
    }
  }
}

TEST_F(Z3Test, ModelOverflowRecordedNotDropped) {
  // A model value that does not fit int64 must be reported, not silently
  // skipped (it would otherwise surface as a stale/absent trace entry).
  const auto result = backend.checkSmtLib(
      "(declare-const a Int)(assert (= a 36893488147419103232))");  // 2^65
  ASSERT_EQ(result.status, SolveStatus::Sat);
  EXPECT_EQ(result.model.count("a"), 0u);
  ASSERT_EQ(result.overflowVars.size(), 1u);
  EXPECT_EQ(result.overflowVars[0], "a");
}

TEST_F(Z3Test, LargeDagLowersStackSafely) {
  ir::TermRef acc = arena.var("v", ir::Sort::Int);
  for (int i = 0; i < 50000; ++i) acc = arena.add(acc, arena.intConst(1));
  const std::vector<ir::TermRef> cs = {arena.eq(acc, arena.intConst(50000))};
  const auto result = backend.check(cs);
  ASSERT_EQ(result.status, SolveStatus::Sat);
  EXPECT_EQ(result.model.at("v"), 0);
}

// --- Resilience layer (DESIGN.md §8) --------------------------------

TEST_F(Z3Test, BudgetReportsRlimitConsumption) {
  const ir::TermRef x = arena.var("x", ir::Sort::Int);
  const std::vector<ir::TermRef> cs = {arena.eq(x, arena.intConst(7))};
  SolveBudget budget;
  budget.rlimit = 100000000;
  const auto result = backend.check(cs, budget);
  ASSERT_EQ(result.status, SolveStatus::Sat);
  EXPECT_GT(result.rlimitUsed, 0u);
}

TEST_F(Z3Test, TinyRlimitYieldsUnknownNotCrash) {
  // A deliberately hard problem under a starvation-level rlimit: the
  // solver must give up cleanly (Unknown), never abort. Deterministic,
  // unlike a wall-clock timeout.
  std::string smt = "(declare-const a Int)(declare-const b Int)"
                    "(declare-const c Int)"
                    "(assert (and (> a 1) (> b 1) (> c 1)"
                    " (= (* a a a) (+ (* b b b) (* c c c)))))";
  SolveBudget budget;
  budget.rlimit = 1000;
  const auto result = backend.checkSmtLib(smt, budget);
  EXPECT_EQ(result.status, SolveStatus::Unknown);
  EXPECT_FALSE(result.canceled);
  EXPECT_FALSE(result.reason.empty());
}

TEST_F(Z3Test, RandomSeedIsAccepted) {
  const ir::TermRef x = arena.var("x", ir::Sort::Int);
  const std::vector<ir::TermRef> cs = {arena.gt(x, arena.intConst(0))};
  SolveBudget budget;
  budget.randomSeed = 17;
  EXPECT_EQ(backend.check(cs, budget).status, SolveStatus::Sat);
}

TEST_F(Z3Test, InterruptIsPermanentAndCanceledResultsSayWhy) {
  const std::vector<ir::TermRef> cs = {arena.trueTerm()};
  EXPECT_EQ(backend.check(cs).status, SolveStatus::Sat);
  backend.interrupt();
  EXPECT_TRUE(backend.interrupted());
  const auto result = backend.check(cs);
  EXPECT_EQ(result.status, SolveStatus::Unknown);
  EXPECT_TRUE(result.canceled);
  // Still cancelled on the next query, and on sessions.
  EXPECT_TRUE(backend.check(cs).canceled);
  auto session = backend.openSession();
  EXPECT_TRUE(session->check(cs).canceled);
}

TEST_F(Z3Test, SessionBudgetOverridePerQuery) {
  const ir::TermRef x = arena.var("x", ir::Sort::Int);
  const std::vector<ir::TermRef> cs = {arena.gt(x, arena.intConst(3))};
  SolveBudget tight;
  tight.rlimit = 100000000;
  auto session = backend.openSession({}, tight);
  const auto r1 = session->check(cs);
  ASSERT_EQ(r1.status, SolveStatus::Sat);
  SolveBudget seeded = tight;
  seeded.randomSeed = 99;
  EXPECT_EQ(session->check(cs, seeded).status, SolveStatus::Sat);
}

TEST_F(Z3Test, FaultPlanForcesUnknownAtScopedOrdinal) {
  auto plan = std::make_shared<FaultPlan>();
  plan->forceUnknown("", 1, "injected");
  backend.setFaultPlan(plan);
  const std::vector<ir::TermRef> cs = {arena.trueTerm()};
  EXPECT_EQ(backend.check(cs).status, SolveStatus::Sat);  // ordinal 0
  const auto faulted = backend.check(cs);                 // ordinal 1
  EXPECT_EQ(faulted.status, SolveStatus::Unknown);
  EXPECT_EQ(faulted.reason, "injected");
  EXPECT_FALSE(faulted.canceled);
  EXPECT_EQ(backend.check(cs).status, SolveStatus::Sat);  // ordinal 2
}

TEST_F(Z3Test, FaultPlanThrowAndScopes) {
  auto plan = std::make_shared<FaultPlan>();
  plan->at("s1", 0, {FaultAction::Kind::Throw, "boom", 0});
  backend.setFaultPlan(plan);
  const std::vector<ir::TermRef> cs = {arena.trueTerm()};
  EXPECT_EQ(backend.check(cs).status, SolveStatus::Sat);  // default scope
  backend.setFaultScope("s1");
  EXPECT_THROW(backend.check(cs), BackendError);
  backend.setFaultScope("");
  EXPECT_EQ(backend.check(cs).status, SolveStatus::Sat);
}

TEST_F(Z3Test, CorruptWitnessTagPropagates) {
  auto plan = std::make_shared<FaultPlan>();
  plan->at("", 0, {FaultAction::Kind::CorruptWitness, "", 0});
  backend.setFaultPlan(plan);
  const ir::TermRef x = arena.var("x", ir::Sort::Int);
  const std::vector<ir::TermRef> cs = {arena.eq(x, arena.intConst(5))};
  const auto result = backend.check(cs);
  ASSERT_EQ(result.status, SolveStatus::Sat);
  EXPECT_TRUE(result.corruptWitness);
  EXPECT_EQ(result.model.at("x"), 5);  // the model itself is untouched
}

}  // namespace
}  // namespace buffy::backends
