// buffy — command-line driver for the Buffy framework.
//
//   buffy check    -T 6 --input ibs:6:3 --output ob \
//                  -D N=2 --workload fq.ibs.0:0:1 \
//                  --query "fq.cdeq.0[T-1] >= T-1" examples/models/fq_buggy.bfy
//   buffy verify   ... --query "..." model.bfy
//   buffy simulate -T 4 --arrive fq.ibs.0=1,0,1,1 model.bfy
//   buffy emit-smt2  ... --query "..." model.bfy
//   buffy emit-dafny -T 4 --input ibs model.bfy
//   buffy prove    --query "rr.cdeq.0[0] >= 0" model.bfy   (unbounded, CHC)
//   buffy synth    -T 4 ... --query "..." model.bfy  (workload synthesis)
//   buffy print    model.bfy            (parse + pretty-print)
//   buffy lint     model.bfy            (well-formedness + lint warnings)
//
// print and lint accept multiple model files; --jobs N compiles them in
// parallel (one CompilationUnit per file, each with its own AST arena).
// Output and diagnostics are emitted in input order whatever the job
// count, so `--jobs 4` is byte-identical to `--jobs 1`.
//
// Options:
//   -T N                  time horizon (default 4)
//   -D name=value         compile-time constant (repeatable)
//   --instance NAME       instance prefix (default: program name)
//   --input P[:cap[:max]] input buffer parameter (repeatable)
//   --output P[:cap]      output buffer parameter (repeatable)
//   --internal P[:cap]    internal buffer parameter (repeatable)
//   --model list|counter  buffer model precision (default list)
//   --workload B:lo:hi    per-step arrival-count bound for buffer B
//   --workload B@t:lo:hi  arrival-count bound at one step
//   --query EXPR          query over monitor series
//   --unroll              run the explicit loop unroller as well
//   --havoc-init          quantify over the initial queue contents
//   --backend NAME        back-end from the registry (DESIGN.md §11):
//                         z3 (default for check/verify), smtlib,
//                         interp (default for simulate), dafny (emit-only)
//   --stage-timings       report per-stage pipeline wall time/node counts
//   --race                check/verify: race a solver portfolio (retry
//                         ladder, seed variants, smtlib one-shot, CHC) —
//                         first sound verdict wins, losers are interrupted
//   --sweep LO:HI         check/verify: answer every --query at every
//                         horizon in [LO, HI] (repeat --query to batch)
//   --shards N            worker shards for --sweep (default 1, max 1024);
//                         each shard reuses one engine/session per horizon
//   --threads N           worker threads for --race (0 = one per member)
//                         and synth (default 1); max 1024
//   --jobs N              print/lint: compile the given model files over N
//                         worker threads (default 1, max 1024);
//                         diagnostics stay in input order
//   --isolate             race/sweep: run each member/horizon job in a
//                         crash-isolated `buffy --worker` subprocess with
//                         supervision — hung workers are killed at a
//                         deadline, crashed ones restarted, failed jobs
//                         retried with escalating budgets, and the whole
//                         mechanism degrades to the in-process path when
//                         workers cannot run (DESIGN.md §13)
//   --retries N           --isolate/--connect: worker attempts after the
//                         first (default 2, max 1024)
//   --connect H:P[,H:P..] race/sweep: ship jobs to `buffy --serve` hosts
//                         over TCP first (DESIGN.md §15). The degradation
//                         ladder becomes remote host (with redispatch to
//                         surviving hosts) -> local `--worker` subprocess
//                         -> in-process; implies --isolate's local tier
//   --heartbeat-ms N      --connect: ping period while a remote job is in
//                         flight (default 250; 4 silent periods = dead)
//   --first-only          synth: stop at the first solution
//   --no-prescreen        synth: disable concrete-interpreter prescreening
//   --timeout MS          solver timeout (default 120000)
//   --rlimit N            Z3 resource limit per query (deterministic)
//   --max-memory MB       solver memory cap
//   --no-retry            disable the Unknown retry/escalation ladder
//   --no-replay           disable the witness-replay cross-check
//   --no-opt              disable the encoding optimizer (DESIGN.md §9)
//   --no-cache            disable the verdict cache (DESIGN.md §14); the
//                         in-memory tier is otherwise always on
//   --cache-dir DIR       persist cache records under DIR (shared across
//                         runs and processes; must already exist and be
//                         writable — validated before any work starts)
//   --cache-max-mb N      on-disk cache cap in MiB (1..1048576, needs
//                         --cache-dir); oldest records are evicted first
//   --cache-verify        re-validate witness-bearing cache hits by
//                         replaying the cached trace before trusting them
//   --full-trace          render every series (incl. packet fields)
//   --format table|csv|json  trace/result output format
//   --json                shorthand for --format json
//
// Resource governor (DESIGN.md §10; 0 disables a cap):
//   --max-depth N         statement/expression nesting depth
//   --max-expr-terms N    operator applications per statement
//   --max-ast-nodes N     AST nodes per parse
//   --max-unroll-stmts N  statements the loop unroller may emit
//   --max-inline-stmts N  statements the inliner may emit
//   --max-exec-stmts N    statements symbolically executed per time step
//   --max-term-nodes N    interned IR term nodes per encoding
//   --no-budget           disable every cap (pre-governor behavior)
//
// Exit codes (DESIGN.md §8, §10):
//   0  conclusive, nothing wrong (SATISFIABLE / UNSATISFIABLE / VERIFIED /
//      PROVED, or the command simply succeeded)
//   1  conclusive, property problem found (VIOLATED / WITNESS-MISMATCH)
//   2  usage or input error (bad flags, parse/type/analysis errors)
//   3  inconclusive: solver returned UNKNOWN after the retry ladder
//      (timeout / rlimit / memory budget exhausted)
//   4  internal error (solver crash, unexpected exception)
//   5  compile budget exceeded (unroll/inline bomb, term explosion, ...)
//   130  interrupted (SIGINT/SIGTERM): in-flight solves were cancelled and
//        a partial report with "status": "interrupted" was emitted
//
// Hidden modes/seams:
//   buffy --worker        serve serialized analysis jobs on stdin/stdout
//                         (spawned by --isolate's supervisor; not for
//                         interactive use)
//   buffy --serve --listen ADDR:PORT
//                         accept TCP connections and run the worker loop
//                         over each socket (the --connect counterpart;
//                         DESIGN.md §15). Prints "serving on addr:port"
//                         once listening; SIGINT/SIGTERM shuts down
//   --inject-fault [scope@]nth:kind[:param]
//                         deterministic fault injection; solver kinds
//                         unknown|throw|delay|corrupt-witness hit the nth
//                         solver check in scope, worker kinds crash|hang|
//                         garble|partial hit the job whose retry attempt
//                         ordinal is nth in scope, network kinds refuse|
//                         disconnect|stall|dup hit the remote attempt
//                         whose ordinal is nth in scope (DESIGN.md §8,
//                         §13, §15)
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <set>
#include <fstream>
#include <sstream>

#include "cache/verdict_cache.hpp"

#include "backends/chc/chc_backend.hpp"
#include "backends/dafny/dafny_emitter.hpp"
#include "backends/registry.hpp"
#include "core/analysis.hpp"
#include "core/portfolio.hpp"
#include "core/sweep.hpp"
#include "core/workload.hpp"
#include "lang/printer.hpp"
#include "procs/net.hpp"
#include "procs/remote.hpp"
#include "procs/shutdown.hpp"
#include "procs/supervisor.hpp"
#include "procs/worker.hpp"
#include "synth/synthesizer.hpp"
#include "pipeline/driver.hpp"
#include "support/budget.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

using namespace buffy;

namespace {

struct CliError : Error {
  using Error::Error;
};

// Exit codes, see file header.
constexpr int kExitOk = 0;
constexpr int kExitViolation = 1;
constexpr int kExitUsage = 2;
constexpr int kExitUnknown = 3;
constexpr int kExitInternal = 4;
constexpr int kExitBudget = 5;
/// 128 + SIGINT, the shell convention for an interrupted job.
constexpr int kExitInterrupted = 130;

int exitCodeFor(core::Verdict verdict) {
  switch (verdict) {
    case core::Verdict::Satisfiable:
    case core::Verdict::Unsatisfiable:
    case core::Verdict::Verified:
      return kExitOk;
    case core::Verdict::Violated:
    case core::Verdict::WitnessMismatch:
      return kExitViolation;
    case core::Verdict::Unknown:
      return kExitUnknown;
  }
  return kExitInternal;
}

struct Options {
  std::string command;
  std::string file;
  /// Every model file in argument order (print/lint accept several; the
  /// other commands take exactly one — `file` is always files.front()).
  std::vector<std::string> files;
  /// --jobs: parallel compile workers for multi-file print/lint.
  std::size_t jobs = 1;
  int horizon = 4;
  std::map<std::string, std::int64_t> constants;
  std::string instance;
  std::vector<core::BufferSpec> buffers;
  buffers::ModelKind model = buffers::ModelKind::List;
  std::vector<std::string> workloads;
  std::map<std::string, std::vector<int>> arrivals;  // buffer -> counts
  std::string query;
  /// Every --query in order (--sweep batches them; other commands take
  /// exactly one).
  std::vector<std::string> queries;
  /// --race: portfolio racing for check/verify.
  bool race = false;
  /// --sweep LO:HI horizon range.
  std::optional<std::pair<int, int>> sweep;
  /// --shards for the sweep's JobPool.
  std::size_t shards = 1;
  /// --threads for --race (0 = one per member) and synth.
  int threads = 0;
  /// --isolate: run race members / sweep horizons in supervised
  /// `buffy --worker` subprocesses (DESIGN.md §13).
  bool isolate = false;
  /// --retries: worker attempts after the first (--isolate/--connect).
  unsigned retries = 2;
  bool retriesSet = false;
  /// --connect: remote `buffy --serve` endpoints tried before the local
  /// subprocess tier (DESIGN.md §15). Non-empty implies the isolate path.
  std::vector<procs::HostPort> connect;
  /// --heartbeat-ms: remote ping period while a job is in flight.
  int heartbeatMs = 250;
  bool heartbeatSet = false;
  /// synth: --first-only / --no-prescreen.
  bool firstOnly = false;
  bool noPrescreen = false;
  bool unroll = false;
  bool fullTrace = false;
  bool havocInit = false;
  /// Back-end registry name (--backend); empty picks the command default
  /// (z3 for check/verify, interp for simulate).
  std::string backend;
  /// Report per-stage pipeline accounting (--stage-timings).
  bool stageTimings = false;
  std::string format = "table";  // table|csv|json
  unsigned timeoutMs = 120000;
  std::optional<unsigned> rlimit;
  std::optional<unsigned> maxMemoryMb;
  bool noRetry = false;
  bool noReplay = false;
  bool noOpt = false;
  /// Verdict cache (DESIGN.md §14): --no-cache disables both tiers,
  /// --cache-dir adds the persistent disk tier (validated at parse time),
  /// --cache-max-mb caps it, --cache-verify replays cached witnesses
  /// before trusting a hit.
  bool noCache = false;
  std::string cacheDir;
  std::uint64_t cacheMaxMb = 0;
  bool cacheVerify = false;
  /// Hidden test seam (--inject-fault nth:kind[:param]): deterministic
  /// fault injection so the resilience exit paths are testable end-to-end.
  std::vector<std::string> injectFaults;
  /// Resource governor (--max-* flags); defaults are generous enough for
  /// every legitimate model, tight enough to stop compile bombs.
  CompileBudget budget;
};

void usage() {
  std::puts(
      "usage: buffy "
      "<check|verify|prove|synth|simulate|emit-smt2|emit-dafny|print|lint> "
      "[options] model.bfy\nsee tools/buffy_cli.cpp header for the option "
      "list");
}

/// Strict bounded parser for count-shaped flags (--shards, --threads,
/// --retries): rejects non-numeric text, negatives, trailing junk, and
/// absurd values with a usage error naming the flag and its range.
/// (std::stoull silently wrapped "-1" into eighteen quintillion shards.)
std::uint64_t parseCount(const char* flag, const std::string& text,
                         std::uint64_t lo, std::uint64_t hi) {
  const auto reject = [&]() -> CliError {
    return CliError(std::string(flag) + " expects an integer in [" +
                    std::to_string(lo) + ", " + std::to_string(hi) +
                    "], got '" + text + "'");
  };
  if (text.empty() || text[0] == '-' || text[0] == '+') throw reject();
  std::uint64_t value = 0;
  try {
    std::size_t used = 0;
    value = std::stoull(text, &used);
    if (used != text.size()) throw reject();
  } catch (const CliError&) {
    throw;
  } catch (const std::exception&) {
    throw reject();
  }
  if (value < lo || value > hi) throw reject();
  return value;
}

core::BufferSpec parseBufferArg(const std::string& arg,
                                core::BufferSpec::Role role) {
  const auto pieces = split(arg, ':');
  core::BufferSpec spec;
  spec.param = pieces.at(0);
  spec.role = role;
  if (pieces.size() > 1) spec.capacity = std::stoi(pieces[1]);
  if (pieces.size() > 2) spec.maxArrivalsPerStep = std::stoi(pieces[2]);
  if (pieces.size() > 3) throw CliError("bad buffer spec: " + arg);
  return spec;
}

Options parseArgs(int argc, char** argv) {
  Options opts;
  if (argc < 2) throw CliError("missing command");
  opts.command = argv[1];
  const std::set<std::string> known = {"check",      "verify", "simulate",
                                       "emit-smt2",  "prove",  "emit-dafny",
                                       "print",      "lint",   "synth"};
  if (known.count(opts.command) == 0) {
    throw CliError("unknown command '" + opts.command + "'");
  }
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw CliError("missing value after " + arg);
      return argv[++i];
    };
    if (arg == "-T") {
      opts.horizon = std::stoi(next());
    } else if (arg == "-D") {
      const auto kv = split(next(), '=');
      if (kv.size() != 2) throw CliError("-D expects name=value");
      opts.constants[kv[0]] = std::stoll(kv[1]);
    } else if (arg == "--instance") {
      opts.instance = next();
    } else if (arg == "--input") {
      opts.buffers.push_back(
          parseBufferArg(next(), core::BufferSpec::Role::Input));
    } else if (arg == "--output") {
      opts.buffers.push_back(
          parseBufferArg(next(), core::BufferSpec::Role::Output));
    } else if (arg == "--internal") {
      opts.buffers.push_back(
          parseBufferArg(next(), core::BufferSpec::Role::Internal));
    } else if (arg == "--model") {
      const std::string value = next();
      if (value == "list") {
        opts.model = buffers::ModelKind::List;
      } else if (value == "counter") {
        opts.model = buffers::ModelKind::Counter;
      } else {
        throw CliError("--model expects list|counter");
      }
    } else if (arg == "--workload") {
      opts.workloads.push_back(next());
    } else if (arg == "--arrive") {
      const auto kv = split(next(), '=');
      if (kv.size() != 2) throw CliError("--arrive expects buf=n0,n1,...");
      std::vector<int> counts;
      for (const auto& n : split(kv[1], ',')) counts.push_back(std::stoi(n));
      opts.arrivals[kv[0]] = std::move(counts);
    } else if (arg == "--query") {
      opts.queries.push_back(next());
    } else if (arg == "--race") {
      opts.race = true;
    } else if (arg == "--sweep") {
      const auto range = split(next(), ':');
      if (range.size() != 2) throw CliError("--sweep expects LO:HI");
      opts.sweep = {std::stoi(range[0]), std::stoi(range[1])};
    } else if (arg == "--shards") {
      opts.shards = static_cast<std::size_t>(
          parseCount("--shards", next(), 1, 1024));
    } else if (arg == "--threads") {
      // 0 is documented auto (one thread per member for --race).
      opts.threads =
          static_cast<int>(parseCount("--threads", next(), 0, 1024));
    } else if (arg == "--jobs") {
      opts.jobs =
          static_cast<std::size_t>(parseCount("--jobs", next(), 1, 1024));
    } else if (arg == "--isolate") {
      opts.isolate = true;
    } else if (arg == "--retries") {
      opts.retries =
          static_cast<unsigned>(parseCount("--retries", next(), 0, 1024));
      opts.retriesSet = true;
    } else if (arg == "--connect") {
      // Validated here, before any compile/solve work: a malformed
      // endpoint is a usage error (exit 2), not a run that silently
      // degrades to the local tier.
      std::string error;
      opts.connect = procs::parseHostPortList(next(), &error);
      if (opts.connect.empty()) {
        throw CliError("--connect: " + error);
      }
    } else if (arg == "--heartbeat-ms") {
      opts.heartbeatMs = static_cast<int>(
          parseCount("--heartbeat-ms", next(), 1, 600000));
      opts.heartbeatSet = true;
    } else if (arg == "--listen" || arg == "--serve") {
      // --serve is dispatched in main() before normal parsing, like
      // --worker; reaching here means it was not the first argument.
      throw CliError(arg + " is the server mode: buffy --serve --listen "
                     "ADDR:PORT (no command or model file)");
    } else if (arg == "--first-only") {
      opts.firstOnly = true;
    } else if (arg == "--no-prescreen") {
      opts.noPrescreen = true;
    } else if (arg == "--unroll") {
      opts.unroll = true;
    } else if (arg == "--havoc-init") {
      opts.havocInit = true;
    } else if (arg == "--backend") {
      opts.backend = next();
    } else if (arg == "--stage-timings") {
      opts.stageTimings = true;
    } else if (arg == "--json") {
      opts.format = "json";
    } else if (arg == "--format") {
      opts.format = next();
      if (opts.format != "table" && opts.format != "csv" &&
          opts.format != "json") {
        throw CliError("--format expects table|csv|json");
      }
    } else if (arg == "--full-trace") {
      opts.fullTrace = true;
    } else if (arg == "--timeout") {
      opts.timeoutMs = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--rlimit") {
      opts.rlimit = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--max-memory") {
      opts.maxMemoryMb = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--no-retry") {
      opts.noRetry = true;
    } else if (arg == "--no-replay") {
      opts.noReplay = true;
    } else if (arg == "--no-opt") {
      opts.noOpt = true;
    } else if (arg == "--no-cache") {
      opts.noCache = true;
    } else if (arg == "--cache-dir") {
      // Validated here, before any compile/solve work: a typo'd or
      // read-only directory is a usage error (exit 2), not a silent
      // cold-path run that throws results away.
      opts.cacheDir = next();
      struct stat st {};
      if (::stat(opts.cacheDir.c_str(), &st) != 0 ||
          !S_ISDIR(st.st_mode)) {
        throw CliError("--cache-dir: not an existing directory: " +
                       opts.cacheDir);
      }
      if (::access(opts.cacheDir.c_str(), W_OK | X_OK) != 0) {
        throw CliError("--cache-dir: directory is not writable: " +
                       opts.cacheDir);
      }
    } else if (arg == "--cache-max-mb") {
      opts.cacheMaxMb = parseCount("--cache-max-mb", next(), 1, 1048576);
    } else if (arg == "--cache-verify") {
      opts.cacheVerify = true;
    } else if (arg == "--inject-fault") {
      opts.injectFaults.push_back(next());
    } else if (arg == "--max-depth") {
      opts.budget.maxNestingDepth = std::stoull(next());
    } else if (arg == "--max-expr-terms") {
      opts.budget.maxExprTerms = std::stoull(next());
    } else if (arg == "--max-ast-nodes") {
      opts.budget.maxAstNodes = std::stoull(next());
    } else if (arg == "--max-unroll-stmts") {
      opts.budget.maxUnrolledStmts = std::stoull(next());
    } else if (arg == "--max-inline-stmts") {
      opts.budget.maxInlinedStmts = std::stoull(next());
    } else if (arg == "--max-exec-stmts") {
      opts.budget.maxExecStmts = std::stoull(next());
    } else if (arg == "--max-term-nodes") {
      opts.budget.maxTermNodes = std::stoull(next());
    } else if (arg == "--no-budget") {
      opts.budget = CompileBudget::unlimited();
    } else if (arg == "-h" || arg == "--help") {
      usage();
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-') {
      throw CliError("unknown option " + arg);
    } else {
      opts.files.push_back(arg);
    }
  }
  if (opts.files.empty()) throw CliError("missing model file");
  opts.file = opts.files.front();
  if (opts.files.size() > 1 && opts.command != "print" &&
      opts.command != "lint") {
    throw CliError("multiple model files need print or lint");
  }
  if (!opts.queries.empty()) opts.query = opts.queries.front();
  if (opts.queries.size() > 1 && !opts.sweep) {
    throw CliError("multiple --query flags need --sweep");
  }
  if (opts.race && opts.sweep) {
    throw CliError("--race and --sweep are mutually exclusive");
  }
  if (opts.race && opts.command != "check" && opts.command != "verify") {
    throw CliError("--race applies to check/verify only");
  }
  if (opts.sweep && opts.command != "check" && opts.command != "verify") {
    throw CliError("--sweep applies to check/verify only");
  }
  if (opts.shards > 1 && !opts.sweep) {
    throw CliError("--shards needs --sweep");
  }
  if (opts.isolate && !opts.race && !opts.sweep) {
    throw CliError("--isolate needs --race or --sweep");
  }
  if (!opts.connect.empty() && !opts.race && !opts.sweep) {
    throw CliError("--connect needs --race or --sweep");
  }
  if (opts.retriesSet && !opts.isolate && opts.connect.empty()) {
    throw CliError("--retries needs --isolate or --connect");
  }
  if (opts.heartbeatSet && opts.connect.empty()) {
    throw CliError("--heartbeat-ms needs --connect");
  }
  if (opts.noCache && (!opts.cacheDir.empty() || opts.cacheMaxMb != 0 ||
                       opts.cacheVerify)) {
    throw CliError("--no-cache conflicts with the other --cache-* flags");
  }
  if (opts.cacheMaxMb != 0 && opts.cacheDir.empty()) {
    throw CliError("--cache-max-mb needs --cache-dir");
  }
  return opts;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw CliError("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Builds the workload for one horizon through the shared spec parser
/// (core::workloadFromSpecs) — the same function the `buffy --worker`
/// loop runs, so both sides of an --isolate boundary build byte-identical
/// assumptions from the same --workload strings.
core::Workload buildWorkloadAt(const Options& opts, int horizon) {
  return core::workloadFromSpecs(opts.workloads, horizon);
}

core::Workload buildWorkload(const Options& opts) {
  return buildWorkloadAt(opts, opts.horizon);
}

void printTrace(const Options& opts, const core::Trace& trace) {
  if (opts.format == "csv") {
    std::fputs(trace.toCsv().c_str(), stdout);
  } else if (opts.format == "json") {
    std::fputs(trace.toJson().c_str(), stdout);
    std::fputs("\n", stdout);
  } else {
    std::fputs(trace.render(opts.fullTrace).c_str(), stdout);
  }
}

/// --inject-fault [scope@]nth:kind[:param]. Solver kinds unknown|throw|
/// delay|corrupt-witness (param: reason text, or delay in ms) hit the nth
/// solver check in scope. Worker kinds crash|hang|garble|partial are
/// interpreted by the `buffy --worker` loop instead, keyed on the job's
/// retry attempt ordinal: "race:ladder@0:crash" crashes the worker that
/// takes the ladder member's first attempt; "sweep:h3@0:hang" hangs
/// horizon 3's first attempt until the supervisor's deadline kill. Faults
/// land in the empty scope — the one plain Analysis queries run in —
/// unless a scope@ prefix targets a named scope (portfolio members run
/// under "race:<member>", so "race:ladder@0:delay:50" delays the ladder's
/// first solver call).
backends::FaultPlanPtr buildFaultPlan(const Options& opts) {
  if (opts.injectFaults.empty()) return nullptr;
  auto plan = std::make_shared<backends::FaultPlan>();
  for (const auto& full : opts.injectFaults) {
    std::string scope;
    std::string spec = full;
    const auto scoped = split(full, '@');
    if (scoped.size() == 2) {
      scope = scoped[0];
      spec = scoped[1];
    } else if (scoped.size() > 2) {
      throw CliError("bad --inject-fault spec: " + full);
    }
    const auto pieces = split(spec, ':');
    if (pieces.size() < 2 || pieces.size() > 3) {
      throw CliError("bad --inject-fault spec: " + spec);
    }
    const auto nth = static_cast<std::size_t>(std::stoul(pieces[0]));
    backends::FaultAction action;
    if (pieces[1] == "unknown") {
      action.kind = backends::FaultAction::Kind::ForceUnknown;
      action.reason = pieces.size() > 2 ? pieces[2] : "injected timeout";
    } else if (pieces[1] == "throw") {
      action.kind = backends::FaultAction::Kind::Throw;
      if (pieces.size() > 2) action.reason = pieces[2];
    } else if (pieces[1] == "delay") {
      action.kind = backends::FaultAction::Kind::Delay;
      action.delayMs = pieces.size() > 2
                           ? static_cast<unsigned>(std::stoul(pieces[2]))
                           : 10;
    } else if (pieces[1] == "corrupt-witness") {
      action.kind = backends::FaultAction::Kind::CorruptWitness;
    } else if (pieces[1] == "crash") {
      action.kind = backends::FaultAction::Kind::CrashBeforeReply;
    } else if (pieces[1] == "hang") {
      action.kind = backends::FaultAction::Kind::Hang;
    } else if (pieces[1] == "garble") {
      action.kind = backends::FaultAction::Kind::GarbledFrame;
    } else if (pieces[1] == "partial") {
      action.kind = backends::FaultAction::Kind::PartialWrite;
    } else if (pieces[1] == "refuse") {
      action.kind = backends::FaultAction::Kind::ConnRefused;
    } else if (pieces[1] == "disconnect") {
      action.kind = backends::FaultAction::Kind::DisconnectMidFrame;
    } else if (pieces[1] == "stall") {
      action.kind = backends::FaultAction::Kind::StallSocket;
    } else if (pieces[1] == "dup") {
      action.kind = backends::FaultAction::Kind::DuplicateReply;
    } else {
      throw CliError("bad --inject-fault kind: " + pieces[1]);
    }
    plan->at(scope, nth, action);
  }
  return plan;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Renders the supervisor's cumulative accounting as one JSON object —
/// the ops counters --isolate promises (spawns/reaps for the zero-orphan
/// check, restarts, retries, kills, timeouts, degradations).
std::string procsJson(const procs::ProcsStats& s,
                      const procs::RemoteStats* remote = nullptr) {
  std::string json = "{\"jobs\":" + std::to_string(s.jobs);
  json += ",\"workersSpawned\":" + std::to_string(s.workersSpawned);
  json += ",\"workersReaped\":" + std::to_string(s.workersReaped);
  json += ",\"restarts\":" + std::to_string(s.restarts);
  json += ",\"retries\":" + std::to_string(s.retries);
  json += ",\"kills\":" + std::to_string(s.kills);
  json += ",\"timeouts\":" + std::to_string(s.timeouts);
  json += ",\"protocolErrors\":" + std::to_string(s.protocolErrors);
  json += ",\"degradedJobs\":" + std::to_string(s.degradedJobs);
  json += ",\"degraded\":";
  json += s.degraded ? "true" : "false";
  if (remote != nullptr) {
    // Per-tier accounting for the remote -> local -> in-process ladder
    // (DESIGN.md §15): job flow from the supervisor's side, connection
    // churn from the host pool's.
    json += ",\"remote\":{\"hosts\":" + std::to_string(remote->hosts);
    json += ",\"hostsDead\":" + std::to_string(remote->hostsDead);
    json += ",\"jobs\":" + std::to_string(s.remoteJobs);
    json += ",\"answered\":" + std::to_string(s.remoteAnswered);
    json += ",\"redispatches\":" + std::to_string(s.redispatches);
    json += ",\"degradedToLocal\":" + std::to_string(s.remoteDegraded);
    json += ",\"connects\":" + std::to_string(remote->connects);
    json += ",\"reconnects\":" + std::to_string(remote->reconnects);
    json += ",\"helloRejects\":" + std::to_string(remote->helloRejects);
    json += ",\"refusals\":" + std::to_string(remote->refusals);
    json += ",\"disconnects\":" + std::to_string(remote->disconnects);
    json += ",\"stalls\":" + std::to_string(remote->stalls);
    json += ",\"garbled\":" + std::to_string(remote->garbled);
    json +=
        ",\"duplicatesDropped\":" + std::to_string(remote->duplicatesDropped);
    json += "}";
  }
  json += "}";
  return json;
}

/// One human-readable supervision line for the text report (the
/// --stage-timings table's process-level sibling).
void printProcsStats(const procs::ProcsStats& s,
                     const procs::RemoteStats* remote = nullptr) {
  std::printf("  procs: %llu job(s), %llu worker(s) spawned/%llu reaped, "
              "%llu restart(s), %llu retrie(s), %llu kill(s), "
              "%llu degraded%s\n",
              static_cast<unsigned long long>(s.jobs),
              static_cast<unsigned long long>(s.workersSpawned),
              static_cast<unsigned long long>(s.workersReaped),
              static_cast<unsigned long long>(s.restarts),
              static_cast<unsigned long long>(s.retries),
              static_cast<unsigned long long>(s.kills),
              static_cast<unsigned long long>(s.degradedJobs),
              s.degraded ? " [supervisor degraded]" : "");
  if (remote != nullptr) {
    std::printf("  remote: %llu/%llu host(s) dead, %llu/%llu job(s) "
                "answered, %llu redispatch(es), %llu reconnect(s), "
                "%llu degraded to local\n",
                static_cast<unsigned long long>(remote->hostsDead),
                static_cast<unsigned long long>(remote->hosts),
                static_cast<unsigned long long>(s.remoteAnswered),
                static_cast<unsigned long long>(s.remoteJobs),
                static_cast<unsigned long long>(s.redispatches),
                static_cast<unsigned long long>(remote->reconnects),
                static_cast<unsigned long long>(s.remoteDegraded));
  }
}

/// Renders the verdict cache's cumulative counters as one JSON object —
/// the accounting the cache promises (DESIGN.md §14): hits/misses/stores
/// across every query the run issued, evictions from either tier,
/// validation failures (corrupt or stale records that fell back cold),
/// and the cache's directly attributed CPU cost (solve-path key
/// derivation/lookups/encoding, and the write-behind thread's I/O).
std::string cacheJson(const cache::CacheStats& s) {
  char cpu[96];
  std::snprintf(cpu, sizeof cpu,
                ",\"clientCpuSeconds\":%.6f,\"writerCpuSeconds\":%.6f",
                s.clientSeconds, s.writerSeconds);
  std::string json = "{\"hits\":" + std::to_string(s.hits);
  json += ",\"misses\":" + std::to_string(s.misses);
  json += ",\"stores\":" + std::to_string(s.stores);
  json += ",\"evictions\":" + std::to_string(s.evictions);
  json += ",\"validationFailures\":" + std::to_string(s.validationFailures);
  json += cpu;
  json += "}";
  return json;
}

/// One human-readable cache line for the text report (gated like the
/// procs line: --stage-timings, or something actually happened).
void printCacheStats(const cache::CacheStats& s) {
  std::printf("  cache: %llu hit(s), %llu miss(es), %llu store(s), "
              "%llu eviction(s), %llu validation failure(s)\n",
              static_cast<unsigned long long>(s.hits),
              static_cast<unsigned long long>(s.misses),
              static_cast<unsigned long long>(s.stores),
              static_cast<unsigned long long>(s.evictions),
              static_cast<unsigned long long>(s.validationFailures));
}

/// Renders a check/verify result and returns the process exit code. The
/// json format carries the full resilience story (verdict, exit code,
/// attempt log, trace) in one machine-readable object; with --race the
/// "race" block logs every portfolio member and the winner, and with
/// --isolate the "procs" block logs the supervision counters. A run cut
/// short by SIGINT/SIGTERM reports "status":"interrupted" (the caller
/// then exits 130 regardless of the verdict's own code).
int reportResult(const Options& opts, const core::AnalysisResult& result,
                 const core::PortfolioResult* race = nullptr,
                 const procs::ProcsStats* stats = nullptr,
                 const cache::VerdictCache* cache = nullptr,
                 const procs::RemoteStats* remote = nullptr) {
  const int code = exitCodeFor(result.verdict);
  if (opts.format == "json") {
    std::string json = "{\"verdict\":\"";
    json += core::verdictName(result.verdict);
    json += "\",\"exitCode\":" + std::to_string(code);
    if (procs::shutdownRequested()) {
      json += ",\"status\":\"interrupted\"";
    }
    char secs[32];
    std::snprintf(secs, sizeof secs, "%.6f", result.solveSeconds);
    json += ",\"solveSeconds\":";
    json += secs;
    json += ",\"canceled\":";
    json += result.canceled ? "true" : "false";
    json += ",\"witnessChecked\":";
    json += result.witnessChecked ? "true" : "false";
    json += ",\"cached\":";
    json += result.cached ? "true" : "false";
    if (!result.cacheKey.empty()) {
      json += ",\"cacheKey\":\"" + jsonEscape(result.cacheKey) + "\"";
    }
    if (!result.detail.empty()) {
      json += ",\"detail\":\"" + jsonEscape(result.detail) + "\"";
    }
    json += ",\"attempts\":[";
    for (std::size_t i = 0; i < result.attempts.size(); ++i) {
      const auto& a = result.attempts[i];
      if (i > 0) json += ",";
      json += "{\"stage\":\"" + jsonEscape(a.stage) + "\",\"outcome\":\"" +
              jsonEscape(a.outcome) + "\"";
      if (!a.reason.empty()) {
        json += ",\"reason\":\"" + jsonEscape(a.reason) + "\"";
      }
      std::snprintf(secs, sizeof secs, "%.6f", a.seconds);
      json += ",\"seconds\":";
      json += secs;
      json += ",\"rlimitUsed\":" + std::to_string(a.rlimitUsed);
      if (a.seed) json += ",\"seed\":" + std::to_string(*a.seed);
      if (a.timeoutMs) {
        json += ",\"timeoutMs\":" + std::to_string(*a.timeoutMs);
      }
      json += "}";
    }
    json += "]";
    if (race != nullptr) {
      json += ",\"race\":{\"winner\":\"" + jsonEscape(race->winner) + "\"";
      std::snprintf(secs, sizeof secs, "%.6f", race->seconds);
      json += ",\"seconds\":";
      json += secs;
      json += ",\"members\":[";
      for (std::size_t i = 0; i < race->members.size(); ++i) {
        const auto& m = race->members[i];
        if (i > 0) json += ",";
        json += "{\"name\":\"" + jsonEscape(m.name) + "\"";
        if (!m.verdict.empty()) {
          json += ",\"verdict\":\"" + jsonEscape(m.verdict) + "\"";
        }
        json += ",\"started\":";
        json += m.started ? "true" : "false";
        json += ",\"finished\":";
        json += m.finished ? "true" : "false";
        json += ",\"sound\":";
        json += m.sound ? "true" : "false";
        json += ",\"won\":";
        json += m.won ? "true" : "false";
        if (!m.error.empty()) {
          json += ",\"error\":\"" + jsonEscape(m.error) + "\"";
        }
        std::snprintf(secs, sizeof secs, "%.6f", m.seconds);
        json += ",\"seconds\":";
        json += secs;
        json += ",\"cached\":";
        json += m.cached ? "true" : "false";
        if (m.isolated) {
          json += ",\"isolated\":true";
          json += ",\"retries\":" + std::to_string(m.retries);
          json += ",\"restarts\":" + std::to_string(m.restarts);
          json += ",\"kills\":" + std::to_string(m.kills);
          json += ",\"redispatches\":" + std::to_string(m.redispatches);
          json += ",\"degraded\":";
          json += m.degraded ? "true" : "false";
        }
        json += "}";
      }
      json += "]}";
    }
    if (stats != nullptr) {
      json += ",\"procs\":" + procsJson(*stats, remote);
    }
    if (cache != nullptr) {
      json += ",\"cache\":" + cacheJson(cache->stats());
    }
    if (opts.stageTimings && !result.pipeline.empty()) {
      json += ",\"pipeline\":" + result.pipeline.toJson();
    }
    if (result.opt) {
      const auto& o = *result.opt;
      json += ",\"opt\":{";
      json += "\"nodesBefore\":" + std::to_string(o.nodesBefore);
      json += ",\"nodesAfter\":" + std::to_string(o.nodesAfter);
      json += ",\"assertionsBefore\":" + std::to_string(o.assertionsBefore);
      json += ",\"assertionsAfter\":" + std::to_string(o.assertionsAfter);
      json += ",\"assertionsSliced\":" + std::to_string(o.assertionsSliced);
      json +=
          ",\"comparisonsDecided\":" + std::to_string(o.comparisonsDecided);
      json += ",\"itesCollapsed\":" + std::to_string(o.itesCollapsed);
      json += ",\"passes\":[";
      for (std::size_t i = 0; i < o.passes.size(); ++i) {
        if (i > 0) json += ",";
        std::snprintf(secs, sizeof secs, "%.6f", o.passes[i].seconds);
        json += "{\"pass\":\"" + jsonEscape(o.passes[i].pass) +
                "\",\"seconds\":";
        json += secs;
        json += "}";
      }
      json += "]}";
    }
    if (result.trace) {
      std::string trace = result.trace->toJson();
      while (!trace.empty() && (trace.back() == '\n' || trace.back() == ' ')) {
        trace.pop_back();
      }
      json += ",\"trace\":" + trace;
    }
    json += "}\n";
    std::fputs(json.c_str(), stdout);
    return code;
  }

  std::printf("%s (%.3f s)%s\n", core::verdictName(result.verdict),
              result.solveSeconds, result.cached ? " [cached]" : "");
  if (procs::shutdownRequested()) std::printf("  interrupted\n");
  if (!result.detail.empty()) std::printf("  %s\n", result.detail.c_str());
  if (race != nullptr) {
    std::printf("  race: winner=%s (%.3f s)\n",
                race->winner.empty() ? "<fallback>" : race->winner.c_str(),
                race->seconds);
    for (const auto& m : race->members) {
      std::printf("    %-12s %-14s%s%s%s%s%s\n", m.name.c_str(),
                  m.verdict.empty()
                      ? (m.started ? "interrupted" : "not-started")
                      : m.verdict.c_str(),
                  m.won ? " WON" : "", m.cached ? " [cached]" : "",
                  m.isolated ? " [isolated]" : "",
                  m.error.empty() ? "" : " error: ", m.error.c_str());
    }
  }
  if (stats != nullptr && (opts.stageTimings || stats->jobs > 0)) {
    printProcsStats(*stats, remote);
  }
  if (cache != nullptr) {
    const cache::CacheStats cs = cache->stats();
    if (opts.stageTimings || cs.hits > 0 || cs.validationFailures > 0) {
      printCacheStats(cs);
    }
  }
  if (opts.stageTimings && !result.pipeline.empty()) {
    std::printf("  pipeline:\n%s", result.pipeline.render().c_str());
  }
  if (result.opt) {
    std::printf("  opt: %zu -> %zu nodes, %zu -> %zu assertions"
                " (%zu sliced)\n",
                result.opt->nodesBefore, result.opt->nodesAfter,
                result.opt->assertionsBefore, result.opt->assertionsAfter,
                result.opt->assertionsSliced);
  }
  if (result.attempts.size() > 1) {
    for (const auto& a : result.attempts) {
      std::printf("  attempt %-8s %s%s%s%s (%.3f s)\n", a.stage.c_str(),
                  a.outcome.c_str(), a.reason.empty() ? "" : " [",
                  a.reason.c_str(), a.reason.empty() ? "" : "]", a.seconds);
    }
  }
  if (result.trace) printTrace(opts, *result.trace);
  return code;
}

/// Exit severity for one sweep point. The sweep's exit code is the worst
/// point: violation(1) > error(4) > unknown(3) > ok(0).
int sweepPointCode(const std::string& verdict) {
  if (verdict == "VIOLATED" || verdict == "WITNESS-MISMATCH") {
    return kExitViolation;
  }
  if (verdict.rfind("error", 0) == 0) return kExitInternal;
  if (verdict == "UNKNOWN" || verdict.empty()) return kExitUnknown;
  return kExitOk;
}

int reportSweep(const Options& opts, const core::SweepResult& result,
                const procs::ProcsStats* stats = nullptr,
                const cache::VerdictCache* cache = nullptr,
                const procs::RemoteStats* remote = nullptr) {
  int code = kExitOk;
  auto rank = [](int c) {  // severity order, not numeric order
    switch (c) {
      case kExitViolation: return 3;
      case kExitInternal: return 2;
      case kExitUnknown: return 1;
      default: return 0;
    }
  };
  for (const auto& p : result.points) {
    const int c = sweepPointCode(p.verdict);
    if (rank(c) > rank(code)) code = c;
  }

  if (opts.format == "json") {
    char secs[32];
    std::string json = "{\"sweep\":{\"shards\":" + std::to_string(result.shards);
    json +=
        ",\"incrementalQueries\":" + std::to_string(result.incrementalQueries);
    std::snprintf(secs, sizeof secs, "%.6f", result.seconds);
    json += ",\"seconds\":";
    json += secs;
    json += ",\"exitCode\":" + std::to_string(code);
    if (procs::shutdownRequested()) {
      json += ",\"status\":\"interrupted\"";
    }
    if (stats != nullptr) {
      json += ",\"procs\":" + procsJson(*stats, remote);
    }
    if (cache != nullptr) {
      json += ",\"cache\":" + cacheJson(cache->stats());
    }
    json += ",\"points\":[";
    for (std::size_t i = 0; i < result.points.size(); ++i) {
      const auto& p = result.points[i];
      if (i > 0) json += ",";
      json += "{\"horizon\":" + std::to_string(p.horizon);
      json += ",\"query\":\"" + jsonEscape(p.query) + "\"";
      json += ",\"verdict\":\"" + jsonEscape(p.verdict) + "\"";
      std::snprintf(secs, sizeof secs, "%.6f", p.solveSeconds);
      json += ",\"solveSeconds\":";
      json += secs;
      json += ",\"canceled\":";
      json += p.canceled ? "true" : "false";
      json += ",\"cached\":";
      json += p.cached ? "true" : "false";
      json += ",\"shard\":" + std::to_string(p.shard);
      if (p.isolated) {
        json += ",\"isolated\":true";
        json += ",\"retries\":" + std::to_string(p.retries);
        json += ",\"restarts\":" + std::to_string(p.restarts);
        json += ",\"kills\":" + std::to_string(p.kills);
        json += ",\"redispatches\":" + std::to_string(p.redispatches);
        json += ",\"degraded\":";
        json += p.degraded ? "true" : "false";
      }
      json += "}";
    }
    json += "]}}\n";
    std::fputs(json.c_str(), stdout);
    return code;
  }
  if (opts.format == "csv") {
    std::puts("horizon,query,verdict,solveSeconds,canceled,shard");
    for (const auto& p : result.points) {
      std::printf("%d,%s,%s,%.6f,%d,%zu\n", p.horizon, p.query.c_str(),
                  p.verdict.c_str(), p.solveSeconds, p.canceled ? 1 : 0,
                  p.shard);
    }
    return code;
  }
  std::printf("sweep: %zu points, %zu shard(s), %zu incremental queries"
              " (%.3f s)%s\n",
              result.points.size(), result.shards, result.incrementalQueries,
              result.seconds,
              procs::shutdownRequested() ? " [interrupted]" : "");
  for (const auto& p : result.points) {
    std::printf("  T=%-3d %-16s (%.3f s)%s  %s\n", p.horizon,
                p.verdict.c_str(), p.solveSeconds,
                p.cached ? " [cached]" : "", p.query.c_str());
  }
  if (stats != nullptr && (opts.stageTimings || stats->jobs > 0)) {
    printProcsStats(*stats, remote);
  }
  if (cache != nullptr) {
    const cache::CacheStats cs = cache->stats();
    if (opts.stageTimings || cs.hits > 0 || cs.validationFailures > 0) {
      printCacheStats(cs);
    }
  }
  return code;
}

int reportSynth(const Options& opts, const synth::SynthesisResult& result) {
  const int code = result.solutions.empty() ? kExitViolation : kExitOk;
  if (opts.format == "json") {
    char secs[32];
    std::string json = "{\"synth\":{\"summary\":\"" +
                       jsonEscape(result.summary()) + "\"";
    json += ",\"candidatesChecked\":" + std::to_string(result.candidatesChecked);
    json += ",\"solved\":" + std::to_string(result.solvedCount);
    json += ",\"unknown\":" + std::to_string(result.unknownCount);
    json += ",\"failed\":" + std::to_string(result.failedCount);
    json += ",\"prescreenRejected\":" + std::to_string(result.prescreenRejected);
    json +=
        ",\"prescreenWitnessed\":" + std::to_string(result.prescreenWitnessed);
    json +=
        ",\"prescreenCacheHits\":" + std::to_string(result.prescreenCacheHits);
    std::snprintf(secs, sizeof secs, "%.6f", result.totalSeconds);
    json += ",\"seconds\":";
    json += secs;
    json += ",\"exitCode\":" + std::to_string(code);
    json += ",\"solutions\":[";
    for (std::size_t i = 0; i < result.solutions.size(); ++i) {
      if (i > 0) json += ",";
      json += "\"" + jsonEscape(result.solutions[i].describe()) + "\"";
    }
    json += "],\"failures\":[";
    for (std::size_t i = 0; i < result.failures.size(); ++i) {
      if (i > 0) json += ",";
      json += "\"" + jsonEscape(result.failures[i].describe()) + "\"";
    }
    json += "]}}\n";
    std::fputs(json.c_str(), stdout);
    return code;
  }
  std::printf("%s\n", result.summary().c_str());
  for (const auto& s : result.solutions) {
    std::printf("  solution: %s\n", s.describe().c_str());
  }
  for (const auto& f : result.failures) {
    std::printf("  failure: %s\n", f.describe().c_str());
  }
  return code;
}

lang::CompileOptions compileOptionsFor(const Options& opts) {
  lang::CompileOptions copts;
  copts.constants = opts.constants;
  if (opts.constants.count("N") != 0) {
    copts.defaultListCapacity =
        std::max<int>(2, static_cast<int>(opts.constants.at("N")));
  }
  return copts;
}

/// The FrontMode the CompilerDriver runs for each command (DESIGN.md §11):
/// print needs only the elaborated AST, emit-dafny the transformed one,
/// lint the semantic passes, everything else the full Analyze front half.
pipeline::FrontMode frontModeFor(const Options& opts) {
  if (opts.command == "print") {
    return opts.unroll ? pipeline::FrontMode::Emit : pipeline::FrontMode::Front;
  }
  if (opts.command == "emit-dafny") return pipeline::FrontMode::Emit;
  if (opts.command == "lint") return pipeline::FrontMode::Lint;
  if (opts.command == "prove") return pipeline::FrontMode::Front;
  return pipeline::FrontMode::Analyze;
}

/// Resolves --backend against the registry: empty picks the command
/// default, unknown names and missing capabilities are usage errors.
backends::SolverBackend& backendFor(const Options& opts,
                                    const std::string& fallback) {
  const std::string name = opts.backend.empty() ? fallback : opts.backend;
  backends::SolverBackend* backend =
      backends::BackendRegistry::instance().find(name);
  if (backend == nullptr) {
    std::string known;
    for (const auto& n : backends::BackendRegistry::instance().names()) {
      if (!known.empty()) known += "|";
      known += n;
    }
    throw CliError("unknown backend '" + name + "' (known: " + known + ")");
  }
  return *backend;
}

/// --race and --sweep both need a backend that can solve AND reuse
/// incremental sessions (a race interrupts losers mid-solve; a sweep
/// shard answers every query at its horizon through one session). The
/// missing capability is named so the exit-2 diagnostic is actionable.
void requireIncrementalSolver(const Options& opts, const char* flag) {
  const backends::SolverBackend& backend = backendFor(opts, "z3");
  const auto caps = backend.capabilities();
  if (!caps.solve) {
    throw CliError(std::string(flag) + ": backend '" +
                   std::string(backend.name()) +
                   "' cannot solve queries (use z3)");
  }
  if (!caps.incrementalSessions) {
    throw CliError(std::string(flag) + ": backend '" +
                   std::string(backend.name()) +
                   "' lacks incremental sessions (use z3)");
  }
}

/// Multi-file print/lint: one Network per file compiled through
/// CompilerDriver::compileAll over a --jobs-wide pool. Each file gets its
/// own CompilationUnit (own AST arena) and DiagnosticEngine; output is
/// rendered by input index, so the bytes do not depend on the job count.
int runMultiFile(const Options& opts) {
  pipeline::PipelineOptions popts;
  popts.horizon = opts.horizon;
  popts.model = opts.model;
  popts.unrollLoops = opts.unroll;
  popts.symbolicInitialState = opts.havocInit;
  popts.budget = opts.budget;

  std::vector<core::Network> networks;
  networks.reserve(opts.files.size());
  for (const auto& file : opts.files) {
    core::ProgramSpec spec;
    spec.instance = opts.instance;
    spec.source = readFile(file);
    spec.compile = compileOptionsFor(opts);
    spec.buffers = opts.buffers;
    core::Network net;
    net.add(spec);
    networks.push_back(std::move(net));
  }

  const pipeline::CompilerDriver driver(popts);
  const pipeline::CompileAllResult all =
      driver.compileAll(std::move(networks), frontModeFor(opts), opts.jobs);

  if (opts.command == "lint") {
    bool findings = false;
    bool errors = false;
    for (std::size_t i = 0; i < opts.files.size(); ++i) {
      const DiagnosticEngine& diag = all.diags[i];
      if (diag.all().empty()) continue;
      findings = true;
      errors = errors || diag.hasErrors();
      std::printf("%s:\n", opts.files[i].c_str());
      std::fputs(diag.renderAll().c_str(), stdout);
    }
    if (!findings) {
      std::puts("clean: no findings");
      return kExitOk;
    }
    return errors ? kExitUsage : kExitOk;
  }

  // print
  bool errors = false;
  for (std::size_t i = 0; i < opts.files.size(); ++i) {
    const DiagnosticEngine& diag = all.diags[i];
    if (!diag.all().empty()) std::fputs(diag.renderAll().c_str(), stderr);
    errors = errors || diag.hasErrors();
  }
  if (errors) return kExitUsage;
  for (std::size_t i = 0; i < opts.files.size(); ++i) {
    const auto& ast = all.units[i]->instances().front().ast;
    std::fputs(lang::printProgram(ast).c_str(), stdout);
  }
  return kExitOk;
}

int run(const Options& opts) {
  if (opts.files.size() > 1) return runMultiFile(opts);
  const std::string source = readFile(opts.file);

  // ONE front-half compile per run, whatever the command: the driver runs
  // recovery-mode parse + elaborate + typecheck (+ sem/transforms as the
  // command needs), batching every source-located diagnostic, and the
  // back half below consumes the same CompilationUnit — no re-parse.
  core::ProgramSpec spec;
  spec.instance = opts.instance;
  spec.source = source;
  spec.compile = compileOptionsFor(opts);
  spec.buffers = opts.buffers;
  core::Network net;
  net.add(spec);

  pipeline::PipelineOptions popts;
  popts.horizon = opts.horizon;
  popts.model = opts.model;
  popts.unrollLoops = opts.unroll && opts.command != "emit-dafny";
  popts.symbolicInitialState = opts.havocInit;
  popts.budget = opts.budget;

  DiagnosticEngine diag;
  const pipeline::CompilerDriver driver(popts);
  const pipeline::CompilationUnitPtr unit =
      driver.compile(net, diag, frontModeFor(opts));

  if (opts.command == "lint") {
    // One run, every finding: front-half errors batch with the semantic
    // passes' warnings/errors instead of aborting at the first problem.
    if (diag.all().empty()) {
      std::puts("clean: no findings");
      return 0;
    }
    std::fputs(diag.renderAll().c_str(), stdout);
    return diag.hasErrors() ? kExitUsage : kExitOk;
  }

  if (!diag.all().empty()) std::fputs(diag.renderAll().c_str(), stderr);
  if (diag.hasErrors()) return kExitUsage;

  if (opts.command == "print") {
    const auto& ast = unit->instances().front().ast;
    std::fputs(lang::printProgram(ast).c_str(), stdout);
    return 0;
  }

  if (opts.command == "emit-dafny") {
    backends::DafnyOptions dopts;
    dopts.horizon = opts.horizon;
    for (const auto& b : opts.buffers) {
      if (b.role == core::BufferSpec::Role::Input) {
        dopts.inputParams.push_back(b.param);
        dopts.maxArrivalsPerStep = b.maxArrivalsPerStep;
      }
    }
    const auto& ast = unit->instances().front().ast;
    std::fputs(emitDafny(ast, dopts).c_str(), stdout);
    return 0;
  }

  if (opts.command == "prove") {
    // Unbounded-horizon proof via CHC/Spacer. The property uses state
    // names with [0], e.g. "rr.cdeq.0[0] >= 0"; run with an empty --query
    // to list the state variables.
    core::TransitionOptions topts;
    topts.model = opts.model;
    topts.stepWorkload = buildWorkload(opts);
    topts.budget = opts.budget;
    backends::UnboundedAnalysis unbounded(net, topts);
    if (opts.query.empty()) {
      std::puts("state variables (use 'name[0]' in --query):");
      for (const auto& name : unbounded.stateNames()) {
        std::printf("  %s\n", name.c_str());
      }
      return 0;
    }
    const auto result =
        unbounded.prove(opts.query, opts.timeoutMs);
    std::printf("%s (%.3f s)\n", backends::chcStatusName(result.status),
                result.seconds);
    switch (result.status) {
      case backends::ChcStatus::Proved: return kExitOk;
      case backends::ChcStatus::Violated: return kExitViolation;
      case backends::ChcStatus::Unknown: return kExitUnknown;
    }
    return kExitInternal;
  }

  core::AnalysisOptions aopts;
  aopts.horizon = opts.horizon;
  aopts.model = opts.model;
  aopts.timeoutMs = opts.timeoutMs;
  aopts.rlimit = opts.rlimit;
  aopts.maxMemoryMb = opts.maxMemoryMb;
  aopts.retry.enabled = !opts.noRetry;
  aopts.replayWitness = !opts.noReplay;
  aopts.faultPlan = buildFaultPlan(opts);
  aopts.unrollLoops = opts.unroll;
  aopts.symbolicInitialState = opts.havocInit;
  aopts.opt.enabled = !opts.noOpt;
  aopts.budget = opts.budget;
  // Verdict cache (DESIGN.md §14): the in-memory tier is always on unless
  // --no-cache; --cache-dir adds the cross-run disk tier. One instance per
  // run, shared by every path below (plain solve, sweep shards, race
  // members, synth workers) — isolated workers rebuild an equivalent cache
  // from the same options on their side of the pipe and report their keys
  // back, so the parent's tiers fill either way.
  std::shared_ptr<cache::VerdictCache> verdictCache;
  if (!opts.noCache) {
    cache::VerdictCacheOptions cacheOpts;
    cacheOpts.dir = opts.cacheDir;
    cacheOpts.maxDiskBytes = opts.cacheMaxMb * 1024ull * 1024ull;
    verdictCache = std::make_shared<cache::VerdictCache>(cacheOpts);
    aopts.cache = verdictCache;
    aopts.cacheVerify = opts.cacheVerify;
  }
  core::Analysis analysis(unit, aopts);

  if (opts.command == "simulate") {
    backends::SolverBackend& backend = backendFor(opts, "interp");
    if (!backend.capabilities().concreteSim) {
      throw CliError("backend '" + std::string(backend.name()) +
                     "' cannot simulate concretely (use interp)");
    }
    core::ConcreteArrivals arrivals;
    for (const auto& [buffer, counts] : opts.arrivals) {
      auto& steps = arrivals[buffer];
      for (const int n : counts) {
        steps.emplace_back(static_cast<std::size_t>(n));
      }
    }
    const core::Trace trace = backend.simulate(analysis, arrivals);
    printTrace(opts, trace);
    if (opts.stageTimings && !analysis.pipelineStats().empty()) {
      std::printf("pipeline:\n%s", analysis.pipelineStats().render().c_str());
    }
    return 0;
  }

  if (opts.query.empty() && opts.command != "verify") {
    throw CliError(opts.command + " needs --query");
  }
  const core::Query query =
      opts.query.empty() ? core::Query::always() : core::Query::expr(opts.query);
  analysis.setWorkload(buildWorkload(opts));

  if (opts.command == "synth") {
    synth::Synthesizer synthesizer(net, aopts);
    synth::SynthesisOptions sopts;
    sopts.threads = std::max(1, opts.threads);
    sopts.firstOnly = opts.firstOnly;
    sopts.prescreen = !opts.noPrescreen;
    sopts.negativeCache = !opts.noCache;
    return reportSynth(opts, synthesizer.run(query, sopts));
  }

  if (opts.command == "emit-smt2") {
    backends::SmtLibOptions sopts;
    sopts.comment = "buffy emit-smt2: " + opts.file + " query: " + opts.query;
    std::fputs(analysis.toSmtLib(query, false, sopts).c_str(), stdout);
    return 0;
  }
  if (opts.command == "check" || opts.command == "verify") {
    if (opts.sweep) {
      requireIncrementalSolver(opts, "--sweep");
      std::vector<core::Query> queries;
      for (const auto& text : opts.queries) {
        queries.push_back(core::Query::expr(text));
      }
      if (queries.empty()) queries.push_back(core::Query::always());
      core::SweepOptions sopts;
      sopts.fromHorizon = opts.sweep->first;
      sopts.toHorizon = opts.sweep->second;
      sopts.shards = opts.shards;
      sopts.verify = opts.command == "verify";
      std::unique_ptr<procs::RemoteHostPool> remotePool;
      std::unique_ptr<procs::Supervisor> supervisor;
      if (opts.isolate || !opts.connect.empty()) {
        procs::SupervisorOptions svopts;
        svopts.maxRetries = opts.retries;
        if (!opts.connect.empty()) {
          // --connect rides the isolate job path: the remote tier is
          // tried first, the local subprocess tier is the middle rung
          // of the ladder (DESIGN.md §15).
          procs::RemoteOptions ropts;
          ropts.heartbeatMs = opts.heartbeatMs;
          ropts.faultPlan = aopts.faultPlan;
          remotePool = std::make_unique<procs::RemoteHostPool>(
              opts.connect, std::move(ropts));
          svopts.remotePool = remotePool.get();
        }
        supervisor = std::make_unique<procs::Supervisor>(svopts);
        sopts.isolate = true;
        sopts.supervisor = supervisor.get();
        sopts.workloadSpecs = opts.workloads;
      }
      core::HorizonSweep sweep(net, aopts);
      const auto result = sweep.run(
          queries, [&opts](int h) { return buildWorkloadAt(opts, h); }, sopts);
      procs::ProcsStats stats;
      procs::RemoteStats remoteStats;
      if (supervisor) {
        supervisor->shutdownWorkers();
        stats = supervisor->stats();
      }
      if (remotePool) {
        remotePool->shutdown();
        remoteStats = remotePool->stats();
      }
      const int code = reportSweep(opts, result, supervisor ? &stats : nullptr,
                                   verdictCache.get(),
                                   remotePool ? &remoteStats : nullptr);
      return procs::shutdownRequested() ? kExitInterrupted : code;
    }
    if (opts.race) {
      requireIncrementalSolver(opts, "--race");
      core::Portfolio portfolio(unit, aopts);
      core::PortfolioOptions popts2;
      popts2.threads =
          opts.threads > 0 ? static_cast<std::size_t>(opts.threads) : 0;
      std::unique_ptr<procs::RemoteHostPool> remotePool;
      std::unique_ptr<procs::Supervisor> supervisor;
      if (opts.isolate || !opts.connect.empty()) {
        procs::SupervisorOptions svopts;
        svopts.maxRetries = opts.retries;
        if (!opts.connect.empty()) {
          procs::RemoteOptions ropts;
          ropts.heartbeatMs = opts.heartbeatMs;
          ropts.faultPlan = aopts.faultPlan;
          remotePool = std::make_unique<procs::RemoteHostPool>(
              opts.connect, std::move(ropts));
          svopts.remotePool = remotePool.get();
        }
        supervisor = std::make_unique<procs::Supervisor>(svopts);
        popts2.isolate = true;
        popts2.supervisor = supervisor.get();
        popts2.workloadSpecs = opts.workloads;
      }
      const core::Workload workload = buildWorkload(opts);
      const core::PortfolioResult pr =
          opts.command == "verify" ? portfolio.verify(query, workload, popts2)
                                   : portfolio.check(query, workload, popts2);
      procs::ProcsStats stats;
      procs::RemoteStats remoteStats;
      if (supervisor) {
        supervisor->shutdownWorkers();
        stats = supervisor->stats();
      }
      if (remotePool) {
        remotePool->shutdown();
        remoteStats = remotePool->stats();
      }
      const int code = reportResult(opts, pr.result, &pr,
                                    supervisor ? &stats : nullptr,
                                    verdictCache.get(),
                                    remotePool ? &remoteStats : nullptr);
      return procs::shutdownRequested() ? kExitInterrupted : code;
    }
    backends::SolverBackend& backend = backendFor(opts, "z3");
    if (!backend.capabilities().solve) {
      throw CliError("backend '" + std::string(backend.name()) +
                     "' cannot solve queries (use z3 or smtlib)");
    }
    // The plain path has no pool to drain: a shutdown signal interrupts
    // the engine, the canceled result is reported, and the run exits 130.
    const procs::ShutdownToken stopToken(
        [&analysis] { analysis.interrupt(); });
    const auto result =
        backend.solve(analysis, query, opts.command == "verify");
    const int code = reportResult(opts, result, nullptr, nullptr,
                                  verdictCache.get());
    return procs::shutdownRequested() ? kExitInterrupted : code;
  }
  throw CliError("unknown command " + opts.command);
}

}  // namespace

int main(int argc, char** argv) {
  // Hidden worker mode, dispatched before normal argument parsing: the
  // whole CLI surface stays out of the worker's way (its only interface
  // is the framed job protocol on stdin/stdout).
  if (argc >= 2 && std::strcmp(argv[1], "--worker") == 0) {
    if (argc > 2) {
      std::fprintf(stderr, "buffy: --worker takes no further arguments "
                   "(got '%s')\n", argv[2]);
      return kExitUsage;
    }
    return procs::runWorker();
  }

  // Server mode (DESIGN.md §15), dispatched the same way: runs the worker
  // loop over TCP connections for --connect clients. Only --listen (one,
  // required) is meaningful here; anything else is a usage error.
  if (argc >= 2 && std::strcmp(argv[1], "--serve") == 0) {
    procs::ServeOptions serve;
    bool haveListen = false;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--listen") == 0) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "buffy: missing value after --listen\n");
          return kExitUsage;
        }
        if (haveListen) {
          std::fprintf(stderr, "buffy: --listen given twice\n");
          return kExitUsage;
        }
        std::string error;
        const auto addr = procs::parseHostPort(argv[++i], &error);
        if (!addr) {
          std::fprintf(stderr, "buffy: --listen: %s\n", error.c_str());
          return kExitUsage;
        }
        serve.listen = *addr;
        haveListen = true;
      } else {
        std::fprintf(stderr,
                     "buffy: --serve does not understand '%s' "
                     "(usage: buffy --serve --listen ADDR:PORT)\n", argv[i]);
        return kExitUsage;
      }
    }
    if (!haveListen) {
      std::fprintf(stderr,
                   "buffy: --serve needs --listen ADDR:PORT\n");
      return kExitUsage;
    }
    return procs::runServer(serve);
  }

  Options opts;
  try {
    opts = parseArgs(argc, argv);
  } catch (const CliError& e) {
    std::fprintf(stderr, "buffy: %s\n", e.what());
    usage();
    return kExitUsage;
  } catch (const std::exception& e) {
    // e.g. std::stoi on a malformed flag value
    std::fprintf(stderr, "buffy: bad argument: %s\n", e.what());
    usage();
    return kExitUsage;
  }

  // SIGINT/SIGTERM cancel in-flight solves and worker pools; the run then
  // emits its partial report with "status": "interrupted" and exits 130.
  // A second signal exits immediately (workers die via PDEATHSIG).
  procs::installSignalWatcher();

  // No exception type may escape to std::terminate: every failure maps to
  // a documented exit code.
  try {
    return run(opts);
  } catch (const BudgetExceeded& e) {
    if (opts.format == "json") {
      std::printf(
          "{\"verdict\":\"BUDGET-EXCEEDED\",\"exitCode\":%d,"
          "\"resource\":\"%s\",\"limit\":%llu,\"detail\":\"%s\"}\n",
          kExitBudget, jsonEscape(e.resource()).c_str(),
          static_cast<unsigned long long>(e.limit()),
          jsonEscape(e.what()).c_str());
    } else {
      std::fprintf(stderr,
                   "buffy: %s\n  (raise the corresponding --max-* flag or "
                   "pass --no-budget to override)\n",
                   e.what());
    }
    return kExitBudget;
  } catch (const CliError& e) {
    std::fprintf(stderr, "buffy: %s\n", e.what());
    usage();
    return kExitUsage;
  } catch (const BackendError& e) {
    std::fprintf(stderr, "buffy: solver failure: %s\n", e.what());
    return kExitInternal;
  } catch (const Error& e) {
    // Parse, type, and analysis errors: the input was at fault.
    std::fprintf(stderr, "buffy: %s\n", e.what());
    return kExitUsage;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "buffy: internal error: %s\n", e.what());
    return kExitInternal;
  } catch (...) {
    std::fprintf(stderr, "buffy: internal error: unknown exception type\n");
    return kExitInternal;
  }
}
