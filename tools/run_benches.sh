#!/usr/bin/env bash
# Rebuilds the Release benchmark tree (opt-bench preset) and refreshes ALL
# committed benchmark JSONs in one run on one host, so the numbers in
# BENCH_incremental.json, BENCH_opt.json, BENCH_portfolio.json,
# BENCH_isolation.json, BENCH_cache.json, BENCH_remote.json, and
# BENCH_frontend.json are always comparable:
#
#   tools/run_benches.sh
#
# Every benchmark binary exits nonzero when its pass criterion fails
# (incremental beats fresh; optimizer verdict identity + speedup/reduction
# threshold; sharded sweep >= 1.3x and race never slower than the serial
# ladder; isolation overhead <= 1.15x with 100% availability under crash
# storms; warm cache >= 5x with <= 2% cold overhead; loopback remote
# sweep answers every point fault-free within 1.5x of --isolate), which
# this script propagates (micro_frontend is a google-benchmark binary with no pass
# criterion of its own — it fails only on crash). After refreshing, each
# JSON is schema-validated by tools/validate_bench.py so a formatting
# regression in a benchmark's hand-written writer cannot land silently.
set -euo pipefail

cd "$(dirname "$0")/.."

# bench_isolation spawns `buffy --worker` subprocesses; if a bench (or
# this script) dies mid-run, reap any of OUR workers left behind. The -P $$
# scope limits the sweep to this script's direct descendants — never
# someone else's buffy processes.
cleanup() {
  pkill -KILL -P $$ -f -- '--worker' 2>/dev/null || true
  pkill -KILL -P $$ -f -- '--serve' 2>/dev/null || true
}
trap cleanup EXIT INT TERM

cmake --preset opt-bench
cmake --build --preset opt-bench -j "$(nproc)" \
  --target bench_incremental bench_opt bench_portfolio bench_isolation \
           bench_cache bench_remote micro_frontend

cd build-bench
./bench/bench_incremental
./bench/bench_opt
./bench/bench_portfolio
./bench/bench_isolation
./bench/bench_cache
./bench/bench_remote
./bench/micro_frontend --benchmark_out=BENCH_frontend.json \
  --benchmark_out_format=json

cp BENCH_incremental.json BENCH_opt.json BENCH_portfolio.json \
   BENCH_isolation.json BENCH_cache.json BENCH_remote.json \
   BENCH_frontend.json ..
cd ..
echo "validating refreshed benchmark JSONs"
python3 tools/validate_bench.py
echo "refreshed BENCH_incremental.json, BENCH_opt.json," \
     "BENCH_portfolio.json, BENCH_isolation.json, BENCH_cache.json," \
     "BENCH_remote.json, BENCH_frontend.json"
