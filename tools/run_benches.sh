#!/usr/bin/env sh
# Rebuilds the Release benchmark tree (opt-bench preset) and refreshes the
# committed benchmark JSONs in one run on one host, so the numbers in
# BENCH_incremental.json and BENCH_opt.json are always comparable:
#
#   tools/run_benches.sh
#
# Both benchmark binaries exit nonzero when their pass criterion fails
# (incremental beats fresh; optimizer verdict identity + speedup/reduction
# threshold), which this script propagates.
set -eu

cd "$(dirname "$0")/.."

cmake --preset opt-bench
cmake --build --preset opt-bench -j "$(nproc)" \
  --target bench_incremental bench_opt

cd build-bench
./bench/bench_incremental
./bench/bench_opt

cp BENCH_incremental.json BENCH_opt.json ..
echo "refreshed BENCH_incremental.json and BENCH_opt.json"
