#!/usr/bin/env sh
# Rebuilds the Release benchmark tree (opt-bench preset) and refreshes ALL
# committed benchmark JSONs in one run on one host, so the numbers in
# BENCH_incremental.json, BENCH_opt.json, and BENCH_portfolio.json are
# always comparable:
#
#   tools/run_benches.sh
#
# Every benchmark binary exits nonzero when its pass criterion fails
# (incremental beats fresh; optimizer verdict identity + speedup/reduction
# threshold; sharded sweep >= 1.3x and race never slower than the serial
# ladder), which this script propagates. After refreshing, each JSON is
# schema-validated by tools/validate_bench.py so a formatting regression in
# a benchmark's hand-written writer cannot land silently.
set -eu

cd "$(dirname "$0")/.."

cmake --preset opt-bench
cmake --build --preset opt-bench -j "$(nproc)" \
  --target bench_incremental bench_opt bench_portfolio

cd build-bench
./bench/bench_incremental
./bench/bench_opt
./bench/bench_portfolio

cp BENCH_incremental.json BENCH_opt.json BENCH_portfolio.json ..
cd ..
echo "validating refreshed benchmark JSONs"
python3 tools/validate_bench.py
echo "refreshed BENCH_incremental.json, BENCH_opt.json, BENCH_portfolio.json"
