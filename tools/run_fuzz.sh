#!/usr/bin/env bash
# Builds and runs the fuzzing harnesses (DESIGN.md §10).
#
# Usage:
#   tools/run_fuzz.sh smoke            # 60s split across all targets (CI gate)
#   tools/run_fuzz.sh <target> [args]  # one target, extra args to the engine
#   tools/run_fuzz.sh all [seconds]    # every target, [seconds] each (default 60)
#
# Targets: fuzz_lexer fuzz_parser fuzz_pipeline fuzz_wire
#
# Exit code is non-zero if any target crashed; crash inputs land in
# build-fuzz/artifacts/ for replay (`build-fuzz/fuzz/fuzz_parser <crash-file>`).
set -u

cd "$(dirname "$0")/.."
BUILD_DIR=build-fuzz
TARGETS="fuzz_lexer fuzz_parser fuzz_pipeline fuzz_wire"
DICT=fuzz/buffy.dict
# Seed corpus is materialized at configure time from examples/models/
# (single source of truth — see fuzz/CMakeLists.txt).
CORPUS=$BUILD_DIR/fuzz/corpus
REGRESSIONS=tests/corpus

build() {
  cmake --preset fuzz >/dev/null || return 1
  cmake --build --preset fuzz -j >/dev/null || return 1
}

run_target() {
  local target=$1 seconds=$2
  shift 2
  mkdir -p "$BUILD_DIR/artifacts"
  echo "== $target (${seconds}s) =="
  # Seed corpus + committed regression inputs; the standalone driver and
  # libFuzzer accept the same flags.
  "$BUILD_DIR/fuzz/$target" \
    -max_total_time="$seconds" \
    -runs=100000000 \
    -dict="$DICT" \
    -artifact_prefix="$BUILD_DIR/artifacts/${target}-" \
    "$CORPUS" "$REGRESSIONS" "$@"
}

main() {
  local mode=${1:-smoke}
  shift || true

  build || { echo "run_fuzz.sh: build failed" >&2; exit 1; }

  local failures=0
  case "$mode" in
    smoke)
      # The CI gate: ~60s wall time split across the four targets.
      for t in $TARGETS; do
        run_target "$t" 15 || failures=$((failures + 1))
      done
      ;;
    all)
      local seconds=${1:-60}
      for t in $TARGETS; do
        run_target "$t" "$seconds" || failures=$((failures + 1))
      done
      ;;
    fuzz_*)
      run_target "$mode" "${FUZZ_SECONDS:-60}" "$@" || failures=1
      ;;
    *)
      echo "usage: tools/run_fuzz.sh [smoke|all [seconds]|<target> [args]]" >&2
      exit 2
      ;;
  esac

  if [ "$failures" -ne 0 ]; then
    echo "run_fuzz.sh: $failures target(s) crashed; see $BUILD_DIR/artifacts/" >&2
    exit 1
  fi
  echo "run_fuzz.sh: all targets clean"
}

main "$@"
