#!/usr/bin/env python3
"""Schema check for the committed BENCH_*.json files.

Each benchmark binary hand-writes its JSON (no serialization library in the
tree), so this validator is what keeps the committed files loadable and
shape-stable for downstream tooling. Run with no arguments from anywhere in
the repo to check every committed file, or pass explicit paths:

    tools/validate_bench.py [BENCH_foo.json ...]

A file validates iff it is a non-empty top-level JSON array whose rows all
carry exactly the keys the schema below records for that file, with the
recorded types, and with every "seconds" value non-negative. Exits nonzero
listing every violation.
"""
import json
import numbers
import pathlib
import sys

# File name -> {key: expected type}. A row must have exactly these keys.
INT = numbers.Integral
NUM = numbers.Real  # ints are fine where floats are expected
SCHEMAS = {
    "BENCH_incremental.json": {
        "name": str,
        "mode": str,
        "seconds": NUM,
        "candidates": INT,
    },
    "BENCH_opt.json": {
        "name": str,
        "mode": str,
        "horizon": INT,
        "seconds": NUM,
        "verdict": str,
        "nodesBefore": INT,
        "nodesAfter": INT,
        "assertionsBefore": INT,
        "assertionsAfter": INT,
    },
    "BENCH_portfolio.json": {
        "name": str,
        "mode": str,
        "seconds": NUM,
        "points": INT,
    },
    "BENCH_isolation.json": {
        "name": str,
        "mode": str,
        "seconds": NUM,
        "points": INT,
        "answered": INT,
        "restarts": INT,
    },
    "BENCH_remote.json": {
        "name": str,
        "mode": str,
        "seconds": NUM,
        "points": INT,
        "answered": INT,
        "redispatches": INT,
    },
    "BENCH_cache.json": {
        "name": str,
        "mode": str,
        "seconds": NUM,
        "points": INT,
        "hits": INT,
        "misses": INT,
        "stores": INT,
    },
}

# Files emitted by google-benchmark (--benchmark_out_format=json): a
# top-level object with a "context" block and a "benchmarks" array, whose
# rows carry more keys than we pin down — validate the stable core only.
GOOGLE_BENCHMARK_FILES = {"BENCH_frontend.json"}

# Per-stage frontend timer families (bench/micro_frontend): at least one
# row of each must be present, and every row carries an `astNodes`
# counter reporting the arena size the stage operated on.
STAGE_BENCHMARK_PREFIXES = (
    "BM_StageParse/",
    "BM_StageTypecheck/",
    "BM_StageInline/",
    "BM_StageUnroll/",
    "BM_FrontHalf/",
)


def validate_google_benchmark(path: pathlib.Path) -> list:
    try:
        doc = json.loads(path.read_text())
    except OSError as err:
        return [f"{path}: unreadable: {err}"]
    except json.JSONDecodeError as err:
        return [f"{path}: invalid JSON: {err}"]
    if not isinstance(doc, dict):
        return [f"{path}: top level must be an object (google-benchmark)"]
    errors = []
    if not isinstance(doc.get("context"), dict):
        errors.append(f"{path}: missing 'context' object")
    rows = doc.get("benchmarks")
    if not isinstance(rows, list) or not rows:
        return errors + [f"{path}: 'benchmarks' must be a non-empty array"]
    stage_rows = {prefix: 0 for prefix in STAGE_BENCHMARK_PREFIXES}
    for i, row in enumerate(rows):
        where = f"{path} benchmarks[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{where}: not an object")
            continue
        name = row.get("name")
        if not isinstance(name, str):
            errors.append(f"{where}: 'name' should be str")
            name = ""
        if row.get("run_type") == "aggregate":
            # Complexity/statistics rows (BigO, RMS, mean/median/stddev)
            # report coefficients or percentages, not per-iteration times.
            continue
        for key in ("real_time", "cpu_time"):
            value = row.get(key)
            if isinstance(value, bool) or not isinstance(value,
                                                         numbers.Real):
                errors.append(f"{where}: {key!r} should be a number")
            elif value < 0:
                errors.append(f"{where}: negative {key} ({value})")
        for prefix in STAGE_BENCHMARK_PREFIXES:
            if name.startswith(prefix):
                stage_rows[prefix] += 1
                # google-benchmark surfaces state.counters as extra
                # top-level numeric keys on the row.
                nodes = row.get("astNodes")
                if isinstance(nodes, bool) or not isinstance(nodes,
                                                             numbers.Real):
                    errors.append(
                        f"{where}: {name}: 'astNodes' counter should be "
                        f"a number")
                elif nodes <= 0:
                    errors.append(
                        f"{where}: {name}: 'astNodes' should be positive "
                        f"({nodes})")
    for prefix, count in stage_rows.items():
        if count == 0:
            errors.append(f"{path}: no '{prefix}*' benchmark rows")
    return errors


def validate(path: pathlib.Path) -> list:
    if path.name in GOOGLE_BENCHMARK_FILES:
        return validate_google_benchmark(path)
    schema = SCHEMAS.get(path.name)
    if schema is None:
        known = sorted(set(SCHEMAS) | GOOGLE_BENCHMARK_FILES)
        return [f"{path}: no schema for this file name "
                f"(known: {', '.join(known)})"]
    try:
        rows = json.loads(path.read_text())
    except OSError as err:
        return [f"{path}: unreadable: {err}"]
    except json.JSONDecodeError as err:
        return [f"{path}: invalid JSON: {err}"]
    if not isinstance(rows, list):
        return [f"{path}: top level must be an array"]
    if not rows:
        return [f"{path}: empty array — the benchmark wrote no rows"]
    errors = []
    for i, row in enumerate(rows):
        where = f"{path} row {i}"
        if not isinstance(row, dict):
            errors.append(f"{where}: not an object")
            continue
        missing = sorted(set(schema) - set(row))
        extra = sorted(set(row) - set(schema))
        if missing:
            errors.append(f"{where}: missing keys {missing}")
        if extra:
            errors.append(f"{where}: unexpected keys {extra}")
        for key, expected in schema.items():
            if key not in row:
                continue
            value = row[key]
            # bool is an Integral; a "seconds": true row is still a bug.
            if isinstance(value, bool) or not isinstance(value, expected):
                errors.append(
                    f"{where}: {key!r} should be "
                    f"{getattr(expected, '__name__', expected)}, "
                    f"got {type(value).__name__} ({value!r})")
            elif key == "seconds" and value < 0:
                errors.append(f"{where}: negative seconds ({value})")
    return errors


def main(argv: list) -> int:
    repo = pathlib.Path(__file__).resolve().parent.parent
    names = set(SCHEMAS) | GOOGLE_BENCHMARK_FILES
    paths = ([pathlib.Path(a) for a in argv]
             if argv else sorted(repo / name for name in names))
    all_errors = []
    for path in paths:
        errors = validate(path)
        all_errors.extend(errors)
        status = "FAIL" if errors else "ok"
        rows = ""
        if not errors:
            doc = json.loads(path.read_text())
            count = len(doc["benchmarks"] if isinstance(doc, dict) else doc)
            rows = f" ({count} rows)"
        print(f"  {path.name}: {status}{rows}")
    for err in all_errors:
        print(err, file=sys.stderr)
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
